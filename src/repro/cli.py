"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a synthetic Ethereum-like trace as an
  ethereum-etl CSV;
* ``simulate`` — run one allocator over a trace (CSV or synthetic) and
  print its metrics;
* ``compare``  — run a named scenario across several methods and print
  a comparison table (optionally a Markdown report);
* ``scenarios`` — list the built-in scenarios;
* ``matrix`` — run a declarative allocator x trace x parameter grid
  through the (optionally parallel) scenario-matrix runner;
* ``bench`` — regenerate the ``BENCH_baseline.json`` performance
  snapshot (Table II workload + executor microbenchmark + smoke grid).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import write_report
from repro.chain.params import ProtocolParams
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.etl import read_transactions_csv, write_transactions_csv
from repro.errors import ReproError
from repro.sim.engine import Simulation, SimulationConfig
from repro.sim.recorder import summarize_results
from repro.sim.scenario import DEFAULT_METHODS, SCENARIOS, get_scenario, run_comparison
from repro.util.formatting import format_bytes, format_seconds, render_table


#: Default location of the checked-in streamed-ETL CI fixture,
#: relative to the repository root.
ETL_SMOKE_FIXTURE = "tests/fixtures/etl_smoke.csv"


def _resolve_etl_fixture() -> Optional[Path]:
    """Locate the checked-in ETL smoke fixture.

    Tried relative to the current directory first (the CI invocation),
    then relative to the repository this module was loaded from, so
    ``repro matrix --etl-smoke`` also works from other directories in a
    source checkout. Returns ``None`` when neither exists (e.g. an
    installed package without the test tree).
    """
    for base in (Path.cwd(), Path(__file__).resolve().parents[2]):
        candidate = base / ETL_SMOKE_FIXTURE
        if candidate.is_file():
            return candidate
    return None


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--accounts", type=int, default=3_000, help="account universe size"
    )
    parser.add_argument(
        "--transactions", type=int, default=40_000, help="transaction count"
    )
    parser.add_argument("--blocks", type=int, default=2_400, help="block span")
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--value-model",
        default="none",
        choices=("none", "uniform", "zipf", "burst"),
        help="attach per-transfer values to the synthetic trace "
        "(zipf = heavy-tailed, burst = zipf + flash-crowd window)",
    )
    parser.add_argument(
        "--fee-fraction",
        type=float,
        default=0.0,
        help="with a value model: per-transfer fee as a fraction of value",
    )


def _trace_config(args: argparse.Namespace) -> EthereumTraceConfig:
    value_model = None
    if args.value_model != "none":
        from repro.data.generators import ValueModelConfig

        value_model = ValueModelConfig(
            kind=args.value_model, fee_fraction=args.fee_fraction
        )
    return EthereumTraceConfig(
        n_accounts=args.accounts,
        n_transactions=args.transactions,
        n_blocks=args.blocks,
        hub_fraction=0.01,
        hub_transaction_share=0.12,
        seed=args.seed,
        value_model=value_model,
    )


def _command_generate(args: argparse.Namespace) -> int:
    trace = generate_ethereum_like_trace(_trace_config(args))
    rows = write_transactions_csv(args.output, trace)
    print(f"wrote {rows:,} transactions to {args.output}")
    if args.sizing_index:
        from repro.data.sizing import write_sizing_index

        sidecar = write_sizing_index(args.output)
        print(f"wrote sizing index to {sidecar}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    factory = DEFAULT_METHODS.get(args.method)
    if factory is None:
        print(
            f"error: unknown method {args.method!r}; "
            f"available: {sorted(DEFAULT_METHODS)}",
            file=sys.stderr,
        )
        return 2
    if args.follow and not args.input:
        print("error: --follow requires --input", file=sys.stderr)
        return 2
    params = ProtocolParams(
        k=args.shards, eta=args.eta, tau=args.tau, beta=args.beta, seed=args.seed
    )
    config = SimulationConfig(
        params=params,
        execute_values=args.execute,
        state_backend=args.state_backend,
        funding=args.funding,
        history_epochs=args.history_epochs,
        beacon_spill_dir=args.beacon_spill,
        network=args.network,
    )

    if args.follow:
        from repro.data.source import FollowCsvTraceSource
        from repro.sim.engine import StreamingSimulation

        source = FollowCsvTraceSource(
            args.input,
            poll_interval=args.follow_poll,
            idle_timeout=args.follow_idle,
            decoder=args.decoder,
        )
        print(
            f"following {args.input} (poll {args.follow_poll}s, "
            f"idle timeout {args.follow_idle}s) — ctrl-c to stop"
        )

        def _live(record) -> None:
            print(
                f"epoch {record.epoch}: {record.transactions:,} tx, "
                f"cross-shard {record.cross_shard_ratio:.2%}, "
                f"{record.migrations} migration(s)"
            )

        result = StreamingSimulation(
            source, factory(), config, on_record=_live
        ).run()
    elif args.windowed:
        from repro.sim.engine import StreamingSimulation

        if args.input:
            from repro.data.source import CsvTraceSource

            source = CsvTraceSource(args.input, decoder=args.decoder)
            print(f"windowed replay of {args.input} (chunked decode)")
        else:
            from repro.data.source import GeneratorTraceSource

            source = GeneratorTraceSource(_trace_config(args))
            print("windowed replay of the synthetic trace")
        result = StreamingSimulation(source, factory(), config).run()
    else:
        if args.input:
            if args.streamed:
                from repro.data.arrow import resolve_decoder
                from repro.data.source import CsvTraceSource

                source = CsvTraceSource(args.input, decoder=args.decoder)
                trace = source.materialise()
                print(
                    f"streamed {len(trace):,} transactions from {args.input} "
                    f"({resolve_decoder(args.decoder)} decoder, "
                    f"peak buffer {source.peak_buffer_rows:,} rows)"
                )
            else:
                trace, _registry = read_transactions_csv(args.input)
                print(
                    f"loaded {len(trace):,} transactions from {args.input}"
                )
        else:
            trace = generate_ethereum_like_trace(_trace_config(args))
            print(f"generated {len(trace):,} synthetic transactions")
        result = Simulation(trace, factory(), config).run()
    summary = summarize_results(result)
    rows = [
        ["epochs", summary["epochs"]],
        ["cross-shard ratio", f"{summary['mean_cross_shard_ratio']:.2%}"],
        [
            "normalised throughput",
            f"{summary['mean_normalized_throughput']:.2f}",
        ],
        [
            "workload deviation",
            f"{summary['mean_workload_deviation']:.2f}",
        ],
        [
            "time per decision",
            format_seconds(float(summary["mean_unit_time"])),
        ],
        ["input size", format_bytes(float(summary["mean_input_bytes"]))],
        ["migrations committed", summary["total_migrations"]],
    ]
    if args.execute:
        rows.extend(
            [
                [
                    "transfers executed",
                    summary["total_executed_transactions"],
                ],
                [
                    "value settled (relays)",
                    f"{float(summary['total_settled_volume']):.1f}",
                ],
                ["overdraft aborts", summary["total_overdraft_aborts"]],
                [
                    "receipts in flight",
                    summary["final_in_flight_receipts"],
                ],
            ]
        )
    if "network" in summary:
        rows.extend(
            [
                ["network model", summary["network"]],
                ["messages delivered", summary["total_delivered_messages"]],
                ["messages dropped", summary["total_dropped_messages"]],
                ["retransmissions", summary["total_retransmissions"]],
                ["timeout refunds", summary["total_timeout_refunds"]],
                [
                    "confirmation latency",
                    f"{float(summary['mean_confirmation_latency_blocks']):.1f}"
                    " blocks",
                ],
                [
                    "receipt staleness p99",
                    f"{float(summary['max_receipt_staleness_p99']):.1f}"
                    " blocks",
                ],
            ]
        )
    print()
    print(render_table(["Metric", "Value"], rows))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    methods = args.methods.split(",") if args.methods else None
    print(f"scenario: {scenario.name} — {scenario.description}")
    summaries = run_comparison(scenario, methods=methods)
    rows = [
        [
            name,
            f"{summary['mean_cross_shard_ratio']:.2%}",
            f"{summary['mean_normalized_throughput']:.2f}",
            f"{summary['mean_workload_deviation']:.2f}",
            format_seconds(float(summary["mean_unit_time"])),
        ]
        for name, summary in summaries.items()
    ]
    print()
    print(
        render_table(
            ["Method", "Cross-shard", "Throughput", "Workload dev.", "Time/decision"],
            rows,
        )
    )
    if args.report:
        annotated = []
        for summary in summaries.values():
            entry = dict(summary)
            entry["experiment"] = scenario.name
            annotated.append(entry)
        path = write_report(
            annotated,
            args.report,
            title=f"Scenario: {scenario.name}",
            preamble=scenario.description,
        )
        print(f"\nreport written to {path}")
    return 0


def _run_network_smoke(seed: int, workers: int) -> int:
    """The CI degraded-WAN assertion: run the lossy cell twice.

    Passes only when (a) every cell succeeds, (b) the lossy network
    actually dropped messages and forced retransmissions, (c) value was
    conserved exactly despite drops/duplicates/timeout-refunds, and
    (d) the deterministic digest is identical across both runs — the
    seeded fault injection is reproducible, not merely plausible.
    """
    from repro.experiments import network_smoke_matrix, run_matrix

    matrix = network_smoke_matrix(seed=seed)
    print(
        f"network smoke {matrix.name!r}: {len(matrix)} cell(s) under the "
        "lossy WAN model, run twice for digest stability"
    )
    first = run_matrix(matrix, workers=workers)
    second = run_matrix(matrix, workers=workers)
    failures = [*first.failures, *second.failures]
    if failures:
        for failure in failures:
            print(f"error: {failure.error}", file=sys.stderr)
        return 1
    ok = True
    digest_a = first.deterministic_digest()
    digest_b = second.deterministic_digest()
    if digest_a != digest_b:
        print(
            "error: lossy-network digest unstable across repeats: "
            f"{digest_a[:16]} != {digest_b[:16]}",
            file=sys.stderr,
        )
        ok = False
    for summary in first.summaries:
        label = summary["cell"]
        retransmissions = int(summary.get("total_retransmissions", 0))
        dropped = int(summary.get("total_dropped_messages", 0))
        drift = float(summary.get("max_conservation_drift", 0.0))
        refunds = int(summary.get("total_timeout_refunds", 0))
        print(
            f"  {label}: dropped {dropped}, retransmitted "
            f"{retransmissions}, refunded {refunds}, "
            f"conservation drift {drift:.2e}"
        )
        if retransmissions <= 0:
            print(
                f"error: cell {label!r} saw no retransmissions — the "
                "lossy model is not exercising the retry path",
                file=sys.stderr,
            )
            ok = False
        if drift > 1e-6:
            print(
                f"error: cell {label!r} leaked value under loss: "
                f"conservation drift {drift}",
                file=sys.stderr,
            )
            ok = False
    if ok:
        print(f"network smoke OK — digest {digest_a[:16]} (stable)")
    return 0 if ok else 1


def _command_matrix(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ScenarioMatrix,
        baseline_snapshot,
        default_trace,
        etl_smoke_matrix,
        matrix_table,
        realloc_smoke_matrix,
        run_matrix,
        smoke_matrix,
        with_engine_modes,
        with_funding,
        with_network,
        with_trace_source,
        with_windowed,
        write_result_json,
    )

    if args.network_smoke:
        return _run_network_smoke(seed=args.seed, workers=args.workers)

    valid_metrics = (
        "mean_normalized_throughput",
        "mean_cross_shard_ratio",
        "mean_workload_deviation",
        "mean_unit_time",
        "mean_input_bytes",
        "total_executed_transactions",
        "total_settled_volume",
        "total_overdraft_aborts",
    )
    if args.metric not in valid_metrics:
        print(
            f"error: unknown metric {args.metric!r}; "
            f"available: {', '.join(valid_metrics)}",
            file=sys.stderr,
        )
        return 2
    engine_modes = tuple(args.engine_modes.split(","))
    trace_source = (
        args.trace_source if args.trace_source != "synthetic" else None
    )
    if trace_source is not None and not Path(trace_source).is_file():
        print(
            f"error: --trace-source {trace_source!r} is not a file",
            file=sys.stderr,
        )
        return 2
    if args.etl_smoke is not None:
        if trace_source is not None:
            print(
                "error: --etl-smoke already names its extract; "
                "pass the CSV as the --etl-smoke argument instead of "
                "--trace-source",
                file=sys.stderr,
            )
            return 2
        if args.etl_smoke:
            fixture = Path(args.etl_smoke)
            if not fixture.is_file():
                print(
                    f"error: --etl-smoke fixture {args.etl_smoke!r} "
                    "is not a file",
                    file=sys.stderr,
                )
                return 2
        else:
            fixture = _resolve_etl_fixture()
            if fixture is None:
                print(
                    f"error: default fixture {ETL_SMOKE_FIXTURE!r} not "
                    "found; pass a CSV path to --etl-smoke",
                    file=sys.stderr,
                )
                return 2
        matrix = etl_smoke_matrix(
            str(fixture), seed=args.seed, decoder=args.decoder
        )
        if engine_modes != ("metrics",):
            matrix = with_engine_modes(matrix, engine_modes)
    elif args.realloc_smoke:
        matrix = realloc_smoke_matrix(seed=args.seed)
        if engine_modes != ("metrics",):
            matrix = with_engine_modes(matrix, engine_modes)
    elif args.smoke:
        matrix = smoke_matrix(seed=args.seed)
        if engine_modes != ("metrics",):
            matrix = with_engine_modes(matrix, engine_modes)
    else:
        try:
            ks = tuple(int(k) for k in args.shards.split(","))
            etas = tuple(float(e) for e in args.eta.split(","))
            betas = tuple(float(b) for b in args.beta.split(","))
        except ValueError as error:
            print(
                f"error: bad numeric list in --shards/--eta/--beta: {error}",
                file=sys.stderr,
            )
            return 2
        matrix = ScenarioMatrix(
            name=args.name,
            methods=tuple(args.methods.split(",")),
            traces=(
                default_trace(
                    "cli-trace",
                    n_accounts=args.accounts,
                    n_transactions=args.transactions,
                    n_blocks=args.blocks,
                    seed=args.seed,
                ),
            ),
            ks=ks,
            etas=etas,
            betas=betas,
            tau=args.tau,
            seed=args.seed,
            engine_modes=engine_modes,
        )
    # --trace-source and an explicit --funding apply to whichever grid
    # was selected (custom or a smoke variant), so neither is ever
    # silently ignored — `--etl-smoke --funding uniform` really runs
    # the legacy uniform supply.
    if trace_source is not None:
        matrix = with_trace_source(matrix, trace_source, decoder=args.decoder)
    if args.funding is not None:
        matrix = with_funding(matrix, args.funding)
    if args.network != "ideal":
        matrix = with_network(matrix, args.network)
    if args.windowed or args.history_epochs is not None:
        # --windowed alone keeps every label (and the digest) identical
        # to the materialised grid: equal digests ARE the CI
        # streamed-vs-materialised equivalence check.
        matrix = with_windowed(
            matrix,
            windowed=args.windowed,
            history_epochs=args.history_epochs,
        )
    print(
        f"matrix {matrix.name!r}: {len(matrix)} cells, "
        f"{args.workers} worker(s)"
    )
    result = run_matrix(matrix, workers=args.workers)
    print()
    print(
        matrix_table(
            matrix,
            result,
            metric=args.metric,
            value_format=(
                "{:.2%}" if args.metric == "mean_cross_shard_ratio" else "{:.2f}"
            ),
            lower_is_better=args.metric != "mean_normalized_throughput",
        )
    )
    print(
        f"\n{len(result.summaries)}/{len(matrix)} cells in "
        f"{result.seconds:.1f}s — digest {result.deterministic_digest()[:16]}"
    )
    for failure in result.failures:
        print(f"error: {failure.error}", file=sys.stderr)
    if args.output:
        path = write_result_json(result, args.output)
        print(f"results written to {path}")
    if args.baseline:
        path = baseline_snapshot(result, args.baseline)
        print(f"baseline snapshot written to {path}")
    return 1 if result.failures else 0


def _print_compiled_env() -> None:
    from repro.allocation.metis_like import kernels
    from repro.data import arrow
    from repro.experiments import compiled_env

    env = compiled_env()
    print(f"metis kernels : {kernels.describe()}")
    print(f"csv ingest    : {arrow.describe()}")
    print(
        "fast extra    : "
        + (
            "complete"
            if env["numba"] and env["pyarrow"]
            else "incomplete — pip install 'repro[fast]' for the "
            "compiled paths"
        )
    )


def _command_bench(args: argparse.Namespace) -> int:
    from repro.experiments import cell_delta_rows, run_bench

    if args.env:
        _print_compiled_env()
        return 0
    print(
        "running the Table II benchmark workload "
        f"({args.workers} worker(s)) + executor/reconfig/refine "
        "microbenches + smoke grid"
    )
    _print_compiled_env()
    payload = run_bench(path=args.output, workers=args.workers)
    print(f"\nsnapshot written to {args.output}")
    print(f"total_seconds   : {payload['total_seconds']}")
    print(f"kernel_seconds  : {payload['kernel_seconds']}")
    print(f"smoke_seconds   : {payload['smoke_seconds']}")
    if "reconfig_seconds_batch_1m" in payload:
        print(
            f"reconfig 1M     : {payload['reconfig_seconds_batch_1m']}s "
            f"batch vs {payload['reconfig_seconds_object_1m']}s object"
        )
    if "ingest_seconds_streamed_1m" in payload:
        line = (
            f"ingest 1M       : {payload['ingest_seconds_streamed_1m']}s "
            f"streamed vs {payload['ingest_seconds_materialised_1m']}s "
            "materialised"
        )
        if "ingest_seconds_arrow_1m" in payload:
            line += f" vs {payload['ingest_seconds_arrow_1m']}s arrow"
        print(line)
    if "refine_seconds_python" in payload:
        line = f"refine          : {payload['refine_seconds_python']}s python"
        if "refine_seconds_jit" in payload:
            line += f" vs {payload['refine_seconds_jit']}s jit"
        print(line)
    if "churn_seconds_arena_1m" in payload:
        print(
            f"churn 1M        : {payload['churn_moved_mb_arena_1m']}MB "
            f"compacted arena vs "
            f"{payload['churn_moved_mb_firstfit_1m']}MB first-fit "
            f"({payload['churn_seconds_arena_1m']}s vs "
            f"{payload['churn_seconds_firstfit_1m']}s, "
            f"final frag {payload['frag_final_arena_1m']}, "
            f"{payload['arena_count_1m']} arenas)"
        )
    if "peak_rss_mb_windowed_1m" in payload:
        print(
            f"peak memory 1M  : {payload['peak_rss_mb_windowed_1m']}MB "
            f"windowed vs {payload['peak_rss_mb_materialised_1m']}MB "
            "materialised"
        )
    if "speedup_vs_reference" in payload:
        print(f"speedup vs prev : {payload['speedup_vs_reference']}x")
    delta_rows = cell_delta_rows(payload)
    if delta_rows:
        # Per-cell deltas vs the previous snapshot make a drifting cell
        # visible at a glance instead of hiding inside the total; the
        # spread column says how noisy the cell's own repeats were, and
        # Peak MB where each cell's memory actually goes. Deltas inside
        # the cell's own spread are marked "~" — run-to-run noise, not
        # a real speedup or regression.
        from repro.experiments.bench import delta_is_noise

        flagged = 0
        rows = []
        for label, ref, now, delta, spread, peak in delta_rows:
            noise = delta_is_noise(delta, spread)
            flagged += noise
            rows.append(
                [
                    label,
                    f"{ref:.3f}s" if ref is not None else "-",
                    f"{now:.3f}s",
                    (f"{delta:+.0%}" + (" ~" if noise else ""))
                    if delta is not None
                    else "-",
                    f"{spread:.0%}" if spread is not None else "-",
                    f"{peak:.1f}" if peak is not None else "-",
                ]
            )
        print()
        print(
            render_table(
                ["Cell", "Reference", "Now", "Delta", "Spread", "Peak MB"],
                rows,
            )
        )
        if flagged:
            print(
                f"~ = delta within the cell's recorded spread "
                f"({flagged} cell(s) within noise)"
            )
    failures = int(payload.get("failures", 0))
    if failures:
        print(f"error: {failures} cell(s) failed", file=sys.stderr)
    return 1 if failures else 0


def _command_scenarios(_args: argparse.Namespace) -> int:
    rows = [
        [scenario.name, scenario.description] for scenario in SCENARIOS.values()
    ]
    print(render_table(["Scenario", "Description"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mosaic: client-driven account allocation (reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic trace as an ethereum-etl CSV"
    )
    _add_trace_arguments(generate)
    generate.add_argument("output", help="output CSV path")
    generate.add_argument(
        "--sizing-index",
        action="store_true",
        help="also write the <output>.sizing.npz sidecar so streamed "
        "observed-funding replays skip the sizing pass (one-pass ingest)",
    )
    generate.set_defaults(handler=_command_generate)

    simulate = subparsers.add_parser(
        "simulate", help="run one allocator over a trace"
    )
    _add_trace_arguments(simulate)
    simulate.add_argument(
        "--input", help="ethereum-etl CSV to replay (default: synthesise)"
    )
    simulate.add_argument(
        "--method",
        default="mosaic-pilot",
        help=f"allocator ({', '.join(sorted(DEFAULT_METHODS))})",
    )
    simulate.add_argument("--shards", "-k", type=int, default=16)
    simulate.add_argument("--eta", type=float, default=2.0)
    simulate.add_argument("--tau", type=int, default=30)
    simulate.add_argument("--beta", type=float, default=0.0)
    simulate.add_argument(
        "--execute",
        action="store_true",
        help="drive the unified engine: execute value transfers "
        "through the cross-shard executor alongside the metrics",
    )
    simulate.add_argument(
        "--state-backend",
        default="dict",
        choices=("dict", "dense"),
        help="per-shard state store backend for --execute",
    )
    simulate.add_argument(
        "--funding",
        default="uniform",
        choices=("uniform", "observed"),
        help="genesis supply for --execute: uniform per-account balance "
        "or value-faithful balances derived from the trace's value flow",
    )
    simulate.add_argument(
        "--network",
        default="ideal",
        choices=("ideal", "lan", "wan", "lossy"),
        help="message network for --execute: ideal (direct calls, "
        "bit-identical to the pre-network engine), lan, wan, or the "
        "degraded lossy WAN with drops/partitions/duplicates",
    )
    simulate.add_argument(
        "--streamed",
        action="store_true",
        help="decode --input through the chunked bounded-memory "
        "CsvTraceSource instead of the eager reader",
    )
    simulate.add_argument(
        "--decoder",
        default="auto",
        choices=("python", "arrow", "auto"),
        help="row decoder for --streamed: python reference loop, "
        "arrow columnar fast path, or auto-detect (both are "
        "bit-identical)",
    )
    simulate.add_argument(
        "--windowed",
        action="store_true",
        help="run the O(window) streaming engine instead of "
        "materialising the trace (bit-identical results)",
    )
    simulate.add_argument(
        "--history-epochs",
        type=int,
        default=None,
        help="place the history/evaluation split an absolute number of "
        "epochs after the first block instead of at a fraction of "
        "the rows (required for --follow)",
    )
    simulate.add_argument(
        "--follow",
        action="store_true",
        help="tail a growing ethereum-etl CSV (--input) through the "
        "unbounded streaming engine, printing metrics per epoch; "
        "requires --history-epochs, metrics-only",
    )
    simulate.add_argument(
        "--follow-poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="poll interval while waiting for new rows in --follow",
    )
    simulate.add_argument(
        "--follow-idle",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="end a --follow run after this long with no new rows",
    )
    simulate.add_argument(
        "--beacon-spill",
        default=None,
        metavar="DIR",
        help="spill the beacon chain's committed migration log to "
        "height-indexed segment files in DIR (bounded memory for "
        "long --execute runs)",
    )
    simulate.set_defaults(handler=_command_simulate)

    compare = subparsers.add_parser(
        "compare", help="run a named scenario across methods"
    )
    compare.add_argument(
        "--scenario", default="paper-default", help="scenario name"
    )
    compare.add_argument(
        "--methods", help="comma-separated method subset (default: all)"
    )
    compare.add_argument("--report", help="write a Markdown report here")
    compare.set_defaults(handler=_command_compare)

    scenarios = subparsers.add_parser(
        "scenarios", help="list built-in scenarios"
    )
    scenarios.set_defaults(handler=_command_scenarios)

    bench = subparsers.add_parser(
        "bench",
        help="regenerate the BENCH_baseline.json performance snapshot",
    )
    bench.add_argument(
        "--output",
        default="BENCH_baseline.json",
        help="snapshot path (default: BENCH_baseline.json)",
    )
    bench.add_argument(
        "--workers", type=int, default=1, help="process count (1 = sequential)"
    )
    bench.add_argument(
        "--env",
        action="store_true",
        help="report which compiled fast paths (numba kernels, arrow "
        "decoder) are active in this environment, without running "
        "the benchmark",
    )
    bench.set_defaults(handler=_command_bench)

    matrix = subparsers.add_parser(
        "matrix", help="run an allocator x trace x parameter grid"
    )
    matrix.add_argument("--name", default="cli-matrix", help="matrix name")
    matrix.add_argument(
        "--methods",
        default="mosaic-pilot,txallo,hash-random",
        help="comma-separated allocator names",
    )
    matrix.add_argument(
        "--shards", "-k", default="16", help="comma-separated k values"
    )
    matrix.add_argument("--eta", default="2.0", help="comma-separated eta values")
    matrix.add_argument("--beta", default="0.0", help="comma-separated beta values")
    matrix.add_argument("--tau", type=int, default=30)
    matrix.add_argument("--accounts", type=int, default=3_000)
    matrix.add_argument("--transactions", type=int, default=40_000)
    matrix.add_argument("--blocks", type=int, default=2_400)
    matrix.add_argument("--seed", type=int, default=0)
    matrix.add_argument(
        "--workers", type=int, default=1, help="process count (1 = sequential)"
    )
    matrix.add_argument(
        "--metric",
        default="mean_normalized_throughput",
        help="summary metric to tabulate",
    )
    matrix.add_argument(
        "--engine-modes",
        default="metrics",
        help=(
            "comma-separated engine modes per cell: metrics (classic), "
            "execute (unified value execution, dict state backend), "
            "execute-dense (dense-array state backend)"
        ),
    )
    matrix.add_argument(
        "--smoke",
        action="store_true",
        help="run the built-in 2x2 CI smoke grid",
    )
    matrix.add_argument(
        "--realloc-smoke",
        action="store_true",
        help="run the reallocation-heavy executed CI cell (metis in "
        "execute-dense mode, exercising the batched beacon/"
        "reconfiguration path)",
    )
    matrix.add_argument(
        "--network-smoke",
        action="store_true",
        help="run the degraded-WAN executed CI cell twice and assert "
        "nonzero retransmissions, exact value conservation, and a "
        "stable deterministic digest across the repeats",
    )
    matrix.add_argument(
        "--network",
        default="ideal",
        choices=("ideal", "lan", "wan", "lossy"),
        help="network model for executed cells: ideal (direct calls; "
        "labels and digests unchanged), lan, wan, or the lossy "
        "degraded WAN (requires executing --engine-modes)",
    )
    matrix.add_argument(
        "--etl-smoke",
        nargs="?",
        const="",
        default=None,
        metavar="CSV",
        help="run the streamed value-faithful executed CI cell over an "
        f"ethereum-etl CSV (default fixture: {ETL_SMOKE_FIXTURE})",
    )
    matrix.add_argument(
        "--trace-source",
        default="synthetic",
        metavar="CSV|synthetic",
        help="trace-source axis: 'synthetic' (default) generates the "
        "grid's trace; a CSV path replays that ethereum-etl extract "
        "through the chunked streamed decoder instead",
    )
    matrix.add_argument(
        "--decoder",
        default="auto",
        choices=("python", "arrow", "auto"),
        help="row decoder for CSV trace sources (--trace-source / "
        "--etl-smoke): python reference, arrow columnar, or "
        "auto-detect",
    )
    matrix.add_argument(
        "--windowed",
        action="store_true",
        help="run every cell through the O(window) streaming engine "
        "over the spec's chunked source; labels and the digest are "
        "unchanged, so comparing digests against a materialised run "
        "is the equivalence check",
    )
    matrix.add_argument(
        "--history-epochs",
        type=int,
        default=None,
        help="place each cell's history/evaluation split an absolute "
        "number of epochs after the first block instead of at a "
        "fraction of the rows",
    )
    matrix.add_argument(
        "--funding",
        default=None,
        choices=("uniform", "observed"),
        help="genesis supply for executed cells: uniform legacy supply "
        "or value-faithful balances from the trace's observed flow "
        "(default: the grid's own mode — uniform, except --etl-smoke "
        "which defaults to observed)",
    )
    matrix.add_argument("--output", help="write full results JSON here")
    matrix.add_argument("--baseline", help="write a BENCH_baseline.json here")
    matrix.set_defaults(handler=_command_matrix)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
