"""Exception hierarchy for the Mosaic reproduction.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``, ``AttributeError``, ...) raised by misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A parameter or configuration value is invalid or inconsistent."""


class ValidationError(ReproError):
    """A runtime invariant check failed (bad input data, broken state)."""


class MappingError(ReproError):
    """An account-shard mapping operation violated Definition 1."""


class UnknownAccountError(MappingError):
    """An account id or address is not present in the registry/mapping."""

    def __init__(self, account: object) -> None:
        super().__init__(f"unknown account: {account!r}")
        self.account = account


class ChainError(ReproError):
    """A blockchain substrate operation failed (bad block, broken link)."""


class BlockLinkError(ChainError):
    """A block does not extend the chain tip it was appended to."""


class CapacityExceededError(ChainError):
    """A block or beacon commitment exceeded the shard capacity ``lambda``."""


class SegmentIntegrityError(ChainError):
    """An on-disk beacon segment is truncated or corrupt.

    Carries the segment path and the byte offset of the last intact
    record boundary, so a crash-truncated tail can be located (and
    repaired by reopening the log with ``recover=True``) without
    re-scanning the file by hand.
    """

    def __init__(self, path: object, offset: int, reason: str) -> None:
        super().__init__(f"{path} at byte {offset}: {reason}")
        self.path = str(path)
        self.offset = int(offset)
        self.reason = reason


class NetworkError(ChainError):
    """A simulated network operation failed or was misconfigured."""


class DeliveryExpired(NetworkError):
    """A simulated message passed its delivery deadline undelivered.

    Every transmission attempt either dropped or would have landed past
    the message's retry-policy deadline. Instances double as the
    :class:`~repro.chain.netsim.MessageBus` expiry *records* — the bus
    collects them instead of raising, so consumers (e.g. the receipt
    transport, which turns expired receipts into sender refunds) decide
    whether an expiry is an error or a protocol event. Carries the
    message class, bus sequence number, endpoints, issue and deadline
    blocks, and the original payload.
    """

    def __init__(
        self,
        message_class: str,
        seq: int,
        src: int,
        dst: int,
        issued_block: int,
        deadline_block: int,
        payload: object = None,
    ) -> None:
        super().__init__(
            f"{message_class} message {seq} ({src} -> {dst}) expired at "
            f"block {deadline_block} (issued at block {issued_block})"
        )
        self.message_class = message_class
        self.seq = int(seq)
        self.src = int(src)
        self.dst = int(dst)
        self.issued_block = int(issued_block)
        self.deadline_block = int(deadline_block)
        self.payload = payload


class MigrationError(ReproError):
    """A migration request is malformed or cannot be applied."""


class StateMigrationError(MigrationError):
    """Account state could not be moved between shard stores.

    Raised when a migration names a source shard that does not actually
    hold the account's state (the account is resident elsewhere) — a
    stale or inconsistent request the caller must handle, distinct from
    migrating a never-touched account, which is a free no-op.
    """


class AllocationError(ReproError):
    """An allocation algorithm failed to produce a valid result."""


class PartitionError(AllocationError):
    """The multilevel graph partitioner could not satisfy its constraints."""


class DataError(ReproError):
    """Trace loading, generation, or ETL failed."""


class MalformedRowError(DataError):
    """One row of an ETL extract could not be decoded.

    Carries the source file and the 1-based line number so a bad row in
    a multi-gigabyte extract is findable without re-running the decode.
    """

    def __init__(self, path: object, line: int, reason: str) -> None:
        super().__init__(f"{path}:{line}: {reason}")
        self.path = str(path)
        self.line = int(line)
        self.reason = reason


class SizingIndexError(DataError):
    """A persisted sizing sidecar does not match its CSV extract.

    Raised when the sidecar exists but disagrees with the file it
    describes (size/mtime drift, format-version skew, or a corrupt
    archive) — a stale index silently funding the wrong universe would
    be far worse than re-running the sizing pass, so mismatches are
    loud. A *missing* sidecar is not an error: loaders return None and
    consumers fall back to the two-pass protocol.
    """

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = str(path)
        self.reason = reason


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ExperimentError(ReproError):
    """A scenario-matrix experiment run failed."""
