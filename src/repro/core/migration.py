"""Migration-request policy: capacity capping and prioritisation.

The beacon chain can commit at most ``lambda`` migration requests per
epoch (it runs the same consensus as a shard, Section V-A). When clients
propose more, "the migration requests that offer the most significant
improvements in P will be prioritized for commitment". This module
packages that policy so both the Mosaic allocator and the full
beacon-chain substrate apply identical rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.beacon import prioritize_requests
from repro.chain.kernels import select_migrations_kernel
from repro.chain.mapping import ShardMapping
from repro.chain.migration import MigrationRequest, MigrationRequestBatch
from repro.errors import MigrationError


@dataclass(frozen=True)
class PolicyOutcome:
    """Result of filtering one epoch's migration proposals."""

    committed: Tuple[MigrationRequest, ...]
    rejected: Tuple[MigrationRequest, ...]

    @property
    def committed_count(self) -> int:
        return len(self.committed)


@dataclass(frozen=True)
class BatchOutcome:
    """Columnar policy outcome: index arrays into the request batch.

    ``committed_idx`` is in commitment order. The object views are
    materialised lazily via :meth:`to_policy_outcome` for callers that
    want :class:`PolicyOutcome` ergonomics.
    """

    batch: MigrationRequestBatch
    committed_idx: np.ndarray
    rejected_idx: np.ndarray

    @property
    def committed_count(self) -> int:
        return len(self.committed_idx)

    def to_policy_outcome(self) -> PolicyOutcome:
        return PolicyOutcome(
            committed=tuple(self.batch.take(self.committed_idx)),
            rejected=tuple(self.batch.take(self.rejected_idx)),
        )


class MigrationPolicy:
    """Capacity-capped, gain-prioritised commitment policy.

    Args:
        capacity: maximum requests committed per epoch (``None`` =
            unlimited, used by the ablation study).
        fifo: when True, commit in submission order instead of by gain —
            the ablation baseline for the prioritisation design choice.
    """

    def __init__(self, capacity: Optional[int] = None, fifo: bool = False) -> None:
        if capacity is not None and capacity < 0:
            raise MigrationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.fifo = fifo

    def select(
        self,
        requests: Sequence[MigrationRequest],
        mapping: Optional[ShardMapping] = None,
    ) -> PolicyOutcome:
        """Validate and choose which requests commit this epoch."""
        valid: List[MigrationRequest] = []
        stale: List[MigrationRequest] = []
        for request in requests:
            if mapping is not None:
                if (
                    request.account >= mapping.n_accounts
                    or request.to_shard >= mapping.k
                    or mapping.shard_of(request.account) != request.from_shard
                ):
                    stale.append(request)
                    continue
            valid.append(request)

        if self.fifo:
            seen = set()
            deduped: List[MigrationRequest] = []
            dropped: List[MigrationRequest] = []
            for request in valid:
                if request.account in seen:
                    dropped.append(request)
                    continue
                seen.add(request.account)
                deduped.append(request)
            if self.capacity is None or self.capacity >= len(deduped):
                committed, over = deduped, []
            else:
                committed = deduped[: self.capacity]
                over = deduped[self.capacity :]
            return PolicyOutcome(
                committed=tuple(committed),
                rejected=tuple(over + dropped + stale),
            )

        committed, rejected = prioritize_requests(valid, self.capacity)
        return PolicyOutcome(
            committed=tuple(committed), rejected=tuple(rejected + stale)
        )

    def apply(
        self,
        requests: Sequence[MigrationRequest],
        mapping: ShardMapping,
    ) -> PolicyOutcome:
        """Select and apply the committed requests to ``mapping`` in place."""
        outcome = self.select(requests, mapping)
        for request in outcome.committed:
            mapping.assign(request.account, request.to_shard)
        return outcome

    # -- vectorised path ---------------------------------------------------

    def select_batch(
        self,
        batch: MigrationRequestBatch,
        mapping: Optional[ShardMapping] = None,
    ) -> BatchOutcome:
        """Vectorised :meth:`select` over a columnar request batch.

        Element-for-element equivalent to the scalar path (committed set
        and commitment order match exactly; the rejected *set* matches
        but carries no order guarantee).
        """
        committed_idx, rejected_idx = select_migrations_kernel(
            batch.accounts,
            batch.from_shards,
            batch.to_shards,
            batch.gains,
            mapping.as_array() if mapping is not None else None,
            mapping.k if mapping is not None else None,
            self.capacity,
            fifo=self.fifo,
        )
        return BatchOutcome(
            batch=batch, committed_idx=committed_idx, rejected_idx=rejected_idx
        )

    def apply_batch(
        self,
        batch: MigrationRequestBatch,
        mapping: ShardMapping,
    ) -> BatchOutcome:
        """Select and bulk-apply the committed requests to ``mapping``.

        The committed set is deduplicated per account, so the bulk
        ``assign_many`` is equivalent to sequential per-request
        assignment.
        """
        outcome = self.select_batch(batch, mapping)
        mapping.assign_many(
            batch.accounts[outcome.committed_idx],
            batch.to_shards[outcome.committed_idx],
        )
        return outcome
