"""Mosaic: the client-driven allocation framework as an ``Allocator``.

This module wires the paper's pieces together for the simulation
protocol of Section V:

* every epoch, the clients active in the system observe their own newly
  committed transactions (their wallets append to ``T_nu``);
* a public oracle publishes the workload vector ``Omega`` from the
  mempool of the upcoming epoch;
* each active client runs Pilot over its local data and proposes a
  migration request when a better shard exists;
* the beacon chain commits at most ``lambda`` requests, prioritised by
  potential gain, and the mapping ``phi`` is updated at the epoch
  reconfiguration.

Internally, the per-client loop is executed with the vectorised
``batch_pilot_decisions`` (numerically identical to per-client
``Pilot.decide``; see ``tests/test_core_pilot.py``), so simulations with
tens of thousands of clients stay fast. The per-client cost accounting
(time per decision, bytes of input) is what Table IV reports.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.allocation.base import AllocationUpdate, Allocator, UpdateContext
from repro.chain.mapping import ShardMapping
from repro.chain.migration import MigrationRequest, MigrationRequestBatch
from repro.chain.params import ProtocolParams
from repro.chain.transaction import TransactionBatch
from repro.core.interaction import interaction_matrix
from repro.core.migration import MigrationPolicy, PolicyOutcome
from repro.core.pilot import batch_pilot_decisions
from repro.data.trace import Trace
from repro.workload.observer import OMEGA_ENTRY_BYTES, WorkloadOracle

#: Compact the accumulated edge list when it exceeds this many rows.
_COMPACT_THRESHOLD = 2_000_000


class MosaicAllocator(Allocator):
    """The client-driven framework with Pilot as the reference algorithm.

    Args:
        initializer: allocator used to produce the initial mapping
            ``phi_0`` from the historical prefix. The paper initialises
            with TxAllo's result; pass ``None`` to start from the
            deterministic hash allocation instead.
        fifo_commitment: commit migration requests in submission order
            instead of by gain (ablation knob).
        unlimited_migrations: ignore the beacon-chain capacity cap
            (ablation knob).
    """

    name = "mosaic-pilot"

    def __init__(
        self,
        initializer: Optional[Allocator] = None,
        fifo_commitment: bool = False,
        unlimited_migrations: bool = False,
    ) -> None:
        self.initializer = initializer
        self.fifo_commitment = fifo_commitment
        self.unlimited_migrations = unlimited_migrations
        # Accumulated client histories as an aggregated undirected edge
        # list (u < v, weight = interaction count). Conceptually each
        # client holds only its own row; the simulator stores them
        # together for vectorised evaluation.
        self._edge_u = np.zeros(0, dtype=np.int64)
        self._edge_v = np.zeros(0, dtype=np.int64)
        self._edge_w = np.zeros(0, dtype=np.float64)
        self._tx_count = np.zeros(0, dtype=np.int64)
        self._last_request_batch: Optional[MigrationRequestBatch] = None
        self.last_outcome: Optional[PolicyOutcome] = None

    # -- history bookkeeping ---------------------------------------------------

    def _ensure_accounts(self, n_accounts: int) -> None:
        if len(self._tx_count) < n_accounts:
            grown = np.zeros(n_accounts, dtype=np.int64)
            grown[: len(self._tx_count)] = self._tx_count
            self._tx_count = grown

    def _absorb_batch(self, batch: TransactionBatch) -> None:
        """Fold committed transactions into the clients' local stores."""
        if len(batch) == 0:
            return
        self._ensure_accounts(batch.max_account_id() + 1)
        lo = np.minimum(batch.senders, batch.receivers)
        hi = np.maximum(batch.senders, batch.receivers)
        not_self = lo != hi
        lo, hi = lo[not_self], hi[not_self]
        if len(lo) == 0:
            return
        span = int(max(self._tx_count.shape[0], hi.max() + 1))
        keys = lo * span + hi
        unique_keys, counts = np.unique(keys, return_counts=True)
        self._edge_u = np.concatenate([self._edge_u, unique_keys // span])
        self._edge_v = np.concatenate([self._edge_v, unique_keys % span])
        self._edge_w = np.concatenate(
            [self._edge_w, counts.astype(np.float64)]
        )
        self._tx_count += np.bincount(
            batch.senders, minlength=len(self._tx_count)
        )
        self._tx_count += np.bincount(
            batch.receivers, minlength=len(self._tx_count)
        )
        if len(self._edge_u) > _COMPACT_THRESHOLD:
            self._compact()

    def _compact(self) -> None:
        span = int(
            max(
                self._edge_u.max(initial=-1),
                self._edge_v.max(initial=-1),
            )
            + 1
        )
        if span <= 0:
            return
        keys = self._edge_u * span + self._edge_v
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        weights = np.bincount(inverse, weights=self._edge_w)
        self._edge_u = unique_keys // span
        self._edge_v = unique_keys % span
        self._edge_w = weights

    # -- Psi evaluation ------------------------------------------------------------

    def _history_psi(
        self, accounts: np.ndarray, mapping: ShardMapping
    ) -> np.ndarray:
        """``Psi_h`` rows for sorted-unique ``accounts`` under ``mapping``.

        Evaluates Eq. 1 over each client's stored history against the
        *current* allocation, exactly as wallets re-evaluate their local
        records.
        """
        k = mapping.k
        psi = np.zeros((len(accounts), k), dtype=np.float64)
        if len(self._edge_u) == 0 or len(accounts) == 0:
            return psi
        shard_of = mapping.as_array()
        # Active-account membership via one boolean gather per endpoint
        # column (cheaper than binary-searching the whole edge list);
        # the searchsorted row lookup then runs on the small slice.
        is_active = np.zeros(
            max(int(self._tx_count.shape[0]), int(accounts.max()) + 1),
            dtype=bool,
        )
        is_active[accounts] = True
        for ids, others in ((self._edge_u, self._edge_v), (self._edge_v, self._edge_u)):
            present = is_active[ids]
            # Edges may reference accounts beyond the mapping (not yet
            # placed); those cannot contribute counterparty shards.
            present &= others < mapping.n_accounts
            if not present.any():
                continue
            sel_others = others[present]
            rows = np.searchsorted(accounts, ids[present])
            keys = rows * k + shard_of[sel_others]
            psi += np.bincount(
                keys, weights=self._edge_w[present], minlength=len(accounts) * k
            ).reshape(len(accounts), k)
        return psi

    @staticmethod
    def _mean_pilot_input_bytes(psi: Optional[np.ndarray], k: int) -> float:
        """Average bytes one Pilot run consumes (the paper's Table IV).

        A client feeds Pilot its interaction distribution ``Psi`` (stored
        sparse: shard id + count per non-zero entry), the downloaded
        workload vector ``Omega`` (``k`` floats), and a few scalars
        (account id, current shard, ``eta``/``beta``). This is hundreds
        of bytes — the paper measures 228.66 B per account at k = 16 —
        regardless of how large the ledger grows.
        """
        sparse_entry_bytes = 10  # 2-byte shard id + 8-byte count
        scalar_overhead = 16
        nonzero = float((psi > 0).sum(axis=1).mean()) if psi is not None else 0.0
        return k * OMEGA_ENTRY_BYTES + nonzero * sparse_entry_bytes + scalar_overhead

    # -- Allocator interface ---------------------------------------------------------

    @property
    def last_requests(self) -> List[MigrationRequest]:
        """Last epoch's migration requests, materialised lazily.

        The update loop keeps only the columnar request batch; request
        objects are built on access (observability/tests), never on the
        per-epoch hot path.
        """
        if self._last_request_batch is None:
            return []
        return self._last_request_batch.take(
            np.arange(len(self._last_request_batch))
        )

    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        self._ensure_accounts(history.n_accounts)
        self._absorb_batch(history.batch)
        if self.initializer is not None:
            return self.initializer.initialize(history, params)
        # Deterministic hash-style fallback initialisation.
        rng = np.random.default_rng(params.seed)
        return ShardMapping(
            rng.integers(0, params.k, size=history.n_accounts, dtype=np.int64),
            params.k,
        )

    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        params = context.params
        k = mapping.k
        self._ensure_accounts(mapping.n_accounts)
        # 1. Wallets observe the epoch's committed transactions.
        self._absorb_batch(context.committed)

        # 2. The oracle publishes Omega from the pending mempool.
        oracle = WorkloadOracle(params.eta)
        snapshot = oracle.publish(context.epoch, context.mempool, mapping)
        omega = snapshot.omega

        # 3. Active clients run Pilot.
        active = np.union1d(
            context.committed.touched_accounts(),
            context.mempool.touched_accounts(),
        )
        active = active[active < mapping.n_accounts]
        start = time.perf_counter()
        if len(active):
            psi_h = self._history_psi(active, mapping)
            psi_e = interaction_matrix(context.mempool, mapping, active)
            current = mapping.shards_of(active)
            best, gains = batch_pilot_decisions(
                active, psi_h, psi_e, omega, current, params.eta, params.beta
            )
            wants = (best != current) & (gains > 0)
        else:
            best = np.zeros(0, dtype=np.int64)
            gains = np.zeros(0)
            current = np.zeros(0, dtype=np.int64)
            wants = np.zeros(0, dtype=bool)
        elapsed = time.perf_counter() - start

        request_batch = MigrationRequestBatch(
            active[wants],
            current[wants],
            best[wants],
            gains[wants],
            epoch=context.epoch,
        )

        # 4. The beacon chain commits at most lambda requests, by gain.
        # Selection and application run on the columnar batch (the
        # vectorised migration-accounting kernel); the object views are
        # materialised afterwards for observability.
        capacity = None if self.unlimited_migrations else int(context.capacity)
        policy = MigrationPolicy(capacity=capacity, fifo=self.fifo_commitment)
        new_mapping = mapping.copy()
        batch_outcome = policy.apply_batch(request_batch, new_mapping)
        self._last_request_batch = request_batch
        self.last_outcome = batch_outcome.to_policy_outcome()

        n_active = max(1, len(active))
        input_bytes = self._mean_pilot_input_bytes(
            psi_h + psi_e if len(active) else None, k
        )
        return AllocationUpdate(
            mapping=new_mapping,
            execution_time=elapsed,
            unit_time=elapsed / n_active,
            input_bytes=input_bytes,
            migrations=batch_outcome.committed_count,
            proposed_migrations=len(request_batch),
        )

    def place_new_accounts(
        self,
        new_account_ids: np.ndarray,
        mapping: ShardMapping,
        context: Optional[UpdateContext] = None,
    ) -> np.ndarray:
        """New clients allocate themselves with Pilot (Section VI).

        With no history, the decision reduces to the expected-future term
        (when the client knows upcoming transactions) plus the workload
        tie-break: an empty ``Psi`` gives equal Potential everywhere, so
        the client picks the least-loaded shard.
        """
        new_account_ids = np.asarray(new_account_ids, dtype=np.int64)
        if len(new_account_ids) == 0:
            return new_account_ids.copy()
        k = mapping.k
        if context is not None and len(context.mempool):
            omega = WorkloadOracle(context.params.eta).publish(
                context.epoch, context.mempool, mapping
            ).omega
            beta = context.params.beta
            eta = context.params.eta
            ordered = np.unique(new_account_ids)
            psi_e = interaction_matrix(context.mempool, mapping, ordered)
            psi_h = np.zeros_like(psi_e)
            current = np.zeros(len(ordered), dtype=np.int64)
            # New accounts fuse an empty history with their planned
            # activity. At beta = 0 the fused Psi is all zeros, every
            # Potential ties at 0, and the tie-break places the client on
            # the least-loaded shard — the paper's "new accounts can
            # allocate themselves by the workload distribution".
            best, _ = batch_pilot_decisions(
                ordered, psi_h, psi_e, omega, current, eta, beta
            )
            rows = np.searchsorted(ordered, new_account_ids)
            return best[rows]
        # Without an oracle: spread across the least-populated shards.
        # Greedy argmin placement (ties to the lowest shard id) is
        # exactly water-filling: at height h every shard with size <= h
        # takes one slot, in shard-id order — so enumerate the slot grid
        # lexicographically by (height, shard) and take the first m.
        sizes = mapping.shard_sizes().astype(np.int64)
        m = len(new_account_ids)
        # The waterline can rise at most m levels above the emptiest
        # shard (that shard alone offers one slot per level), so the
        # slot grid is O(m * k) even for arbitrarily skewed mappings.
        top = int(sizes.min()) + m + 1
        heights = np.arange(int(sizes.min()), top)
        hh, ss = np.meshgrid(
            heights, np.arange(mapping.k, dtype=np.int64), indexing="ij"
        )
        open_slots = hh >= sizes[ss]
        return ss[open_slots][:m]
