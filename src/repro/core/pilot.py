"""Pilot — the reference client-side shard-selection algorithm (Alg. 1).

``Pilot.decide`` is a faithful, per-client implementation of the paper's
Algorithm 1: compute ``Psi_h`` and ``Psi_e`` (Eq. 1), fuse them (Eq. 2),
then scan all ``k`` shards for the maximum Potential (Eq. 4). Its input
is exactly what a real client holds: its own transactions ``T_nu`` and
the downloaded workload vector ``Omega`` — a few hundred bytes, which is
the efficiency story of Table IV.

``batch_pilot_decisions`` is the numerically identical vectorised
variant the simulation engine uses to run thousands of clients per
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.chain.mapping import ShardMapping
from repro.chain.transaction import TransactionBatch
from repro.core.cost import potential_matrix, potential_vector
from repro.core.interaction import fuse_distributions, interaction_distribution
from repro.errors import ValidationError
from repro.util.validation import check_probability


@dataclass(frozen=True)
class PilotDecision:
    """Outcome of one Pilot run for one account."""

    account: int
    current_shard: int
    best_shard: int
    gain: float
    potentials: np.ndarray

    @property
    def wants_migration(self) -> bool:
        """True when the client should submit a migration request."""
        return self.best_shard != self.current_shard and self.gain > 0


def _select_best_shard(
    potentials: np.ndarray, omega: np.ndarray, current: int
) -> int:
    """Argmax of ``potentials`` with deterministic, workload-aware ties.

    Ties on Potential are broken toward the least-loaded shard (and then
    the current shard, to avoid gratuitous migrations), matching the
    cost function's intent: equal Potential means equal cost, so the
    client prefers the cheaper/less congested option.
    """
    best_value = potentials.max()
    tied = np.flatnonzero(potentials >= best_value - 1e-12)
    if len(tied) == 1:
        return int(tied[0])
    if current in tied and np.isclose(omega[current], omega[tied].min()):
        return current
    return int(tied[np.argmin(omega[tied])])


class Pilot:
    """The reference algorithm, configured with ``eta`` and ``beta``.

    ``fee_model`` generalises the per-transaction fee ``xi = f(omega)``
    (Section IV; the default is the paper's identity). The Eq. 3 -> 4
    equivalence holds for every monotone ``f``, so the decision logic is
    unchanged: workloads are mapped through the fee model up front and
    the Potential maximisation proceeds on the fee vector.
    """

    def __init__(self, eta: float, beta: float = 0.0, fee_model=None) -> None:
        if eta < 1:
            raise ValidationError(f"eta must be >= 1, got {eta}")
        check_probability("beta", beta)
        self.eta = eta
        self.beta = beta
        self.fee_model = fee_model

    def decide(
        self,
        account: int,
        history: TransactionBatch,
        expected: TransactionBatch,
        omega: np.ndarray,
        mapping: ShardMapping,
    ) -> PilotDecision:
        """Run Algorithm 1 for ``account`` and return the decision.

        Args:
            account: the client's account id.
            history: the client's committed transactions ``T_h^nu``
                (extra transactions not involving the account are
                ignored, so callers may pass a superset).
            expected: the client's expected future transactions
                ``T_e^nu``.
            omega: the downloaded workload distribution ``Omega``.
            mapping: the current allocation view ``phi``.
        """
        omega = np.asarray(omega, dtype=np.float64)
        if len(omega) != mapping.k:
            raise ValidationError(
                f"omega has {len(omega)} entries but mapping has k={mapping.k}"
            )
        if self.fee_model is not None:
            omega = self.fee_model(omega)
        # Lines 1-2: historical and expected connection distributions.
        psi_h = interaction_distribution(account, history, mapping)
        psi_e = interaction_distribution(account, expected, mapping)
        # Lines 3-4: fusion.
        psi = fuse_distributions(psi_h, psi_e, self.beta)
        # Lines 5-14: maximise the Potential over all shards.
        potentials = potential_vector(psi, omega, self.eta)
        current = mapping.shard_of(account)
        best = _select_best_shard(potentials, omega, current)
        gain = float(potentials[best] - potentials[current])
        return PilotDecision(
            account=account,
            current_shard=current,
            best_shard=best,
            gain=gain,
            potentials=potentials,
        )


def batch_pilot_decisions(
    accounts: np.ndarray,
    psi_history: np.ndarray,
    psi_expected: np.ndarray,
    omega: np.ndarray,
    current_shards: np.ndarray,
    eta: float,
    beta: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised Pilot for many accounts at once.

    Args:
        accounts: account ids, shape ``(n,)`` (used for validation only).
        psi_history: ``(n, k)`` historical interaction matrix.
        psi_expected: ``(n, k)`` expected interaction matrix.
        omega: ``(k,)`` workload vector.
        current_shards: ``(n,)`` current shard of each account.
        eta, beta: protocol / fusion parameters.

    Returns:
        ``(best_shards, gains)`` where ``gains[r] = P_best - P_current``.
        The tie-breaking matches :meth:`Pilot.decide` exactly.
    """
    psi = fuse_distributions(psi_history, psi_expected, beta)
    potentials = potential_matrix(psi, omega, eta)
    n, k = potentials.shape
    if len(current_shards) != n or len(accounts) != n:
        raise ValidationError("accounts/current_shards must match psi rows")

    best_values = potentials.max(axis=1, keepdims=True)
    tied = potentials >= best_values - 1e-12
    # Among tied shards choose the least-loaded; prefer the current shard
    # when it matches that minimum (avoids gratuitous migrations).
    omega_masked = np.where(tied, omega[np.newaxis, :], np.inf)
    best_shards = np.argmin(omega_masked, axis=1).astype(np.int64)
    rows = np.arange(n)
    current_tied = tied[rows, current_shards]
    current_omega = omega[current_shards]
    keep_current = current_tied & np.isclose(
        current_omega, omega_masked[rows, best_shards]
    )
    best_shards = np.where(keep_current, current_shards, best_shards)
    gains = potentials[rows, best_shards] - potentials[rows, current_shards]
    return best_shards, gains
