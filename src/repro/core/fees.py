"""Fee models: the monotone function ``xi_i = f(omega_i)`` (Section IV).

Pilot prices residing in a shard by the fee its transactions will pay
there. The paper uses the identity ``f(omega) = omega`` "for
simplicity" and notes that "one can design a more specialized function
f for the specific needs of applications". This module provides that
extension point.

The paper's Eq. 3 -> Eq. 4 algebra goes through for *any* per-shard fee
vector ``xi``: substituting ``xi_i`` for ``omega_i`` in the derivation
gives the generalised Potential::

    P_i = [(2*eta - 1) * psi_i - eta * psi] * f(omega_i)

so Pilot remains O(k) per decision under every fee model here (the
property test in ``tests/test_core_fees.py`` re-verifies the
equivalence for each model).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ValidationError


class FeeModel(abc.ABC):
    """A monotone map from shard workload ``omega`` to fee ``xi``."""

    #: Short name used in configuration and reports.
    name: str = "fee"

    @abc.abstractmethod
    def fees(self, omega: np.ndarray) -> np.ndarray:
        """Vectorised ``xi = f(omega)``; must preserve shape and order."""

    def __call__(self, omega: np.ndarray) -> np.ndarray:
        omega = np.asarray(omega, dtype=np.float64)
        if omega.ndim != 1:
            raise ValidationError("omega must be a 1-D vector")
        if len(omega) and omega.min() < 0:
            raise ValidationError("workloads must be >= 0")
        xi = np.asarray(self.fees(omega), dtype=np.float64)
        if xi.shape != omega.shape:
            raise ValidationError(
                f"{type(self).__name__}.fees changed the shape "
                f"({omega.shape} -> {xi.shape})"
            )
        if len(xi) and xi.min() < 0:
            raise ValidationError("fees must be >= 0")
        return xi


@dataclass(frozen=True)
class LinearFee(FeeModel):
    """``xi = slope * omega`` — the paper's default at slope 1."""

    slope: float = 1.0
    name = "linear"

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ConfigurationError(f"slope must be > 0, got {self.slope}")

    def fees(self, omega: np.ndarray) -> np.ndarray:
        return self.slope * omega


@dataclass(frozen=True)
class PowerFee(FeeModel):
    """``xi = omega ** exponent`` — sub/super-linear congestion pricing.

    ``exponent < 1`` dampens congestion differences (clients care less
    about load); ``exponent > 1`` amplifies them (latency-critical
    clients avoiding busy shards).
    """

    exponent: float = 0.5
    name = "power"

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError(
                f"exponent must be > 0, got {self.exponent}"
            )

    def fees(self, omega: np.ndarray) -> np.ndarray:
        return np.power(omega, self.exponent)


@dataclass(frozen=True)
class BaseFeeMarket(FeeModel):
    """An EIP-1559-flavoured fee market.

    Fees stay at ``base_fee`` while a shard runs below its ``target``
    workload and grow exponentially with over-target utilisation,
    mirroring how Ethereum's base fee reacts to full blocks::

        xi = base_fee * exp(sensitivity * max(0, omega / target - 1))
    """

    target: float
    base_fee: float = 1.0
    sensitivity: float = 1.0
    name = "base-fee-market"

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ConfigurationError(f"target must be > 0, got {self.target}")
        if self.base_fee <= 0:
            raise ConfigurationError(
                f"base_fee must be > 0, got {self.base_fee}"
            )
        if self.sensitivity <= 0:
            raise ConfigurationError(
                f"sensitivity must be > 0, got {self.sensitivity}"
            )

    def fees(self, omega: np.ndarray) -> np.ndarray:
        utilisation = np.maximum(0.0, omega / self.target - 1.0)
        return self.base_fee * np.exp(self.sensitivity * utilisation)


def generalized_potential_vector(
    psi: np.ndarray,
    omega: np.ndarray,
    eta: float,
    fee_model: FeeModel,
) -> np.ndarray:
    """Eq. 4 with ``xi = f(omega)``: one Potential per shard."""
    psi = np.asarray(psi, dtype=np.float64)
    omega = np.asarray(omega, dtype=np.float64)
    if psi.shape != omega.shape:
        raise ValidationError("psi and omega must have equal shape")
    if eta < 1:
        raise ValidationError(f"eta must be >= 1, got {eta}")
    xi = fee_model(omega)
    psi_total = psi.sum()
    return ((2.0 * eta - 1.0) * psi - eta * psi_total) * xi
