"""The Pilot cost function and Potential (Section IV, Eq. 3-4).

The cost of account ``nu`` residing in shard ``i`` is (Eq. 3)::

    u_i = (1 * psi_i + eta * psi_{-i}) * xi_i  +  eta * sum_{j != i} psi_j * xi_j

with ``xi_i = f(omega_i)`` a monotone transaction-fee function; Pilot
uses the identity ``xi_i = omega_i``. The paper shows minimising
``u_i`` is equivalent to maximising the **Potential** (Eq. 4)::

    P_i = [(2*eta - 1) * psi_i - eta * psi] * omega_i

which only needs shard ``i``'s own entries — this is the simplification
that makes Pilot O(k) per decision. ``tests/test_core_cost.py`` verifies
the equivalence property-based.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ValidationError

FeeFunction = Callable[[np.ndarray], np.ndarray]


def _validate(psi: np.ndarray, omega: np.ndarray, eta: float) -> tuple:
    psi = np.asarray(psi, dtype=np.float64)
    omega = np.asarray(omega, dtype=np.float64)
    if psi.ndim != 1 or omega.ndim != 1:
        raise ValidationError("psi and omega must be 1-D vectors")
    if psi.shape != omega.shape:
        raise ValidationError(
            f"psi has {len(psi)} shards but omega has {len(omega)}"
        )
    if len(psi) == 0:
        raise ValidationError("need at least one shard")
    if eta < 1:
        raise ValidationError(f"eta must be >= 1, got {eta}")
    if psi.min() < 0:
        raise ValidationError("psi entries must be >= 0")
    if omega.min() < 0:
        raise ValidationError("omega entries must be >= 0")
    return psi, omega


def transaction_cost(
    psi: np.ndarray,
    omega: np.ndarray,
    shard: int,
    eta: float,
    fee_function: Optional[FeeFunction] = None,
) -> float:
    """Evaluate the full cost ``u_i`` (Eq. 3) of residing in ``shard``.

    ``fee_function`` maps workloads ``omega`` to per-transaction fees
    ``xi`` and defaults to the identity used by Pilot.
    """
    psi, omega = _validate(psi, omega, eta)
    if not 0 <= shard < len(psi):
        raise ValidationError(f"shard {shard} out of range [0, {len(psi)})")
    xi = omega if fee_function is None else np.asarray(
        fee_function(omega), dtype=np.float64
    )
    if xi.shape != omega.shape:
        raise ValidationError("fee_function must preserve the vector shape")
    psi_i = psi[shard]
    psi_rest = psi.sum() - psi_i
    own_shard_cost = (1.0 * psi_i + eta * psi_rest) * xi[shard]
    other_shard_cost = eta * (psi * xi).sum() - eta * psi_i * xi[shard]
    return float(own_shard_cost + other_shard_cost)


def cost_vector(
    psi: np.ndarray,
    omega: np.ndarray,
    eta: float,
    fee_function: Optional[FeeFunction] = None,
) -> np.ndarray:
    """``u_i`` for every shard ``i`` at once."""
    psi, omega = _validate(psi, omega, eta)
    return np.array(
        [
            transaction_cost(psi, omega, shard, eta, fee_function)
            for shard in range(len(psi))
        ]
    )


def potential(psi_i: float, psi_total: float, omega_i: float, eta: float) -> float:
    """The Potential ``P_i`` (Eq. 4) from scalar inputs."""
    if eta < 1:
        raise ValidationError(f"eta must be >= 1, got {eta}")
    if psi_i < 0 or psi_total < 0 or omega_i < 0:
        raise ValidationError("psi and omega values must be >= 0")
    if psi_i > psi_total:
        raise ValidationError(
            f"psi_i ({psi_i}) cannot exceed psi_total ({psi_total})"
        )
    return ((2.0 * eta - 1.0) * psi_i - eta * psi_total) * omega_i


def potential_vector(psi: np.ndarray, omega: np.ndarray, eta: float) -> np.ndarray:
    """``P_i`` for every shard, for one account's ``psi``."""
    psi, omega = _validate(psi, omega, eta)
    psi_total = psi.sum()
    return ((2.0 * eta - 1.0) * psi - eta * psi_total) * omega


def potential_matrix(
    psi_matrix: np.ndarray, omega: np.ndarray, eta: float
) -> np.ndarray:
    """Vectorised Eq. 4 for many accounts: rows are accounts.

    ``psi_matrix`` has shape ``(n_accounts, k)``; the result has the same
    shape with ``result[r, i] = P_i`` for account ``r``.
    """
    psi_matrix = np.asarray(psi_matrix, dtype=np.float64)
    omega = np.asarray(omega, dtype=np.float64)
    if psi_matrix.ndim != 2:
        raise ValidationError("psi_matrix must be 2-D (accounts x shards)")
    if omega.ndim != 1 or psi_matrix.shape[1] != len(omega):
        raise ValidationError("omega length must equal psi_matrix columns")
    if eta < 1:
        raise ValidationError(f"eta must be >= 1, got {eta}")
    psi_totals = psi_matrix.sum(axis=1, keepdims=True)
    return ((2.0 * eta - 1.0) * psi_matrix - eta * psi_totals) * omega[np.newaxis, :]
