"""The paper's primary contribution: Mosaic and the Pilot algorithm.

* :mod:`repro.core.interaction` — interaction distributions ``Psi``
  (Eq. 1) and future-knowledge fusion (Eq. 2);
* :mod:`repro.core.cost` — the cost function ``u`` (Eq. 3) and the
  Potential ``P`` (Eq. 4) with the simplification theorem;
* :mod:`repro.core.pilot` — Algorithm 1 (scalar, per-client) and its
  vectorised batch equivalent;
* :mod:`repro.core.client` — the client/wallet abstraction with its
  local transaction store;
* :mod:`repro.core.migration` — migration-request policy;
* :mod:`repro.core.mosaic` — the client-driven framework packaged as an
  :class:`repro.allocation.base.Allocator` for the simulation engine.
"""

from repro.core.interaction import (
    interaction_distribution,
    interaction_matrix,
    fuse_distributions,
)
from repro.core.cost import (
    transaction_cost,
    cost_vector,
    potential,
    potential_vector,
    potential_matrix,
)
from repro.core.pilot import Pilot, PilotDecision, batch_pilot_decisions
from repro.core.client import Client
from repro.core.migration import MigrationPolicy
from repro.core.mosaic import MosaicAllocator
from repro.core.fees import (
    FeeModel,
    LinearFee,
    PowerFee,
    BaseFeeMarket,
    generalized_potential_vector,
)
from repro.core.coalition import Coalition, CoalitionDecision
from repro.chain.migration import MigrationRequest

__all__ = [
    "interaction_distribution",
    "interaction_matrix",
    "fuse_distributions",
    "transaction_cost",
    "cost_vector",
    "potential",
    "potential_vector",
    "potential_matrix",
    "Pilot",
    "PilotDecision",
    "batch_pilot_decisions",
    "Client",
    "MigrationPolicy",
    "MosaicAllocator",
    "FeeModel",
    "LinearFee",
    "PowerFee",
    "BaseFeeMarket",
    "generalized_potential_vector",
    "Coalition",
    "CoalitionDecision",
    "MigrationRequest",
]
