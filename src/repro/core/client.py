"""The client (wallet) abstraction.

A Mosaic client stores only the transactions that involve its own
account — "a common feature of existing wallets" (Table VI footnote) —
plus whatever future transactions it expects. From that local data and a
downloaded workload snapshot it runs Pilot and, when beneficial, emits a
migration request.

The class also accounts for the client's input data size (its ``T_nu``
plus the ``k`` floats of ``Omega``), the quantity Table IV reports as
228.66 bytes per account on the paper's dataset.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.chain.mapping import ShardMapping
from repro.chain.migration import MigrationRequest
from repro.chain.transaction import TX_RECORD_BYTES, Transaction, TransactionBatch
from repro.core.pilot import Pilot, PilotDecision
from repro.errors import ValidationError
from repro.workload.observer import OMEGA_ENTRY_BYTES, WorkloadSnapshot


class Client:
    """One client controlling one account (the paper's ``nu``)."""

    def __init__(self, account: int, eta: float, beta: float = 0.0) -> None:
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        self.account = account
        self.pilot = Pilot(eta=eta, beta=beta)
        self._history: List[Transaction] = []
        self._expected: List[Transaction] = []

    # -- local transaction store -------------------------------------------------

    @property
    def history(self) -> TransactionBatch:
        """The client's committed transactions ``T_h^nu``."""
        return TransactionBatch.from_transactions(self._history)

    @property
    def expected(self) -> TransactionBatch:
        """The client's expected future transactions ``T_e^nu``."""
        return TransactionBatch.from_transactions(self._expected)

    def observe_committed(self, transaction: Transaction) -> None:
        """Record a committed transaction involving this account."""
        if not transaction.involves(self.account):
            raise ValidationError(
                f"transaction {transaction!r} does not involve account "
                f"{self.account}"
            )
        self._history.append(transaction)

    def observe_committed_batch(self, batch: TransactionBatch) -> int:
        """Record all transactions in ``batch`` involving this account."""
        own = batch.involving(self.account)
        for tx in own:
            self._history.append(tx)
        return len(own)

    def expect(self, transaction: Transaction) -> None:
        """Record an expected future transaction (daily routine, plans)."""
        if not transaction.involves(self.account):
            raise ValidationError(
                f"expected transaction {transaction!r} does not involve "
                f"account {self.account}"
            )
        self._expected.append(transaction)

    def clear_expected(self) -> None:
        """Drop expectations (e.g. after the epoch they referred to)."""
        self._expected.clear()

    # -- decision making ---------------------------------------------------------

    def run_pilot(
        self, snapshot: WorkloadSnapshot, mapping: ShardMapping
    ) -> PilotDecision:
        """Run Pilot on the local store and a downloaded snapshot."""
        return self.pilot.decide(
            account=self.account,
            history=self.history,
            expected=self.expected,
            omega=snapshot.omega,
            mapping=mapping,
        )

    def propose_migration(
        self,
        snapshot: WorkloadSnapshot,
        mapping: ShardMapping,
        epoch: int = 0,
        fee: float = 0.0,
    ) -> Optional[MigrationRequest]:
        """Run Pilot and build a migration request when it pays off."""
        decision = self.run_pilot(snapshot, mapping)
        if not decision.wants_migration:
            return None
        return MigrationRequest(
            account=self.account,
            from_shard=decision.current_shard,
            to_shard=decision.best_shard,
            gain=decision.gain,
            epoch=epoch,
            fee=fee,
        )

    # -- accounting ---------------------------------------------------------------

    def input_data_bytes(self, k: int) -> int:
        """Bytes the wallet holds for allocation: ``T_nu`` records + Omega.

        This is the client-side *storage* footprint (Table VI: "clients
        store only their related transactions").
        """
        records = (len(self._history) + len(self._expected)) * TX_RECORD_BYTES
        return records + k * OMEGA_ENTRY_BYTES

    def pilot_input_bytes(self, mapping: ShardMapping) -> float:
        """Bytes one Pilot run actually consumes (Table IV's input size).

        The algorithm reads the sparse interaction distribution ``Psi``
        (shard id + count per non-zero entry), the ``k``-float workload
        vector, and a few scalars — hundreds of bytes in total.
        """
        from repro.core.interaction import interaction_distribution

        psi = interaction_distribution(self.account, self.history, mapping)
        psi += interaction_distribution(self.account, self.expected, mapping)
        nonzero = int((psi > 0).sum())
        return mapping.k * OMEGA_ENTRY_BYTES + nonzero * 10 + 16

    def __repr__(self) -> str:
        return (
            f"Client(account={self.account}, history={len(self._history)}, "
            f"expected={len(self._expected)})"
        )
