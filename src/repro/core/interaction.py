"""Interaction distributions ``Psi`` (Section III-C-1).

The interaction distribution of an account ``nu`` is the k-vector whose
entry ``psi_i`` counts how many times ``nu`` interacted with accounts
currently residing in shard ``i`` (Eq. 1):

    psi_{h,i} = sum_{Tx in T_h^nu} sum_{b in A_Tx - {nu}} 1(phi(b) = i)

Two sources feed it: the client's committed history ``T_h^nu`` and its
expected future transactions ``T_e^nu``; Eq. 2 fuses them with the
confidence parameter ``beta``:

    Psi = (1 - beta) * Psi_h + beta * Psi_e
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.chain.mapping import ShardMapping
from repro.chain.transaction import TransactionBatch
from repro.errors import ValidationError
from repro.util.validation import check_probability


def interaction_distribution(
    account: int,
    transactions: TransactionBatch,
    mapping: ShardMapping,
) -> np.ndarray:
    """Compute ``Psi^nu`` (Eq. 1) for one account.

    ``transactions`` may be any batch; only the transactions involving
    ``account`` contribute. Counterparty shards are evaluated under the
    *current* ``mapping``, as the paper prescribes (clients re-evaluate
    stored history against the latest allocation view).
    """
    if account < 0:
        raise ValidationError(f"account must be >= 0, got {account}")
    own = transactions.involving(account)
    # Self-transfers have A_Tx - {nu} empty, so they contribute nothing.
    own = own.select(own.senders != own.receivers)
    psi = np.zeros(mapping.k, dtype=np.float64)
    if len(own) == 0:
        return psi
    counterparties = np.where(own.senders == account, own.receivers, own.senders)
    shards = mapping.shards_of(counterparties)
    psi += np.bincount(shards, minlength=mapping.k)
    return psi


def interaction_matrix(
    batch: TransactionBatch,
    mapping: ShardMapping,
    accounts: np.ndarray,
) -> np.ndarray:
    """Vectorised Eq. 1 for many accounts at once.

    Returns a ``(len(accounts), k)`` matrix whose row ``r`` is
    ``Psi^{accounts[r]}`` computed over ``batch`` under ``mapping``.
    ``accounts`` must be sorted and unique (callers pass the output of
    ``np.unique``).
    """
    accounts = np.asarray(accounts, dtype=np.int64)
    if len(accounts) > 1 and np.any(np.diff(accounts) <= 0):
        raise ValidationError("accounts must be sorted and unique")
    k = mapping.k
    matrix = np.zeros((len(accounts), k), dtype=np.float64)
    if len(batch) == 0 or len(accounts) == 0:
        return matrix
    # Self-transfers have A_Tx - {nu} empty and contribute nothing
    # (matching the scalar interaction_distribution exactly).
    batch = batch.select(batch.senders != batch.receivers)
    if len(batch) == 0:
        return matrix

    sender_shards = mapping.shards_of(batch.senders)
    receiver_shards = mapping.shards_of(batch.receivers)

    # Sender side: each transaction adds 1 to Psi[sender, shard(receiver)].
    for ids, counter_shards in (
        (batch.senders, receiver_shards),
        (batch.receivers, sender_shards),
    ):
        rows = np.searchsorted(accounts, ids)
        rows = np.clip(rows, 0, len(accounts) - 1)
        present = accounts[rows] == ids
        if not present.any():
            continue
        keys = rows[present] * k + counter_shards[present]
        counts = np.bincount(keys, minlength=len(accounts) * k)
        matrix += counts.reshape(len(accounts), k)
    return matrix


def fuse_distributions(
    psi_history: np.ndarray,
    psi_expected: np.ndarray,
    beta: float,
) -> np.ndarray:
    """Fuse historical and expected distributions (Eq. 2).

    ``beta`` is the client's confidence in its future knowledge: 0 means
    rely entirely on history, 1 entirely on expectations. Works on
    single vectors and on stacked matrices alike.
    """
    check_probability("beta", beta)
    psi_history = np.asarray(psi_history, dtype=np.float64)
    psi_expected = np.asarray(psi_expected, dtype=np.float64)
    if psi_history.shape != psi_expected.shape:
        raise ValidationError(
            f"shape mismatch: history {psi_history.shape} vs "
            f"expected {psi_expected.shape}"
        )
    return (1.0 - beta) * psi_history + beta * psi_expected
