"""Client coalitions: coordinated shard selection (Section VII-C).

The paper leaves coordinated clients as future work: "clients may
coordinate with each other for shard allocation, which would be
reflected in the phi(A_Tx - {nu}) of Equation (1). This introduces the
potential for collaborated clients with enhanced performance."

This module implements the natural first model. A :class:`Coalition`
is a set of accounts (friends, a business and its customers, a DAO)
that decide *jointly*: they evaluate, for each shard, the total cost of
the whole group relocating there — internal transactions between
members are counted as intra-shard wherever the group lands, which is
exactly the information an individually-optimising client cannot use —
and submit coordinated migration requests for every member.

Formally, the coalition potential of shard ``i`` is::

    P_C(i) = sum_{nu in C} P^nu_i(Psi^nu_ext)  +  (2*eta - 1) * W_int * xi_i

where ``Psi^nu_ext`` counts only interactions with non-members (member
interactions follow the group, so they contribute the intra-shard bonus
``W_int``, the total internal interaction weight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.mapping import ShardMapping
from repro.chain.migration import MigrationRequest
from repro.chain.transaction import TransactionBatch
from repro.core.interaction import interaction_matrix
from repro.errors import ValidationError
from repro.workload.observer import WorkloadSnapshot


@dataclass(frozen=True)
class CoalitionDecision:
    """Outcome of one coalition-wide shard evaluation."""

    members: Tuple[int, ...]
    best_shard: int
    gain: float
    potentials: np.ndarray

    @property
    def wants_migration(self) -> bool:
        """True when moving the whole group strictly lowers its cost."""
        return self.gain > 0


class Coalition:
    """A group of accounts optimising their shard jointly."""

    def __init__(self, members: Sequence[int], eta: float) -> None:
        unique = sorted(set(int(m) for m in members))
        if len(unique) < 2:
            raise ValidationError("a coalition needs at least two members")
        if unique[0] < 0:
            raise ValidationError("account ids must be >= 0")
        if eta < 1:
            raise ValidationError(f"eta must be >= 1, got {eta}")
        self.members = tuple(unique)
        self.eta = eta
        self._member_set: FrozenSet[int] = frozenset(unique)

    def split_interactions(
        self, history: TransactionBatch, mapping: ShardMapping
    ) -> Tuple[np.ndarray, float]:
        """Split members' interactions into (external Psi matrix, W_int).

        ``Psi_ext[r, i]`` counts member ``r``'s interactions with
        *non-member* accounts currently on shard ``i``; ``W_int`` is the
        total weight of member-to-member interactions (each internal
        transaction counted once).
        """
        member_array = np.asarray(self.members, dtype=np.int64)
        sender_in = np.isin(history.senders, member_array)
        receiver_in = np.isin(history.receivers, member_array)
        internal_mask = sender_in & receiver_in
        external_mask = (sender_in | receiver_in) & ~internal_mask
        external = history.select(external_mask)
        psi_ext = interaction_matrix(external, mapping, member_array)
        internal_weight = float(internal_mask.sum())
        return psi_ext, internal_weight

    def decide(
        self,
        history: TransactionBatch,
        snapshot: WorkloadSnapshot,
        mapping: ShardMapping,
    ) -> CoalitionDecision:
        """Choose the best shard for the whole group.

        The current cost baseline is the group's summed individual
        Potential under the status quo (members may currently sit on
        different shards); the gain is relative to that.
        """
        if snapshot.k != mapping.k:
            raise ValidationError(
                f"snapshot has k={snapshot.k}, mapping has k={mapping.k}"
            )
        eta = self.eta
        omega = snapshot.omega
        psi_ext, internal_weight = self.split_interactions(history, mapping)

        # External part: standard per-member Potential, vectorised over
        # candidate shards. psi totals include internal interactions —
        # the group's transactions still cost fees wherever it sits.
        psi_totals = psi_ext.sum(axis=1) + _internal_degree(
            history, self.members
        )
        coef = (2.0 * eta - 1.0) * psi_ext - eta * psi_totals[:, np.newaxis]
        member_potentials = coef * omega[np.newaxis, :]

        # Internal part: every internal interaction becomes intra-shard
        # when the group co-locates, worth (2*eta - 1) * xi_i per unit
        # relative to it being cross-shard (the same saving Eq. 4 grants
        # a single client for co-locating with a counterparty).
        internal_bonus = (2.0 * eta - 1.0) * internal_weight * omega

        group_potentials = member_potentials.sum(axis=0) + internal_bonus

        # Status quo: members stay where they are; internal interactions
        # are intra only for members already sharing a shard.
        current_shards = mapping.shards_of(np.asarray(self.members))
        rows = np.arange(len(self.members))
        current_external = member_potentials[rows, current_shards].sum()
        current_internal = _status_quo_internal_bonus(
            history, self.members, mapping, omega, eta
        )
        current_value = current_external + current_internal

        best = int(np.argmax(group_potentials))
        gain = float(group_potentials[best] - current_value)
        return CoalitionDecision(
            members=self.members,
            best_shard=best,
            gain=gain,
            potentials=group_potentials,
        )

    def propose_migrations(
        self,
        history: TransactionBatch,
        snapshot: WorkloadSnapshot,
        mapping: ShardMapping,
        epoch: int = 0,
    ) -> List[MigrationRequest]:
        """Coordinated migration requests for every member not already
        on the chosen shard (empty when staying put is optimal)."""
        decision = self.decide(history, snapshot, mapping)
        if not decision.wants_migration:
            return []
        requests = []
        per_member_gain = decision.gain / len(self.members)
        for member in self.members:
            current = mapping.shard_of(member)
            if current == decision.best_shard:
                continue
            requests.append(
                MigrationRequest(
                    account=member,
                    from_shard=current,
                    to_shard=decision.best_shard,
                    gain=per_member_gain,
                    epoch=epoch,
                )
            )
        return requests


def _internal_degree(
    history: TransactionBatch, members: Tuple[int, ...]
) -> np.ndarray:
    """Per-member count of internal (member-to-member) interactions."""
    member_array = np.asarray(members, dtype=np.int64)
    sender_in = np.isin(history.senders, member_array)
    receiver_in = np.isin(history.receivers, member_array)
    internal = history.select(sender_in & receiver_in)
    counts = np.zeros(len(members), dtype=np.float64)
    for ids in (internal.senders, internal.receivers):
        rows = np.searchsorted(member_array, ids)
        rows = np.clip(rows, 0, len(members) - 1)
        present = member_array[rows] == ids
        counts += np.bincount(rows[present], minlength=len(members))
    return counts


def _status_quo_internal_bonus(
    history: TransactionBatch,
    members: Tuple[int, ...],
    mapping: ShardMapping,
    omega: np.ndarray,
    eta: float,
) -> float:
    """Internal-interaction value under the current (split) placement."""
    member_array = np.asarray(members, dtype=np.int64)
    sender_in = np.isin(history.senders, member_array)
    receiver_in = np.isin(history.receivers, member_array)
    internal = history.select(sender_in & receiver_in)
    if len(internal) == 0:
        return 0.0
    sender_shards = mapping.shards_of(internal.senders)
    receiver_shards = mapping.shards_of(internal.receivers)
    intra = sender_shards == receiver_shards
    # Intra internal pairs already earn the co-location bonus on their
    # shared shard; cross internal pairs earn nothing.
    bonus = (2.0 * eta - 1.0) * omega[sender_shards[intra]]
    return float(bonus.sum())
