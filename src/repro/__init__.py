"""Mosaic: client-driven account allocation in sharded blockchains.

A from-scratch reproduction of *"Mosaic: Client-driven Account
Allocation Framework in Sharded Blockchains"* (ICDCS 2025). The public
API re-exports the pieces a downstream user needs:

* the sharded-blockchain substrate (:mod:`repro.chain`),
* the Mosaic framework and the Pilot algorithm (:mod:`repro.core`),
* the miner-driven baselines (:mod:`repro.allocation`),
* synthetic Ethereum-like traces and ETL (:mod:`repro.data`),
* the evaluation engine and metrics (:mod:`repro.sim`).

Quickstart::

    from repro import (
        EthereumTraceConfig, generate_ethereum_like_trace,
        MosaicAllocator, ProtocolParams, Simulation, SimulationConfig,
    )

    trace = generate_ethereum_like_trace(EthereumTraceConfig(seed=7))
    params = ProtocolParams(k=16, eta=2.0, tau=300)
    config = SimulationConfig(params=params)
    result = Simulation(trace, MosaicAllocator(), config).run()
    print(result.mean_cross_shard_ratio)
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    ValidationError,
    MappingError,
    MigrationError,
    AllocationError,
    PartitionError,
    DataError,
    SimulationError,
)
from repro.chain import (
    ProtocolParams,
    AccountRegistry,
    Transaction,
    TransactionBatch,
    ShardMapping,
    Mempool,
    ShardChain,
    BeaconChain,
    Ledger,
    MinerPool,
    OverheadModel,
)
from repro.chain.migration import MigrationRequest
from repro.core import (
    Pilot,
    PilotDecision,
    Client,
    MigrationPolicy,
    MosaicAllocator,
    Coalition,
    FeeModel,
    LinearFee,
    PowerFee,
    BaseFeeMarket,
    interaction_distribution,
    fuse_distributions,
    potential_vector,
    transaction_cost,
)
from repro.allocation import (
    Allocator,
    HashAllocator,
    MetisLikeAllocator,
    TxAlloAllocator,
    OrbitAllocator,
    TransactionGraph,
)
from repro.sim.scenario import Scenario, SCENARIOS, get_scenario, run_comparison
from repro.data import (
    Trace,
    EthereumTraceConfig,
    ValueModelConfig,
    generate_ethereum_like_trace,
    read_transactions_csv,
    write_transactions_csv,
    TraceSource,
    MaterialisedTraceSource,
    GeneratorTraceSource,
    CsvTraceSource,
    EpochStream,
    stream_epochs,
)
from repro.sim import (
    Simulation,
    SimulationConfig,
    SimulationResult,
    cross_shard_ratio,
    workload_deviation,
    normalized_throughput,
)
from repro.workload import WorkloadOracle, WorkloadSnapshot

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "MappingError",
    "MigrationError",
    "AllocationError",
    "PartitionError",
    "DataError",
    "SimulationError",
    "ProtocolParams",
    "AccountRegistry",
    "Transaction",
    "TransactionBatch",
    "ShardMapping",
    "Mempool",
    "ShardChain",
    "BeaconChain",
    "Ledger",
    "MinerPool",
    "OverheadModel",
    "MigrationRequest",
    "Pilot",
    "PilotDecision",
    "Client",
    "MigrationPolicy",
    "MosaicAllocator",
    "Coalition",
    "FeeModel",
    "LinearFee",
    "PowerFee",
    "BaseFeeMarket",
    "interaction_distribution",
    "fuse_distributions",
    "potential_vector",
    "transaction_cost",
    "Allocator",
    "HashAllocator",
    "MetisLikeAllocator",
    "TxAlloAllocator",
    "OrbitAllocator",
    "TransactionGraph",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "run_comparison",
    "Trace",
    "EthereumTraceConfig",
    "ValueModelConfig",
    "generate_ethereum_like_trace",
    "read_transactions_csv",
    "write_transactions_csv",
    "TraceSource",
    "MaterialisedTraceSource",
    "GeneratorTraceSource",
    "CsvTraceSource",
    "EpochStream",
    "stream_epochs",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "cross_shard_ratio",
    "workload_deviation",
    "normalized_throughput",
    "WorkloadOracle",
    "WorkloadSnapshot",
    "__version__",
]
