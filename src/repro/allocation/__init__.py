"""Account-allocation algorithms: baselines and shared infrastructure.

* :mod:`repro.allocation.hash_based` — static hash allocation
  (Chainspace/Monoxide style).
* :mod:`repro.allocation.metis_like` — from-scratch multilevel graph
  partitioner in the spirit of METIS.
* :mod:`repro.allocation.txallo` — re-implementation of TxAllo
  (G-TxAllo full + A-TxAllo incremental).
* :mod:`repro.allocation.graph` — the weighted account-interaction graph
  all graph-based methods consume.
"""

from repro.allocation.base import Allocator, AllocationUpdate, UpdateContext
from repro.allocation.graph import TransactionGraph
from repro.allocation.hash_based import (
    HashAllocator,
    PrefixBitAllocator,
    hash_shard_of_address,
)
from repro.allocation.metis_like import MetisLikeAllocator, partition_graph
from repro.allocation.txallo import TxAlloAllocator, g_txallo, a_txallo
from repro.allocation.orbit import OrbitAllocator

__all__ = [
    "Allocator",
    "AllocationUpdate",
    "UpdateContext",
    "TransactionGraph",
    "HashAllocator",
    "PrefixBitAllocator",
    "hash_shard_of_address",
    "MetisLikeAllocator",
    "partition_graph",
    "TxAlloAllocator",
    "g_txallo",
    "a_txallo",
    "OrbitAllocator",
]
