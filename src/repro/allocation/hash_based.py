"""Hash-based (random) static allocation.

Conventional sharding protocols allocate accounts by hashing their
address: Chainspace uses ``SHA256(address) mod k``; Monoxide uses the
first ``log2(k)`` bits of the hash. Both ignore transaction patterns, so
they achieve near-perfect workload balance while suffering very high
cross-shard ratios (over 90% at k=16 in the paper's Table I).

The allocation is static: no updates, no migrations, and new accounts are
placed by the same hash rule.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional

import numpy as np

from repro.allocation.base import AllocationUpdate, Allocator, UpdateContext
from repro.chain.account import AccountRegistry, address_from_id
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.data.trace import Trace
from repro.errors import ConfigurationError

#: Bytes of input per allocation decision: the 20-byte address.
ADDRESS_INPUT_BYTES = 20


def hash_shard_of_address(address: str, k: int) -> int:
    """``SHA256(address) mod k`` (Chainspace rule)."""
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    digest = hashlib.sha256(address.lower().encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % k


def prefix_bit_shard_of_address(address: str, k: int) -> int:
    """First ``log2(k)`` bits of the hash (Monoxide rule); k must be 2^n."""
    if k < 1 or (k & (k - 1)) != 0:
        raise ConfigurationError(f"k must be a power of two, got {k}")
    digest = hashlib.sha256(address.lower().encode("utf-8")).digest()
    bits = k.bit_length() - 1
    if bits == 0:
        return 0
    return digest[0] >> (8 - bits) if bits <= 8 else int.from_bytes(
        digest[:4], "big"
    ) >> (32 - bits)


class HashAllocator(Allocator):
    """Static ``SHA256(address) mod k`` allocation."""

    name = "hash-random"

    def __init__(self, registry: Optional[AccountRegistry] = None) -> None:
        self._registry = registry

    def _address_of(self, account_id: int) -> str:
        if self._registry is not None:
            return self._registry.address_of(account_id)
        return address_from_id(account_id)

    def _shard_of(self, account_id: int, k: int) -> int:
        return hash_shard_of_address(self._address_of(account_id), k)

    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        assignment = np.fromiter(
            (self._shard_of(a, params.k) for a in range(history.n_accounts)),
            dtype=np.int64,
            count=history.n_accounts,
        )
        return ShardMapping(assignment, params.k)

    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        # Static allocation: the only "work" is hashing any new addresses,
        # which place_new_accounts already covered. Time one hash so the
        # efficiency tables have a non-zero, honest unit cost.
        start = time.perf_counter()
        self._shard_of(0, context.params.k)
        elapsed = time.perf_counter() - start
        return AllocationUpdate(
            mapping=mapping,
            execution_time=elapsed,
            unit_time=elapsed,
            input_bytes=ADDRESS_INPUT_BYTES,
            migrations=0,
            proposed_migrations=0,
        )

    def place_new_accounts(
        self,
        new_account_ids: np.ndarray,
        mapping: ShardMapping,
        context: Optional[UpdateContext] = None,
    ) -> np.ndarray:
        k = mapping.k
        return np.fromiter(
            (self._shard_of(int(a), k) for a in new_account_ids),
            dtype=np.int64,
            count=len(new_account_ids),
        )


class PrefixBitAllocator(HashAllocator):
    """Static Monoxide-style first-bits allocation (k must be 2^n)."""

    name = "hash-prefix-bits"

    def _shard_of(self, account_id: int, k: int) -> int:
        return prefix_bit_shard_of_address(self._address_of(account_id), k)
