"""The allocator interface shared by Mosaic and all baselines.

The simulation engine drives every allocation method through the same
two-phase protocol the paper's evaluation uses:

1. :meth:`Allocator.initialize` — given the historical prefix of the
   trace (the first 90%), produce the initial mapping ``phi_0``.
2. :meth:`Allocator.update` — after each evaluation epoch, given the
   epoch's committed transactions and the next epoch's mempool, produce
   the mapping used for the *next* epoch, together with efficiency
   accounting (execution time and input data size, Table IV).

New accounts are handled by :meth:`Allocator.place_new_accounts`, called
by the engine before an epoch references ids the mapping has not seen:
hash methods place them by hash, graph methods randomly (the paper does
the same), and Mosaic lets the new clients choose for themselves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.chain.transaction import TransactionBatch
from repro.data.trace import Trace


@dataclass
class UpdateContext:
    """Everything an allocator may consult during one epoch update.

    Attributes:
        epoch: evaluation-epoch index (0-based).
        params: protocol parameters.
        committed: transactions committed in the epoch that just ended;
            the history delta every participant can observe on-chain.
        mempool: pending transactions for the upcoming epoch — the
            paper's workload-oracle source (Section V-A).
        capacity: the shard capacity ``lambda`` for the epoch, which also
            caps beacon-chain migration commitments.
    """

    epoch: int
    params: ProtocolParams
    committed: TransactionBatch
    mempool: TransactionBatch
    capacity: float


@dataclass
class AllocationUpdate:
    """Result of one allocator update round.

    Attributes:
        mapping: the mapping to use for the next epoch.
        execution_time: wall-clock seconds spent inside the allocation
            algorithm for the whole round.
        unit_time: seconds for one *decision unit* — one client running
            Pilot for Mosaic, the full run for miner-driven methods.
            This is the quantity Table IV reports.
        input_bytes: bytes of input the decision unit consumed (Table IV):
            per-client ``T_nu`` + ``Omega`` for Mosaic, the transaction
            graph for miner-driven methods.
        migrations: number of accounts that changed shard this round.
        proposed_migrations: migrations requested before capacity capping
            (equals ``migrations`` for miner-driven methods).
    """

    mapping: ShardMapping
    execution_time: float = 0.0
    unit_time: float = 0.0
    input_bytes: float = 0.0
    migrations: int = 0
    proposed_migrations: int = 0


class Allocator(abc.ABC):
    """Abstract base class for account-allocation algorithms."""

    #: Human-readable algorithm name used in benchmark tables.
    name: str = "allocator"

    @abc.abstractmethod
    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        """Produce the initial mapping from the historical trace prefix."""

    @abc.abstractmethod
    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        """Produce the next epoch's mapping after one evaluation epoch."""

    def place_new_accounts(
        self,
        new_account_ids: np.ndarray,
        mapping: ShardMapping,
        context: Optional[UpdateContext] = None,
    ) -> np.ndarray:
        """Choose shards for accounts never seen before.

        Default: uniform-random placement keyed by account id — this is
        what the paper applies to Metis/TxAllo ("these accounts are
        randomly allocated"). Subclasses override.
        """
        rng = np.random.default_rng(
            int(new_account_ids[0]) + 1 if len(new_account_ids) else 1
        )
        return rng.integers(0, mapping.k, size=len(new_account_ids), dtype=np.int64)
