"""Re-implementation of TxAllo (Zhang et al., ICDE 2023).

TxAllo is the state-of-the-art miner-driven graph-based allocator the
paper compares against. Its objective jointly reduces cross-shard
transactions and balances shard workload; it ships two components:

* **G-TxAllo** — the complete algorithm over the full historical graph:
  deterministic rounds of greedy account moves (community-detection
  flavoured label updates) under a workload cap.
* **A-TxAllo** — the fast adaptive variant: a single greedy pass over
  only the accounts active in the recent window, reusing the standing
  allocation for everyone else.

The original implementation is not public; this version follows the
published description (see DESIGN.md §4). Both variants are
deterministic given their inputs, as miner-driven allocation requires
(every miner must derive the same result without extra consensus).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.allocation.base import AllocationUpdate, Allocator, UpdateContext
from repro.allocation.graph import TransactionGraph
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.data.trace import Trace
from repro.errors import AllocationError

DEFAULT_BALANCE_FACTOR = 1.15
DEFAULT_ROUNDS = 6


def _move_gain(
    connection: np.ndarray,
    loads: np.ndarray,
    degree: float,
    eta: float,
    average_load: float,
) -> np.ndarray:
    """Score each shard as a destination for one account.

    The first term rewards co-location with counterparties (each unit of
    connection weight saved converts a cross-shard transaction, worth
    ``2 * eta - 1`` workload units system-wide). The second term
    penalises joining already-overloaded shards proportionally to the
    workload the account brings, which is TxAllo's balance pressure.
    Works element-wise on a ``(k,)`` vector and row-wise on an ``(n, k)``
    connection matrix alike (``degree`` then being an ``(n, 1)`` column).
    """
    colocation = (2.0 * eta - 1.0) * connection
    balance_penalty = degree * (loads / max(average_load, 1e-12))
    return colocation - balance_penalty


def _commit_move(
    u: int,
    assignment: np.ndarray,
    loads: np.ndarray,
    degrees: np.ndarray,
    edge_v: np.ndarray,
    edge_w: np.ndarray,
    indptr: np.ndarray,
    k: int,
    eta: float,
    average_load: float,
    load_cap: float,
) -> bool:
    """Re-evaluate account ``u`` under the *current* state and move it.

    The synchronous candidate scan uses round-start loads; this commit
    step recomputes ``u``'s connection row and the balance penalty
    against the live assignment/loads, so every applied move is a true
    improvement at application time (no oscillation from stale scores).
    Returns True when ``u`` moved.
    """
    start, stop = indptr[u], indptr[u + 1]
    connection = np.bincount(
        assignment[edge_v[start:stop]],
        weights=edge_w[start:stop],
        minlength=k,
    )
    degree = float(degrees[u])
    scores = _move_gain(connection, loads, degree, eta, average_load)
    current = int(assignment[u])
    feasible = loads + degree <= load_cap
    feasible[current] = True
    masked = np.where(feasible, scores, -np.inf)
    best = int(np.argmax(masked))
    if best == current or not masked[best] > scores[current] + 1e-12:
        return False
    assignment[u] = best
    loads[current] -= degree
    loads[best] += degree
    return True


def g_txallo(
    graph: TransactionGraph,
    k: int,
    eta: float,
    balance_factor: float = DEFAULT_BALANCE_FACTOR,
    max_rounds: int = DEFAULT_ROUNDS,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Full deterministic TxAllo over the whole graph.

    Returns a dense assignment array of length ``graph.n_accounts``;
    accounts without edges keep their ``initial`` value (or shard
    ``account_id mod k`` when no initial assignment is given, a
    deterministic stand-in for hash placement).
    """
    if k < 1:
        raise AllocationError(f"k must be >= 1, got {k}")
    n = graph.n_accounts
    if initial is not None:
        assignment = np.asarray(initial, dtype=np.int64).copy()
        if len(assignment) != n:
            raise AllocationError(
                f"initial assignment covers {len(assignment)} accounts, "
                f"graph has {n}"
            )
    else:
        assignment = np.arange(n, dtype=np.int64) % k

    vertices = np.asarray(graph.vertices(), dtype=np.int64)
    if len(vertices) == 0:
        return assignment
    edge_u, edge_v, edge_w = graph.to_arrays()
    indptr = graph.csr_indptr(edge_u)
    degrees = graph.vertex_weights()

    loads = np.bincount(
        assignment[vertices], weights=degrees[vertices], minlength=k
    ).astype(np.float64)
    average_load = float(loads.sum()) / k
    load_cap = balance_factor * average_load

    # Deterministic visit order: heaviest accounts first, ties by id.
    order = vertices[np.lexsort((vertices, -degrees[vertices]))]
    rows = np.arange(n)
    # Hoisted per-call state for the scan (edge-key base) and the commit
    # loop (scalar mirrors; the live re-check reuses the scan's cached
    # connection rows unless a neighbour moved after the scan).
    edge_keys = edge_u * k
    coef = 2.0 * eta - 1.0
    avg_denom = max(average_load, 1e-12)
    max_degree = degrees.max() if len(degrees) else 0.0
    degrees_l = degrees.tolist()
    assignment_l = assignment.tolist()
    neg_inf = -np.inf
    # Integer-valued edge weights make float adds exact, so the
    # connection matrix is maintained incrementally across commits and
    # rounds (bit-identical to a fresh scatter); fractional weights
    # rebuild per round with dirty-row tracking.
    integral = bool((np.rint(edge_w) == edge_w).all())
    connection = None
    connection_flat = None
    edge_v_k = edge_v * k if integral else None
    indptr_l = indptr.tolist()

    for _ in range(max_rounds):
        # Synchronous candidate scan: one scatter builds every account's
        # connection-to-shard row, one matrix op scores all k
        # destinations (vectorising the former per-account
        # ``_shard_connections`` dict walk).
        if connection is None:
            connection_flat = np.bincount(
                edge_keys + assignment[edge_v], weights=edge_w, minlength=n * k
            )
            connection = connection_flat.reshape(n, k)
        scores = _move_gain(
            connection, loads, degrees[:, np.newaxis], eta, average_load
        )
        current_scores = scores[rows, assignment]
        if loads.max() + max_degree <= load_cap:
            # Even the heaviest account fits everywhere: the dense
            # feasibility mask is all-True, and re-writing the current
            # column with its own scores is a no-op — scan the raw
            # score matrix directly.
            masked = scores
        else:
            feasible = loads[np.newaxis, :] + degrees[:, np.newaxis] <= load_cap
            masked = np.where(feasible, scores, -np.inf)
            masked[rows, assignment] = current_scores
        best = np.argmax(masked, axis=1)
        wants_move = (
            (best != assignment)
            & (masked[rows, best] > current_scores + 1e-12)
            & (degrees > 0)
        )
        movers = order[wants_move[order]]
        moved = 0
        dirty = None if integral else np.zeros(n, dtype=bool)
        loads_l = loads.tolist()
        for u in movers.tolist():
            # Exact re-check under the live assignment/loads keeps the
            # greedy deterministic and monotone despite the synchronous
            # candidate scan; it is branch-for-branch the masked argmax
            # of :func:`_commit_move` on plain scalars.
            start, stop = indptr_l[u], indptr_l[u + 1]
            if dirty is not None and dirty[u]:
                conn = np.bincount(
                    assignment[edge_v[start:stop]],
                    weights=edge_w[start:stop],
                    minlength=k,
                ).tolist()
            else:
                conn = connection[u].tolist()
            degree = degrees_l[u]
            current = assignment_l[u]
            best_p = 0
            best_val = neg_inf
            for p, c in enumerate(conn):
                if p != current and loads_l[p] + degree > load_cap:
                    continue
                val = coef * c - degree * (loads_l[p] / avg_denom)
                if val > best_val:
                    best_val = val
                    best_p = p
            cur_score = coef * conn[current] - degree * (
                loads_l[current] / avg_denom
            )
            if best_p == current or not best_val > cur_score + 1e-12:
                continue
            assignment_l[u] = best_p
            assignment[u] = best_p
            loads_l[current] -= degree
            loads_l[best_p] += degree
            if dirty is None:
                # Neighbour ids are unique within a row of the directed
                # stream, so fancy-index arithmetic on the flat view is
                # a safe scatter.
                w_row = edge_w[start:stop]
                flat_idx = edge_v_k[start:stop] + current
                connection_flat[flat_idx] -= w_row
                flat_idx += best_p - current
                connection_flat[flat_idx] += w_row
            else:
                dirty[edge_v[start:stop]] = True
            moved += 1
        loads = np.asarray(loads_l, dtype=np.float64)
        if dirty is not None:
            connection = None
        if moved == 0:
            break
    return assignment


def a_txallo(
    graph: TransactionGraph,
    assignment: np.ndarray,
    active_accounts: Iterable[int],
    k: int,
    eta: float,
    balance_factor: float = DEFAULT_BALANCE_FACTOR,
) -> Tuple[np.ndarray, int]:
    """Adaptive TxAllo: one greedy pass over the active accounts only.

    Returns ``(new_assignment, moved_count)``. ``graph`` should contain
    at least the recent-window interactions; A-TxAllo's whole point is
    that it does not need the full ledger.
    """
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    active = sorted(
        (a for a in set(int(a) for a in active_accounts) if graph.degree(a) > 0),
        key=lambda a: (-graph.degree(a), a),
    )
    if not active:
        return assignment, 0

    edge_u, edge_v, edge_w = graph.to_arrays()
    indptr = graph.csr_indptr(edge_u)
    degrees = graph.vertex_weights()
    vertices = np.asarray(graph.vertices(), dtype=np.int64)
    loads = np.bincount(
        assignment[vertices], weights=degrees[vertices], minlength=k
    ).astype(np.float64)
    average_load = float(loads.sum()) / k
    load_cap = balance_factor * max(average_load, 1e-12)

    moved = 0
    for account in active:
        if _commit_move(
            account, assignment, loads, degrees, edge_v, edge_w, indptr,
            k, eta, average_load, load_cap,
        ):
            moved += 1
    return assignment, moved


class TxAlloAllocator(Allocator):
    """Miner-driven TxAllo baseline with G (full) and A (adaptive) modes."""

    def __init__(
        self,
        mode: str = "adaptive",
        balance_factor: float = DEFAULT_BALANCE_FACTOR,
        max_rounds: int = DEFAULT_ROUNDS,
        window_epochs: int = 1,
    ) -> None:
        if mode not in ("adaptive", "full"):
            raise AllocationError(f"mode must be 'adaptive' or 'full', got {mode!r}")
        self.mode = mode
        self.name = "txallo-a" if mode == "adaptive" else "txallo-g"
        self.balance_factor = balance_factor
        self.max_rounds = max_rounds
        self.window_epochs = window_epochs
        self._full_graph = TransactionGraph()
        self._window_graphs: list = []

    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        self._full_graph = TransactionGraph.from_batch(
            history.batch, n_accounts=history.n_accounts
        )
        assignment = g_txallo(
            self._full_graph,
            params.k,
            params.eta,
            balance_factor=self.balance_factor,
            max_rounds=self.max_rounds,
        )
        return ShardMapping(assignment, params.k)

    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        k = mapping.k
        eta = context.params.eta
        self._full_graph.add_batch(context.committed)

        window_graph = TransactionGraph.from_batch(
            context.committed, n_accounts=mapping.n_accounts
        )
        self._window_graphs.append(window_graph)
        if len(self._window_graphs) > self.window_epochs:
            self._window_graphs.pop(0)

        assignment = mapping.as_array().copy()
        if self.mode == "full":
            input_bytes = float(self._full_graph.size_bytes())
            start = time.perf_counter()
            new_assignment = g_txallo(
                self._full_graph,
                k,
                eta,
                balance_factor=self.balance_factor,
                max_rounds=self.max_rounds,
                initial=assignment,
            )
            elapsed = time.perf_counter() - start
        else:
            recent = TransactionGraph(mapping.n_accounts)
            for g in self._window_graphs:
                recent.merge(g)
            input_bytes = float(recent.size_bytes())
            active = context.committed.touched_accounts()
            start = time.perf_counter()
            new_assignment, _ = a_txallo(
                recent,
                assignment,
                active,
                k,
                eta,
                balance_factor=self.balance_factor,
            )
            elapsed = time.perf_counter() - start

        new_mapping = ShardMapping(new_assignment, k)
        moved = len(mapping.diff(new_mapping))
        return AllocationUpdate(
            mapping=new_mapping,
            execution_time=elapsed,
            unit_time=elapsed,
            input_bytes=input_bytes,
            migrations=moved,
            proposed_migrations=moved,
        )
