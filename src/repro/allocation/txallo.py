"""Re-implementation of TxAllo (Zhang et al., ICDE 2023).

TxAllo is the state-of-the-art miner-driven graph-based allocator the
paper compares against. Its objective jointly reduces cross-shard
transactions and balances shard workload; it ships two components:

* **G-TxAllo** — the complete algorithm over the full historical graph:
  deterministic rounds of greedy account moves (community-detection
  flavoured label updates) under a workload cap.
* **A-TxAllo** — the fast adaptive variant: a single greedy pass over
  only the accounts active in the recent window, reusing the standing
  allocation for everyone else.

The original implementation is not public; this version follows the
published description (see DESIGN.md §4). Both variants are
deterministic given their inputs, as miner-driven allocation requires
(every miner must derive the same result without extra consensus).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.allocation.base import AllocationUpdate, Allocator, UpdateContext
from repro.allocation.graph import TransactionGraph
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.data.trace import Trace
from repro.errors import AllocationError

DEFAULT_BALANCE_FACTOR = 1.15
DEFAULT_ROUNDS = 6


def _move_gain(
    connection: np.ndarray,
    loads: np.ndarray,
    degree: float,
    eta: float,
    average_load: float,
) -> np.ndarray:
    """Score each shard as a destination for one account.

    The first term rewards co-location with counterparties (each unit of
    connection weight saved converts a cross-shard transaction, worth
    ``2 * eta - 1`` workload units system-wide). The second term
    penalises joining already-overloaded shards proportionally to the
    workload the account brings, which is TxAllo's balance pressure.
    """
    colocation = (2.0 * eta - 1.0) * connection
    balance_penalty = degree * (loads / max(average_load, 1e-12))
    return colocation - balance_penalty


def _shard_connections(
    graph: TransactionGraph, account: int, assignment: np.ndarray, k: int
) -> np.ndarray:
    """Connection weight from ``account`` to each shard under ``assignment``."""
    connection = np.zeros(k, dtype=np.float64)
    for neighbour, weight in graph.neighbors(account).items():
        connection[assignment[neighbour]] += weight
    return connection


def g_txallo(
    graph: TransactionGraph,
    k: int,
    eta: float,
    balance_factor: float = DEFAULT_BALANCE_FACTOR,
    max_rounds: int = DEFAULT_ROUNDS,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Full deterministic TxAllo over the whole graph.

    Returns a dense assignment array of length ``graph.n_accounts``;
    accounts without edges keep their ``initial`` value (or shard
    ``account_id mod k`` when no initial assignment is given, a
    deterministic stand-in for hash placement).
    """
    if k < 1:
        raise AllocationError(f"k must be >= 1, got {k}")
    n = graph.n_accounts
    if initial is not None:
        assignment = np.asarray(initial, dtype=np.int64).copy()
        if len(assignment) != n:
            raise AllocationError(
                f"initial assignment covers {len(assignment)} accounts, "
                f"graph has {n}"
            )
    else:
        assignment = np.arange(n, dtype=np.int64) % k

    vertices = graph.vertices()
    if not vertices:
        return assignment
    degrees = {v: graph.degree(v) for v in vertices}
    order = sorted(vertices, key=lambda v: (-degrees[v], v))

    loads = np.bincount(
        assignment[vertices],
        weights=np.array([degrees[v] for v in vertices]),
        minlength=k,
    ).astype(np.float64)
    total_load = float(loads.sum())
    average_load = total_load / k
    load_cap = balance_factor * average_load

    for _ in range(max_rounds):
        moved = 0
        for account in order:
            degree = degrees[account]
            if degree == 0.0:
                continue
            current = int(assignment[account])
            connection = _shard_connections(graph, account, assignment, k)
            scores = _move_gain(connection, loads, degree, eta, average_load)
            # Deterministic choice: best score, ties to lowest shard id.
            # A destination must respect the workload cap unless it is
            # the current shard.
            best = current
            best_score = scores[current]
            for shard in range(k):
                if shard == current:
                    continue
                if loads[shard] + degree > load_cap:
                    continue
                if scores[shard] > best_score + 1e-12:
                    best_score = scores[shard]
                    best = shard
            if best != current:
                assignment[account] = best
                loads[current] -= degree
                loads[best] += degree
                moved += 1
        if moved == 0:
            break
    return assignment


def a_txallo(
    graph: TransactionGraph,
    assignment: np.ndarray,
    active_accounts: Iterable[int],
    k: int,
    eta: float,
    balance_factor: float = DEFAULT_BALANCE_FACTOR,
) -> Tuple[np.ndarray, int]:
    """Adaptive TxAllo: one greedy pass over the active accounts only.

    Returns ``(new_assignment, moved_count)``. ``graph`` should contain
    at least the recent-window interactions; A-TxAllo's whole point is
    that it does not need the full ledger.
    """
    assignment = np.asarray(assignment, dtype=np.int64).copy()
    active = sorted(
        (a for a in set(int(a) for a in active_accounts) if graph.degree(a) > 0),
        key=lambda a: (-graph.degree(a), a),
    )
    if not active:
        return assignment, 0

    vertices = graph.vertices()
    degrees_arr = np.array([graph.degree(v) for v in vertices])
    loads = np.bincount(
        assignment[vertices], weights=degrees_arr, minlength=k
    ).astype(np.float64)
    average_load = float(loads.sum()) / k
    load_cap = balance_factor * max(average_load, 1e-12)

    moved = 0
    for account in active:
        degree = graph.degree(account)
        current = int(assignment[account])
        connection = _shard_connections(graph, account, assignment, k)
        scores = _move_gain(connection, loads, degree, eta, average_load)
        best = current
        best_score = scores[current]
        for shard in range(k):
            if shard == current:
                continue
            if loads[shard] + degree > load_cap:
                continue
            if scores[shard] > best_score + 1e-12:
                best_score = scores[shard]
                best = shard
        if best != current:
            assignment[account] = best
            loads[current] -= degree
            loads[best] += degree
            moved += 1
    return assignment, moved


class TxAlloAllocator(Allocator):
    """Miner-driven TxAllo baseline with G (full) and A (adaptive) modes."""

    def __init__(
        self,
        mode: str = "adaptive",
        balance_factor: float = DEFAULT_BALANCE_FACTOR,
        max_rounds: int = DEFAULT_ROUNDS,
        window_epochs: int = 1,
    ) -> None:
        if mode not in ("adaptive", "full"):
            raise AllocationError(f"mode must be 'adaptive' or 'full', got {mode!r}")
        self.mode = mode
        self.name = "txallo-a" if mode == "adaptive" else "txallo-g"
        self.balance_factor = balance_factor
        self.max_rounds = max_rounds
        self.window_epochs = window_epochs
        self._full_graph = TransactionGraph()
        self._window_graphs: list = []

    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        self._full_graph = TransactionGraph.from_batch(
            history.batch, n_accounts=history.n_accounts
        )
        assignment = g_txallo(
            self._full_graph,
            params.k,
            params.eta,
            balance_factor=self.balance_factor,
            max_rounds=self.max_rounds,
        )
        return ShardMapping(assignment, params.k)

    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        k = mapping.k
        eta = context.params.eta
        self._full_graph.add_batch(context.committed)

        window_graph = TransactionGraph.from_batch(
            context.committed, n_accounts=mapping.n_accounts
        )
        self._window_graphs.append(window_graph)
        if len(self._window_graphs) > self.window_epochs:
            self._window_graphs.pop(0)

        assignment = mapping.as_array().copy()
        if self.mode == "full":
            input_bytes = float(self._full_graph.size_bytes())
            start = time.perf_counter()
            new_assignment = g_txallo(
                self._full_graph,
                k,
                eta,
                balance_factor=self.balance_factor,
                max_rounds=self.max_rounds,
                initial=assignment,
            )
            elapsed = time.perf_counter() - start
        else:
            recent = TransactionGraph(mapping.n_accounts)
            for g in self._window_graphs:
                recent.merge(g)
            input_bytes = float(recent.size_bytes())
            active = context.committed.touched_accounts()
            start = time.perf_counter()
            new_assignment, _ = a_txallo(
                recent,
                assignment,
                active,
                k,
                eta,
                balance_factor=self.balance_factor,
            )
            elapsed = time.perf_counter() - start

        new_mapping = ShardMapping(new_assignment, k)
        moved = len(mapping.diff(new_mapping))
        return AllocationUpdate(
            mapping=new_mapping,
            execution_time=elapsed,
            unit_time=elapsed,
            input_bytes=input_bytes,
            migrations=moved,
            proposed_migrations=moved,
        )
