"""Orbit (Wang et al., ICDCS 2024): pending-transaction-aware TxAllo.

Orbit extends TxAllo by "leveraging pending transactions to estimate
future patterns, which are then fed into TxAllo as input" (Section II-B
of the Mosaic paper). It is the strongest miner-driven baseline in the
lineage, and the natural comparison point for Mosaic's own use of the
mempool: Orbit gives the *miners* lookahead, Mosaic gives it to the
*clients*.

Re-implemented from the published description: the recent-window
interaction graph is augmented with the mempool's pending transactions
(weighted by a confidence factor), and the TxAllo move rule runs over
the accounts active in either set.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.allocation.base import AllocationUpdate, Allocator, UpdateContext
from repro.allocation.graph import TransactionGraph
from repro.allocation.txallo import (
    DEFAULT_BALANCE_FACTOR,
    DEFAULT_ROUNDS,
    a_txallo,
    g_txallo,
)
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.chain.transaction import TransactionBatch
from repro.data.trace import Trace
from repro.errors import ConfigurationError
from repro.util.validation import check_probability


class OrbitAllocator(Allocator):
    """TxAllo with mempool lookahead (the Orbit mechanism).

    Args:
        pending_weight: weight of a pending transaction relative to a
            committed one when building the estimation graph (Orbit's
            confidence in the mempool's predictive power).
        balance_factor / max_rounds: passed through to the TxAllo core.
        window_epochs: committed-history window length in epochs.
    """

    name = "orbit"

    def __init__(
        self,
        pending_weight: float = 1.0,
        balance_factor: float = DEFAULT_BALANCE_FACTOR,
        max_rounds: int = DEFAULT_ROUNDS,
        window_epochs: int = 1,
    ) -> None:
        check_probability("pending_weight", min(pending_weight, 1.0))
        if pending_weight <= 0:
            raise ConfigurationError(
                f"pending_weight must be > 0, got {pending_weight}"
            )
        if window_epochs < 1:
            raise ConfigurationError(
                f"window_epochs must be >= 1, got {window_epochs}"
            )
        self.pending_weight = pending_weight
        self.balance_factor = balance_factor
        self.max_rounds = max_rounds
        self.window_epochs = window_epochs
        self._full_graph = TransactionGraph()
        self._window: list = []

    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        self._full_graph = TransactionGraph.from_batch(
            history.batch, n_accounts=history.n_accounts
        )
        assignment = g_txallo(
            self._full_graph,
            params.k,
            params.eta,
            balance_factor=self.balance_factor,
            max_rounds=self.max_rounds,
        )
        return ShardMapping(assignment, params.k)

    def _estimation_graph(
        self, committed_window: list, mempool: TransactionBatch, n_accounts: int
    ) -> TransactionGraph:
        """Recent committed interactions + confidence-weighted pending ones."""
        graph = TransactionGraph(n_accounts)
        for window_graph in committed_window:
            graph.merge(window_graph)
        if len(mempool):
            pending = TransactionGraph.from_batch(mempool, n_accounts=n_accounts)
            if self.pending_weight == 1.0:
                graph.merge(pending)
            else:
                for u, v, w in pending.edges():
                    graph.add_edge(u, v, w * self.pending_weight)
        return graph

    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        k = mapping.k
        self._full_graph.add_batch(context.committed)
        self._window.append(
            TransactionGraph.from_batch(
                context.committed, n_accounts=mapping.n_accounts
            )
        )
        if len(self._window) > self.window_epochs:
            self._window.pop(0)

        estimation = self._estimation_graph(
            self._window, context.mempool, mapping.n_accounts
        )
        input_bytes = float(estimation.size_bytes())
        active = np.union1d(
            context.committed.touched_accounts(),
            context.mempool.touched_accounts(),
        )
        active = active[active < mapping.n_accounts]

        assignment = mapping.as_array().copy()
        start = time.perf_counter()
        new_assignment, _ = a_txallo(
            estimation,
            assignment,
            active,
            k,
            context.params.eta,
            balance_factor=self.balance_factor,
        )
        elapsed = time.perf_counter() - start

        new_mapping = ShardMapping(new_assignment, k)
        moved = len(mapping.diff(new_mapping))
        return AllocationUpdate(
            mapping=new_mapping,
            execution_time=elapsed,
            unit_time=elapsed,
            input_bytes=input_bytes,
            migrations=moved,
            proposed_migrations=moved,
        )
