"""Refinement phase: boundary Fiduccia-Mattheyses-style moves.

After projecting a partition to a finer level, cut quality is improved by
greedy single-vertex moves. A vertex may move to the neighbouring part
with the largest positive gain, provided the balance constraint stays
satisfied. Several passes run until no pass improves the cut.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

Adjacency = List[Dict[int, float]]


def part_loads(vertex_weights: np.ndarray, assignment: np.ndarray, k: int) -> np.ndarray:
    """Total vertex weight per part."""
    return np.bincount(assignment, weights=vertex_weights, minlength=k)


def cut_weight(adjacency: Adjacency, assignment: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    cut = 0.0
    for u, row in enumerate(adjacency):
        pu = assignment[u]
        for v, w in row.items():
            if u < v and pu != assignment[v]:
                cut += w
    return cut


def refine_partition(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> np.ndarray:
    """Improve ``assignment`` in place with boundary moves; return it.

    Each pass visits boundary vertices in random order and applies the
    best strictly-positive-gain move that keeps every part within
    ``max_part_weight``. Moves that would empty a part are skipped so the
    partition always covers all ``k`` parts when it started that way.
    """
    n = len(adjacency)
    if n == 0:
        return assignment
    loads = part_loads(vertex_weights, assignment, k)
    part_counts = np.bincount(assignment, minlength=k)

    for _ in range(max_passes):
        improved = False
        order = rng.permutation(n)
        for u in order:
            u = int(u)
            current = int(assignment[u])
            row = adjacency[u]
            if not row:
                continue
            # Connection weight to each adjacent part.
            connection: Dict[int, float] = {}
            internal = 0.0
            for v, w in row.items():
                part = int(assignment[v])
                if part == current:
                    internal += w
                else:
                    connection[part] = connection.get(part, 0.0) + w
            if not connection:
                continue  # not a boundary vertex
            weight = float(vertex_weights[u])
            best_part = current
            best_gain = 0.0
            for part, conn in connection.items():
                gain = conn - internal
                if gain <= best_gain:
                    continue
                if loads[part] + weight > max_part_weight:
                    continue
                if part_counts[current] <= 1:
                    continue
                best_gain = gain
                best_part = part
            if best_part != current:
                assignment[u] = best_part
                loads[current] -= weight
                loads[best_part] += weight
                part_counts[current] -= 1
                part_counts[best_part] += 1
                improved = True
        if not improved:
            break
    return assignment


def rebalance(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> np.ndarray:
    """Push parts back under ``max_part_weight`` with minimum-loss moves.

    Used after projection, where coarse-level balance can be violated at
    the finer level. Vertices are moved out of overweight parts into the
    lightest feasible part, preferring vertices whose move loses the
    least cut quality.
    """
    n = len(adjacency)
    loads = part_loads(vertex_weights, assignment, k)
    for _ in range(max_passes):
        overweight = [p for p in range(k) if loads[p] > max_part_weight]
        if not overweight:
            break
        moved_any = False
        for part in overweight:
            members = np.flatnonzero(assignment == part)
            if len(members) <= 1:
                continue
            # Cheapest-to-move first: lowest (internal - best external).
            def move_cost(u: int) -> float:
                internal = 0.0
                best_external = 0.0
                for v, w in adjacency[u].items():
                    if assignment[v] == part:
                        internal += w
                    else:
                        best_external = max(best_external, w)
                return internal - best_external

            candidates = sorted(members.tolist(), key=move_cost)
            for u in candidates:
                if loads[part] <= max_part_weight:
                    break
                weight = float(vertex_weights[u])
                target = int(np.argmin(loads))
                if target == part:
                    break
                if loads[target] + weight > max_part_weight:
                    # Even the lightest part cannot take it whole; move
                    # anyway to the lightest part to make progress.
                    pass
                assignment[u] = target
                loads[part] -= weight
                loads[target] += weight
                moved_any = True
        if not moved_any:
            break
    return assignment
