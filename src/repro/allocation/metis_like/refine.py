"""Refinement phase: boundary Fiduccia-Mattheyses-style moves.

After projecting a partition to a finer level, cut quality is improved
by greedy single-vertex moves. A vertex may move to the neighbouring
part with the largest positive gain, provided the balance constraint
stays satisfied. Several passes run until no pass improves the cut.

The pass structure is vectorised: one CSR scatter scores every vertex
against every part simultaneously (the synchronous candidate scan),
then candidates are committed in descending-gain order with an exact
per-vertex re-check against the live assignment — so every applied move
is a true improvement at application time and the cut never worsens,
exactly as in the scalar implementation. Functions accept either the
list-of-dicts adjacency or a pre-built :class:`CsrAdjacency`.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.metis_like.csr import (
    AdjacencyLike,
    connection_matrix,
    connection_row,
    csr_from_adjacency,
    cut_weight_csr,
)


def part_loads(vertex_weights: np.ndarray, assignment: np.ndarray, k: int) -> np.ndarray:
    """Total vertex weight per part."""
    return np.bincount(assignment, weights=vertex_weights, minlength=k)


def cut_weight(adjacency: AdjacencyLike, assignment: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    return cut_weight_csr(csr_from_adjacency(adjacency), np.asarray(assignment))


def refine_partition(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> np.ndarray:
    """Improve ``assignment`` in place with boundary moves; return it.

    Each pass scores all boundary vertices at once, then applies
    strictly-positive-gain moves (largest stale gain first, ties by
    vertex id) that keep every part within ``max_part_weight``; each
    move is re-validated against the live assignment before it commits.
    Moves that would empty a part are skipped so the partition always
    covers all ``k`` parts when it started that way. ``rng`` is accepted
    for interface stability; the pass order is fully deterministic.
    """
    csr = csr_from_adjacency(adjacency)
    n = csr.n
    if n == 0:
        return assignment
    _ = rng
    loads = part_loads(vertex_weights, assignment, k)
    part_counts = np.bincount(assignment, minlength=k)
    # Hoisted per-call state: the edge-key base of the connection
    # scatter, the scalar mirrors the commit loop works on, and the row
    # index vector. Each pass then costs three O(E) array ops plus the
    # dense (n, k) candidate scan.
    edge_keys = csr.row_index() * k
    rows = np.arange(n)
    max_vertex_weight = vertex_weights.max() if n else 0.0
    loads_l = loads.tolist()
    counts_l = part_counts.tolist()
    weights_l = vertex_weights.tolist()
    assignment_l = assignment.tolist()
    # Integer-valued edge weights (transaction counts and their coarse
    # sums — every graph this partitioner sees) make float adds exact,
    # so the connection matrix can be maintained incrementally across
    # commits and passes, bit-identical to a fresh scatter. Fractional
    # weights fall back to per-pass rebuilds with dirty-row tracking.
    integral = bool((np.rint(csr.weights) == csr.weights).all())
    connection: np.ndarray = None

    for _pass in range(max_passes):
        if connection is None:
            connection = np.bincount(
                edge_keys + assignment[csr.indices],
                weights=csr.weights,
                minlength=n * k,
            ).reshape(n, k)
        # Gains are connection minus a per-row constant (the internal
        # connection), so the argmax over masked *connection* values
        # selects the same destination as the argmax over gains — one
        # less dense matrix to materialise. A destination must be
        # adjacent (connection > 0) and must fit; when even the
        # heaviest vertex fits everywhere the weight check is skipped
        # (identical feasibility matrix, three fewer dense ops).
        if loads.max() + max_vertex_weight <= max_part_weight:
            feasible = connection > 0
        else:
            feasible = (connection > 0) & (
                loads[np.newaxis, :] + vertex_weights[:, np.newaxis]
                <= max_part_weight
            )
        masked = np.where(feasible, connection, -np.inf)
        masked[rows, assignment] = -np.inf
        best = np.argmax(masked, axis=1)
        internal = connection[rows, assignment]
        best_gain = masked[rows, best] - internal
        movers = np.flatnonzero(
            (best_gain > 0) & (part_counts[assignment] > 1)
        )
        if len(movers) == 0:
            break
        movers = movers[np.lexsort((movers, -best_gain[movers]))]
        improved = False
        # Commit loop over Python scalars: the synchronous scan above
        # already computed every mover's connection row, so the live
        # re-check reads the cached matrix row — kept current by the
        # incremental scatter on each commit (integral weights) or
        # rebuilt on demand when a neighbour moved ("dirty", fractional
        # weights). The k-way target selection runs on plain lists,
        # where it is branch-for-branch the argmax-over-masked-gains of
        # the scalar reference.
        dirty = None if integral else np.zeros(n, dtype=bool)
        for u in movers.tolist():
            current = assignment_l[u]
            if counts_l[current] <= 1:
                continue
            weight = weights_l[u]
            if dirty is not None and dirty[u]:
                conn = connection_row(csr, u, assignment, k).tolist()
            else:
                conn = connection[u].tolist()
            base = conn[current]
            best_gain_u = 0.0
            target = -1
            for p in range(k):
                c = conn[p]
                if p == current or c <= 0.0:
                    continue
                if loads_l[p] + weight > max_part_weight:
                    continue
                gain = c - base
                if gain > best_gain_u:
                    best_gain_u = gain
                    target = p
            if target < 0:
                continue
            assignment_l[u] = target
            assignment[u] = target
            loads_l[current] -= weight
            loads_l[target] += weight
            counts_l[current] -= 1
            counts_l[target] += 1
            neighbours = csr.indices[csr.indptr[u] : csr.indptr[u + 1]]
            if dirty is None:
                # Neighbour ids are unique within a CSR row, so plain
                # fancy-index arithmetic is a safe (and fast) scatter.
                edge_w = csr.weights[csr.indptr[u] : csr.indptr[u + 1]]
                connection[neighbours, current] -= edge_w
                connection[neighbours, target] += edge_w
            else:
                dirty[neighbours] = True
            improved = True
        loads = np.asarray(loads_l, dtype=np.float64)
        part_counts = np.asarray(counts_l, dtype=np.int64)
        if dirty is not None:
            connection = None
        if not improved:
            break
    return assignment


def rebalance(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> np.ndarray:
    """Push parts back under ``max_part_weight`` with minimum-loss moves.

    Used after projection, where coarse-level balance can be violated at
    the finer level. Vertices are moved out of overweight parts into the
    lightest feasible part, preferring vertices whose move loses the
    least cut quality (internal connection minus the heaviest external
    edge, evaluated in one vectorised pass per overweight part).
    """
    csr = csr_from_adjacency(adjacency)
    n = csr.n
    _ = rng
    loads = part_loads(vertex_weights, assignment, k)
    edge_rows = csr.row_index()
    for _pass in range(max_passes):
        overweight = [p for p in range(k) if loads[p] > max_part_weight]
        if not overweight:
            break
        moved_any = False
        for part in overweight:
            members = np.flatnonzero(assignment == part)
            if len(members) <= 1:
                continue
            # Cheapest-to-move first: lowest (internal - best external),
            # computed for all members with one masked scatter pass over
            # the part's own edge slice.
            sel = np.flatnonzero(assignment[edge_rows] == part)
            sel_rows = edge_rows[sel]
            sel_w = csr.weights[sel]
            same_part = assignment[csr.indices[sel]] == part
            internal = np.zeros(n)
            np.add.at(internal, sel_rows[same_part], sel_w[same_part])
            best_external = np.zeros(n)
            np.maximum.at(
                best_external, sel_rows[~same_part], sel_w[~same_part]
            )
            costs = internal[members] - best_external[members]
            candidates = members[np.argsort(costs, kind="stable")]
            for u in candidates:
                u = int(u)
                if loads[part] <= max_part_weight:
                    break
                weight = float(vertex_weights[u])
                target = int(np.argmin(loads))
                if target == part:
                    break
                # Even when the lightest part cannot take the vertex
                # whole, move anyway to make progress toward balance.
                assignment[u] = target
                loads[part] -= weight
                loads[target] += weight
                moved_any = True
        if not moved_any:
            break
    return assignment
