"""Refinement phase: boundary Fiduccia-Mattheyses-style moves.

After projecting a partition to a finer level, cut quality is improved
by greedy single-vertex moves. A vertex may move to the neighbouring
part with the largest positive gain, provided the balance constraint
stays satisfied. Several passes run until no pass improves the cut.

The pass structure is vectorised: one CSR scatter scores every vertex
against every part simultaneously (the synchronous candidate scan),
then candidates are committed in descending-gain order with an exact
per-vertex re-check against the live assignment — so every applied move
is a true improvement at application time and the cut never worsens,
exactly as in the scalar implementation. Functions accept either the
list-of-dicts adjacency or a pre-built :class:`CsrAdjacency`.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.metis_like.csr import (
    AdjacencyLike,
    connection_matrix,
    connection_row,
    csr_from_adjacency,
    cut_weight_csr,
)


def part_loads(vertex_weights: np.ndarray, assignment: np.ndarray, k: int) -> np.ndarray:
    """Total vertex weight per part."""
    return np.bincount(assignment, weights=vertex_weights, minlength=k)


def cut_weight(adjacency: AdjacencyLike, assignment: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    return cut_weight_csr(csr_from_adjacency(adjacency), np.asarray(assignment))


def refine_partition(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> np.ndarray:
    """Improve ``assignment`` in place with boundary moves; return it.

    Each pass scores all boundary vertices at once, then applies
    strictly-positive-gain moves (largest stale gain first, ties by
    vertex id) that keep every part within ``max_part_weight``; each
    move is re-validated against the live assignment before it commits.
    Moves that would empty a part are skipped so the partition always
    covers all ``k`` parts when it started that way. ``rng`` is accepted
    for interface stability; the pass order is fully deterministic.
    """
    csr = csr_from_adjacency(adjacency)
    n = csr.n
    if n == 0:
        return assignment
    _ = rng
    loads = part_loads(vertex_weights, assignment, k)
    part_counts = np.bincount(assignment, minlength=k)
    rows = np.arange(n)

    for _pass in range(max_passes):
        connection = connection_matrix(csr, assignment, k)
        internal = connection[rows, assignment]
        gains = connection - internal[:, np.newaxis]
        # A destination must be adjacent (connection > 0) and must fit.
        feasible = (connection > 0) & (
            loads[np.newaxis, :] + vertex_weights[:, np.newaxis]
            <= max_part_weight
        )
        masked = np.where(feasible, gains, -np.inf)
        masked[rows, assignment] = 0.0
        best = np.argmax(masked, axis=1)
        best_gain = masked[rows, best]
        movers = np.flatnonzero(
            (best != assignment) & (best_gain > 0) & (part_counts[assignment] > 1)
        )
        if len(movers) == 0:
            break
        movers = movers[np.lexsort((movers, -best_gain[movers]))]
        improved = False
        for u in movers:
            u = int(u)
            current = int(assignment[u])
            if part_counts[current] <= 1:
                continue
            weight = float(vertex_weights[u])
            conn = connection_row(csr, u, assignment, k)
            live_gains = conn - conn[current]
            live_ok = (conn > 0) & (loads + weight <= max_part_weight)
            live_ok[current] = False
            live_masked = np.where(live_ok, live_gains, -np.inf)
            target = int(np.argmax(live_masked))
            if not live_masked[target] > 0:
                continue
            assignment[u] = target
            loads[current] -= weight
            loads[target] += weight
            part_counts[current] -= 1
            part_counts[target] += 1
            improved = True
        if not improved:
            break
    return assignment


def rebalance(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
) -> np.ndarray:
    """Push parts back under ``max_part_weight`` with minimum-loss moves.

    Used after projection, where coarse-level balance can be violated at
    the finer level. Vertices are moved out of overweight parts into the
    lightest feasible part, preferring vertices whose move loses the
    least cut quality (internal connection minus the heaviest external
    edge, evaluated in one vectorised pass per overweight part).
    """
    csr = csr_from_adjacency(adjacency)
    n = csr.n
    _ = rng
    loads = part_loads(vertex_weights, assignment, k)
    edge_rows = csr.row_index()
    for _pass in range(max_passes):
        overweight = [p for p in range(k) if loads[p] > max_part_weight]
        if not overweight:
            break
        moved_any = False
        for part in overweight:
            members = np.flatnonzero(assignment == part)
            if len(members) <= 1:
                continue
            # Cheapest-to-move first: lowest (internal - best external),
            # computed for all members with one masked scatter pass.
            member_edge = assignment[edge_rows] == part
            same_part = assignment[csr.indices] == part
            internal = np.zeros(n)
            np.add.at(
                internal,
                edge_rows[member_edge & same_part],
                csr.weights[member_edge & same_part],
            )
            best_external = np.zeros(n)
            np.maximum.at(
                best_external,
                edge_rows[member_edge & ~same_part],
                csr.weights[member_edge & ~same_part],
            )
            costs = internal[members] - best_external[members]
            candidates = members[np.argsort(costs, kind="stable")]
            for u in candidates:
                u = int(u)
                if loads[part] <= max_part_weight:
                    break
                weight = float(vertex_weights[u])
                target = int(np.argmin(loads))
                if target == part:
                    break
                # Even when the lightest part cannot take the vertex
                # whole, move anyway to make progress toward balance.
                assignment[u] = target
                loads[part] -= weight
                loads[target] += weight
                moved_any = True
        if not moved_any:
            break
    return assignment
