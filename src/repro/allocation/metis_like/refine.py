"""Refinement phase: boundary Fiduccia-Mattheyses-style moves.

After projecting a partition to a finer level, cut quality is improved
by greedy single-vertex moves. A vertex may move to the neighbouring
part with the largest positive gain, provided the balance constraint
stays satisfied. Several passes run until no pass improves the cut.

The pass structure is vectorised: one CSR scatter scores every vertex
against every part simultaneously (the synchronous candidate scan),
then candidates are committed in descending-gain order with an exact
per-vertex re-check against the live assignment — so every applied move
is a true improvement at application time and the cut never worsens,
exactly as in the scalar implementation. Functions accept either the
list-of-dicts adjacency or a pre-built :class:`CsrAdjacency`.

:func:`polish_level` runs the multilevel driver's per-level pipeline
(relaxed-cap refine, rebalance, strict-cap refine) over one shared
level state, so the connection matrix — maintained incrementally and
bit-exactly for the integer-valued edge weights every partitioner
graph carries — is scattered once per level instead of once per phase.

The sequential *commit* loops (apply moves one vertex at a time with a
live re-check) have a compiled twin in
:mod:`repro.allocation.metis_like.kernels`; the ``compiled_kernels``
knob on the public functions selects it (``"auto"`` = use numba when
importable). The inline Python loops below are the equivalence
reference — the kernels are pinned bit-identical to them in
``tests/test_metis_kernels.py``, so goldens and matrix digests do not
depend on the knob.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.allocation.metis_like.csr import (
    AdjacencyLike,
    connection_row,
    csr_from_adjacency,
    cut_weight_csr,
)
from repro.allocation.metis_like.kernels import (
    rebalance_commit,
    refine_commit,
    resolve_compiled,
)

__all__ = [
    "part_loads",
    "cut_weight",
    "refine_partition",
    "rebalance",
    "polish_level",
]


def part_loads(vertex_weights: np.ndarray, assignment: np.ndarray, k: int) -> np.ndarray:
    """Total vertex weight per part."""
    return np.bincount(assignment, weights=vertex_weights, minlength=k)


def cut_weight(adjacency: AdjacencyLike, assignment: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    return cut_weight_csr(csr_from_adjacency(adjacency), np.asarray(assignment))


class _LevelState:
    """Shared per-level artefacts threaded through the polish phases.

    ``connection_flat`` is the live flattened connection matrix —
    maintained incrementally across phases when edge weights are
    integer-valued (exact float adds), rebuilt from scratch otherwise.
    """

    __slots__ = (
        "edge_rows",
        "edge_keys",
        "indices_k",
        "indptr_l",
        "integral",
        "connection_flat",
    )

    def __init__(
        self, csr, k: int, edge_rows: Optional[np.ndarray] = None
    ) -> None:
        self.edge_rows = csr.row_index() if edge_rows is None else edge_rows
        self.edge_keys = self.edge_rows * k
        self.integral = bool((np.rint(csr.weights) == csr.weights).all())
        self.indices_k = csr.indices * k if self.integral else None
        self.indptr_l = csr.indptr.tolist()
        self.connection_flat: Optional[np.ndarray] = None


def _refine_passes(
    csr,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    max_passes: int,
    state: _LevelState,
    compiled: bool = False,
) -> np.ndarray:
    n = csr.n
    loads = part_loads(vertex_weights, assignment, k)
    part_counts = np.bincount(assignment, minlength=k)
    rows_k = np.arange(n) * k
    max_vertex_weight = vertex_weights.max() if n else 0.0
    integral = state.integral
    indices_k = state.indices_k
    indptr_l = state.indptr_l
    connection_flat = state.connection_flat
    connection = (
        None if connection_flat is None else connection_flat.reshape(n, k)
    )
    if compiled:
        weights_f = np.ascontiguousarray(vertex_weights, dtype=np.float64)
        no_dirty = np.zeros(0, dtype=np.bool_)
    else:
        loads_l = loads.tolist()
        counts_l = part_counts.tolist()
        weights_l = vertex_weights.tolist()
        assignment_l = assignment.tolist()

    for _pass in range(max_passes):
        if connection is None:
            connection_flat = np.bincount(
                state.edge_keys + assignment[csr.indices],
                weights=csr.weights,
                minlength=n * k,
            )
            connection = connection_flat.reshape(n, k)
        # Gains are connection minus a per-row constant (the internal
        # connection), so the argmax over masked *connection* values
        # selects the same destination as the argmax over gains — one
        # less dense matrix to materialise. A destination must be
        # adjacent (connection > 0) and must fit.
        current_idx = rows_k + assignment
        if loads.max() + max_vertex_weight <= max_part_weight:
            # Every vertex fits everywhere: a positive gain implies a
            # positive (hence adjacent) destination, so masking the
            # current column in place — saved and restored bit-exact —
            # selects the same movers without any dense temporary.
            internal = connection_flat[current_idx].copy()
            connection_flat[current_idx] = -np.inf
            best = np.argmax(connection, axis=1)
            best_gain = connection_flat[rows_k + best] - internal
            connection_flat[current_idx] = internal
        else:
            feasible = (connection > 0) & (
                loads[np.newaxis, :] + vertex_weights[:, np.newaxis]
                <= max_part_weight
            )
            masked = np.where(feasible, connection, -np.inf)
            masked_flat = masked.ravel()
            masked_flat[current_idx] = -np.inf
            best = np.argmax(masked, axis=1)
            internal = connection_flat[current_idx]
            best_gain = masked_flat[rows_k + best] - internal
        movers = np.flatnonzero(
            (best_gain > 0) & (part_counts[assignment] > 1)
        )
        if len(movers) == 0:
            break
        movers = movers[np.lexsort((movers, -best_gain[movers]))]
        if compiled:
            # Same commit loop, compiled: kernels.refine_commit updates
            # assignment/loads/part_counts (and, for integral weights,
            # connection_flat) in place with identical arithmetic.
            dirty_rows = no_dirty if integral else np.zeros(n, dtype=np.bool_)
            improved = bool(
                refine_commit(
                    movers,
                    assignment,
                    loads,
                    part_counts,
                    weights_f,
                    connection_flat,
                    csr.indptr,
                    csr.indices,
                    csr.weights,
                    k,
                    float(max_part_weight),
                    integral,
                    dirty_rows,
                )
            )
            if not integral:
                connection = None
                connection_flat = None
            if not improved:
                break
            continue
        improved = False
        # Commit loop over Python scalars: the synchronous scan above
        # already computed every mover's connection row, so the live
        # re-check reads the cached matrix row — kept current by the
        # incremental scatter on each commit (integral weights) or
        # rebuilt on demand when a neighbour moved ("dirty", fractional
        # weights). The k-way target selection runs on plain lists,
        # where it is branch-for-branch the argmax-over-masked-gains of
        # the scalar reference.
        dirty = None if integral else np.zeros(n, dtype=bool)
        for u in movers.tolist():
            current = assignment_l[u]
            if counts_l[current] <= 1:
                continue
            weight = weights_l[u]
            if dirty is not None and dirty[u]:
                conn = connection_row(csr, u, assignment, k).tolist()
            else:
                conn = connection[u].tolist()
            base = conn[current]
            best_gain_u = 0.0
            target = -1
            for p, c in enumerate(conn):
                if c <= 0.0 or p == current:
                    continue
                if loads_l[p] + weight > max_part_weight:
                    continue
                gain = c - base
                if gain > best_gain_u:
                    best_gain_u = gain
                    target = p
            if target < 0:
                continue
            assignment_l[u] = target
            assignment[u] = target
            loads_l[current] -= weight
            loads_l[target] += weight
            counts_l[current] -= 1
            counts_l[target] += 1
            start, stop = indptr_l[u], indptr_l[u + 1]
            if dirty is None:
                # Neighbour ids are unique within a CSR row, so plain
                # fancy-index arithmetic on the flat view is a safe
                # (and fast) scatter.
                edge_w = csr.weights[start:stop]
                flat_idx = indices_k[start:stop] + current
                connection_flat[flat_idx] -= edge_w
                flat_idx += target - current
                connection_flat[flat_idx] += edge_w
            else:
                dirty[csr.indices[start:stop]] = True
            improved = True
        loads = np.asarray(loads_l, dtype=np.float64)
        part_counts = np.asarray(counts_l, dtype=np.int64)
        if dirty is not None:
            connection = None
            connection_flat = None
        if not improved:
            break
    state.connection_flat = connection_flat if integral else None
    return assignment


def refine_partition(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
    edge_rows: Optional[np.ndarray] = None,
    compiled_kernels: Union[bool, str] = "auto",
) -> np.ndarray:
    """Improve ``assignment`` in place with boundary moves; return it.

    Each pass scores all boundary vertices at once, then applies
    strictly-positive-gain moves (largest stale gain first, ties by
    vertex id) that keep every part within ``max_part_weight``; each
    move is re-validated against the live assignment before it commits.
    Moves that would empty a part are skipped so the partition always
    covers all ``k`` parts when it started that way. ``rng`` is accepted
    for interface stability; the pass order is fully deterministic.
    ``compiled_kernels`` selects the jitted commit loop (bit-identical;
    see :mod:`repro.allocation.metis_like.kernels`).
    """
    csr = csr_from_adjacency(adjacency)
    if csr.n == 0:
        return assignment
    _ = rng
    state = _LevelState(csr, k, edge_rows)
    return _refine_passes(
        csr, vertex_weights, assignment, k, max_part_weight, max_passes, state,
        compiled=resolve_compiled(compiled_kernels),
    )


def _rebalance_passes(
    csr,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    max_passes: int,
    state: _LevelState,
    compiled: bool = False,
) -> np.ndarray:
    n = csr.n
    loads = part_loads(vertex_weights, assignment, k)
    edge_rows = state.edge_rows
    moved_total = 0
    weights_f = (
        np.ascontiguousarray(vertex_weights, dtype=np.float64)
        if compiled
        else None
    )
    for _pass in range(max_passes):
        overweight = [p for p in range(k) if loads[p] > max_part_weight]
        if not overweight:
            break
        moved_any = False
        # Within a pass, vertices only ever leave overweight parts for
        # the lightest part — never *into* an overweight part — so the
        # pass-start membership gathers stay exact for every part
        # processed in this pass.
        part_of_row = assignment[edge_rows]
        part_of_col = assignment[csr.indices]
        for part in overweight:
            members = np.flatnonzero(assignment == part)
            if len(members) <= 1:
                continue
            # Cheapest-to-move first: lowest (internal - best external),
            # computed for all members over the part's own edge slice —
            # a bincount for the internal sums and a segmented maximum
            # (the slice is row-major) for the best external edge.
            sel = np.flatnonzero(part_of_row == part)
            sel_rows = edge_rows[sel]
            sel_w = csr.weights[sel]
            same_part = part_of_col[sel] == part
            internal = np.bincount(
                sel_rows[same_part], weights=sel_w[same_part], minlength=n
            )
            best_external = np.zeros(n)
            ext_rows = sel_rows[~same_part]
            if len(ext_rows):
                ext_w = sel_w[~same_part]
                seg_starts = np.flatnonzero(
                    np.concatenate(([True], ext_rows[1:] != ext_rows[:-1]))
                )
                best_external[ext_rows[seg_starts]] = np.maximum.reduceat(
                    ext_w, seg_starts
                )
            costs = internal[members] - best_external[members]
            candidates = members[np.argsort(costs, kind="stable")]
            if compiled:
                # Same drain loop, compiled: assignment and loads are
                # updated in place with identical arithmetic and the
                # identical argmin tie-break.
                moved = int(
                    rebalance_commit(
                        candidates,
                        assignment,
                        loads,
                        weights_f,
                        part,
                        float(max_part_weight),
                    )
                )
                if moved:
                    moved_any = True
                    moved_total += moved
                continue
            for u in candidates:
                u = int(u)
                if loads[part] <= max_part_weight:
                    break
                weight = float(vertex_weights[u])
                target = int(np.argmin(loads))
                if target == part:
                    break
                # Even when the lightest part cannot take the vertex
                # whole, move anyway to make progress toward balance.
                assignment[u] = target
                loads[part] -= weight
                loads[target] += weight
                moved_any = True
                moved_total += 1
        if not moved_any:
            break
    if moved_total:
        # Rebalance can move thousands of vertices; rebuilding the
        # connection matrix once afterwards is cheaper than scattering
        # every move into it.
        state.connection_flat = None
    return assignment


def rebalance(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    max_part_weight: float,
    rng: np.random.Generator,
    max_passes: int = 4,
    edge_rows: Optional[np.ndarray] = None,
    compiled_kernels: Union[bool, str] = "auto",
) -> np.ndarray:
    """Push parts back under ``max_part_weight`` with minimum-loss moves.

    Used after projection, where coarse-level balance can be violated at
    the finer level. Vertices are moved out of overweight parts into the
    lightest feasible part, preferring vertices whose move loses the
    least cut quality (internal connection minus the heaviest external
    edge, evaluated in one vectorised pass per overweight part).
    ``compiled_kernels`` selects the jitted drain loop (bit-identical).
    """
    csr = csr_from_adjacency(adjacency)
    if csr.n == 0:
        return assignment
    _ = rng
    state = _LevelState(csr, k, edge_rows)
    return _rebalance_passes(
        csr, vertex_weights, assignment, k, max_part_weight, max_passes, state,
        compiled=resolve_compiled(compiled_kernels),
    )


def polish_level(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    assignment: np.ndarray,
    k: int,
    relaxed_cap: float,
    strict_cap: float,
    rng: np.random.Generator,
    max_passes: int = 4,
    compiled_kernels: Union[bool, str] = "auto",
) -> np.ndarray:
    """One level's full polish: relaxed refine, rebalance, strict refine.

    Equivalent to calling :func:`refine_partition` (relaxed cap),
    :func:`rebalance` and :func:`refine_partition` (strict cap) in
    sequence, but the three phases share one :class:`_LevelState` — the
    row index and edge keys survive across phases, and (for integral
    weights) the live connection matrix carries over whenever rebalance
    moved nothing; rebalance moves invalidate it, as one rebuild is
    cheaper than scattering its potentially thousands of moves.
    ``compiled_kernels`` routes all three phases' sequential commit
    loops through the jitted kernels (bit-identical either way).
    """
    csr = csr_from_adjacency(adjacency)
    if csr.n == 0:
        return assignment
    _ = rng
    compiled = resolve_compiled(compiled_kernels)
    state = _LevelState(csr, k)
    assignment = _refine_passes(
        csr, vertex_weights, assignment, k, relaxed_cap, max_passes, state,
        compiled=compiled,
    )
    assignment = _rebalance_passes(
        csr, vertex_weights, assignment, k, strict_cap, max_passes, state,
        compiled=compiled,
    )
    return _refine_passes(
        csr, vertex_weights, assignment, k, strict_cap, max_passes, state,
        compiled=compiled,
    )
