"""Compiled commit kernels for the refinement/rebalance hot loops.

The multilevel partitioner's per-pass candidate *scan* is vectorised
numpy, but the *commit* phase — applying moves one vertex at a time
with a live re-check against the current assignment — is inherently
sequential and, in the reference implementation
(:mod:`repro.allocation.metis_like.refine`), runs as an interpreted
Python loop. That loop dominates the ``metis/bench`` cells of
``BENCH_baseline.json``.

This module hoists exactly those two loop bodies into numba
``@njit`` kernels over the level's CSR arrays:

* :func:`refine_commit` — the ``for u in movers`` body of the refine
  pass (k-way target selection, load/count bookkeeping, and the
  incremental connection-matrix scatter for integral edge weights or
  the dirty-row protocol for fractional ones);
* :func:`rebalance_commit` — the ``for u in candidates`` body of one
  overweight part's rebalance sweep.

Both kernels are written to be **bit-identical** to the reference
loops: same visit order, same tie-breaking (first strictly-better
target wins; ``argmin`` resolves load ties to the lowest part id),
same IEEE-754 double arithmetic in the same order, and the same
connection-row recomputation order as ``np.bincount`` for dirty rows.
The property suite in ``tests/test_metis_kernels.py`` pins this on
randomized graphs.

When numba is missing the ``@njit`` decorator degrades to a no-op and
the kernels run interpreted — slower than the reference loops, but
still the same code path, which keeps the equivalence suite meaningful
on pure-python installs. Production call sites resolve the
``compiled_kernels="auto"`` knob through :func:`resolve_compiled`,
which only selects the kernels when numba can actually compile them.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import PartitionError

__all__ = [
    "NUMBA_AVAILABLE",
    "describe",
    "resolve_compiled",
    "refine_commit",
    "rebalance_commit",
]

try:  # pragma: no cover - exercised implicitly per environment
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):
        """No-op ``@njit`` stand-in: run the kernel interpreted."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def numba_version() -> str:
    """The installed numba version, or ``""`` when absent."""
    if not NUMBA_AVAILABLE:
        return ""
    import numba

    return numba.__version__


def describe() -> str:
    """One-line status of the metis kernel fast path."""
    if NUMBA_AVAILABLE:
        return f"numba {numba_version()} (metis commit kernels: jit)"
    return "numba absent (metis commit kernels: pure-python reference)"


def resolve_compiled(knob: Union[bool, str]) -> bool:
    """Resolve a ``compiled_kernels`` knob to a concrete bool.

    ``"auto"`` selects the kernels exactly when numba is importable;
    ``True`` forces the kernel functions (interpreted when numba is
    absent — the equivalence-test mode); ``False`` keeps the reference
    loops.
    """
    if knob == "auto":
        return NUMBA_AVAILABLE
    if isinstance(knob, bool):
        return knob
    raise PartitionError(
        f"compiled_kernels must be True, False or 'auto', got {knob!r}"
    )


@_njit(cache=True)
def refine_commit(
    movers,
    assignment,
    loads,
    counts,
    vertex_weights,
    connection_flat,
    indptr,
    indices,
    edge_weights,
    k,
    max_part_weight,
    integral,
    dirty,
):
    """Apply one refine pass's moves in descending-stale-gain order.

    Mirrors the reference commit loop in ``refine._refine_passes``:
    every mover is re-checked against the live assignment before it
    commits, so every applied move is a true improvement at application
    time. ``loads``/``counts``/``assignment`` are updated in place;
    with ``integral`` edge weights ``connection_flat`` is kept current
    by an exact incremental scatter, otherwise moved vertices mark
    their neighbours ``dirty`` and dirty rows are recomputed from the
    CSR slice in bincount order. Returns whether any move was applied.
    """
    improved = False
    for i in range(movers.shape[0]):
        u = movers[i]
        current = assignment[u]
        if counts[current] <= 1:
            continue
        weight = vertex_weights[u]
        row = u * k
        if (not integral) and dirty[u]:
            conn = np.zeros(k, dtype=np.float64)
            for e in range(indptr[u], indptr[u + 1]):
                conn[assignment[indices[e]]] += edge_weights[e]
        else:
            conn = connection_flat[row : row + k]
        base = conn[current]
        best_gain = 0.0
        target = -1
        for p in range(k):
            c = conn[p]
            if c <= 0.0 or p == current:
                continue
            if loads[p] + weight > max_part_weight:
                continue
            gain = c - base
            if gain > best_gain:
                best_gain = gain
                target = p
        if target < 0:
            continue
        assignment[u] = target
        loads[current] -= weight
        loads[target] += weight
        counts[current] -= 1
        counts[target] += 1
        if integral:
            for e in range(indptr[u], indptr[u + 1]):
                w = edge_weights[e]
                col = indices[e] * k
                connection_flat[col + current] -= w
                connection_flat[col + target] += w
        else:
            for e in range(indptr[u], indptr[u + 1]):
                dirty[indices[e]] = True
        improved = True
    return improved


@_njit(cache=True)
def rebalance_commit(
    candidates,
    assignment,
    loads,
    vertex_weights,
    part,
    max_part_weight,
):
    """Drain one overweight part, cheapest-to-move candidates first.

    Mirrors the reference loop in ``refine._rebalance_passes``: each
    candidate moves to the currently-lightest part (ties to the lowest
    part id, like ``np.argmin``) until the part fits or the lightest
    part is the part itself. Returns the number of moves applied.
    """
    moved = 0
    for i in range(candidates.shape[0]):
        u = candidates[i]
        if loads[part] <= max_part_weight:
            break
        weight = vertex_weights[u]
        target = 0
        best = loads[0]
        for p in range(1, loads.shape[0]):
            if loads[p] < best:
                best = loads[p]
                target = p
        if target == part:
            break
        assignment[u] = target
        loads[part] -= weight
        loads[target] += weight
        moved += 1
    return moved
