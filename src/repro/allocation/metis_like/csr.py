"""CSR adjacency: the columnar graph view of the multilevel pipeline.

The partitioner's hot loops (refinement, contraction, cut accounting)
run on a compressed-sparse-row view of each level instead of the
list-of-dicts adjacency the public helpers accept. Both representations
describe the same undirected graph: every undirected edge appears twice
in the directed CSR stream, neighbours are sorted within each row, and
conversion in either direction is loss-free.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Union

import numpy as np

Adjacency = List[Dict[int, float]]


class CsrAdjacency(NamedTuple):
    """Directed CSR stream of an undirected weighted graph."""

    indptr: np.ndarray  # (n + 1,) row pointers
    indices: np.ndarray  # (m,) neighbour ids, sorted within each row
    weights: np.ndarray  # (m,) edge weights, parallel to ``indices``

    @property
    def n(self) -> int:
        return len(self.indptr) - 1

    def row_index(self) -> np.ndarray:
        """Row id of every directed edge, shape ``(m,)``."""
        return np.repeat(np.arange(self.n), np.diff(self.indptr))


AdjacencyLike = Union[Adjacency, CsrAdjacency]


def csr_from_adjacency(adjacency: AdjacencyLike) -> CsrAdjacency:
    """Convert list-of-dicts adjacency to CSR (no-op for CSR input)."""
    if isinstance(adjacency, CsrAdjacency):
        return adjacency
    n = len(adjacency)
    counts = np.fromiter((len(row) for row in adjacency), np.int64, n)
    indptr = np.concatenate(([0], np.cumsum(counts)))
    m = int(indptr[-1])
    indices = np.empty(m, dtype=np.int64)
    weights = np.empty(m, dtype=np.float64)
    for u, row in enumerate(adjacency):
        start, stop = indptr[u], indptr[u + 1]
        ids = np.fromiter(row.keys(), np.int64, len(row))
        order = np.argsort(ids)
        indices[start:stop] = ids[order]
        weights[start:stop] = np.fromiter(row.values(), np.float64, len(row))[
            order
        ]
    return CsrAdjacency(indptr, indices, weights)


def adjacency_from_csr(csr: CsrAdjacency) -> Adjacency:
    """Materialise the list-of-dicts view (coarsest-level / test helper)."""
    return [
        dict(
            zip(
                csr.indices[csr.indptr[u] : csr.indptr[u + 1]].tolist(),
                csr.weights[csr.indptr[u] : csr.indptr[u + 1]].tolist(),
            )
        )
        for u in range(csr.n)
    ]


def connection_matrix(csr: CsrAdjacency, assignment: np.ndarray, k: int) -> np.ndarray:
    """``(n, k)`` connection weight of every vertex to every part.

    One scatter pass over the directed edge stream — the vectorised
    equivalent of walking each vertex's neighbour dict.
    """
    keys = csr.row_index() * k + assignment[csr.indices]
    return np.bincount(keys, weights=csr.weights, minlength=csr.n * k).reshape(
        csr.n, k
    )


def connection_row(
    csr: CsrAdjacency, u: int, assignment: np.ndarray, k: int
) -> np.ndarray:
    """Connection weight of vertex ``u`` to every part (length ``k``)."""
    start, stop = csr.indptr[u], csr.indptr[u + 1]
    return np.bincount(
        assignment[csr.indices[start:stop]],
        weights=csr.weights[start:stop],
        minlength=k,
    )


def cut_weight_csr(csr: CsrAdjacency, assignment: np.ndarray) -> float:
    """Total weight of edges crossing parts (each edge counted once)."""
    crossing = assignment[csr.row_index()] != assignment[csr.indices]
    return float(csr.weights[crossing].sum()) / 2.0
