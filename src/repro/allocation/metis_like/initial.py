"""Initial partitioning of the coarsest graph.

Greedy region growing: vertices are considered in descending weight
order; each is placed on the part it is most strongly connected to,
subject to the balance constraint, falling back to the lightest part.
On the coarsest graph (a few hundred vertices) this is fast and the
subsequent refinement passes repair its local mistakes.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import PartitionError

Adjacency = List[Dict[int, float]]


def greedy_initial_partition(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    k: int,
    max_part_weight: float,
) -> np.ndarray:
    """Greedily assign every vertex to one of ``k`` parts.

    Returns an assignment array of length ``len(adjacency)``.
    """
    n = len(adjacency)
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    assignment = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(k, dtype=np.float64)
    order = np.argsort(-vertex_weights, kind="stable")

    for u in order:
        u = int(u)
        weight = float(vertex_weights[u])
        connection = np.zeros(k, dtype=np.float64)
        for v, w in adjacency[u].items():
            part = assignment[v]
            if part != -1:
                connection[part] += w
        # Prefer the most-connected part that still fits; break ties by
        # lighter load so early heavy vertices spread out.
        best_part = -1
        best_key = None
        for part in range(k):
            fits = loads[part] + weight <= max_part_weight
            key = (1 if fits else 0, connection[part], -loads[part])
            if best_key is None or key > best_key:
                best_key = key
                best_part = part
        if best_key is not None and best_key[0] == 0:
            # Nothing fits: place on the lightest part (balance repaired
            # later by refinement); this keeps completeness.
            best_part = int(np.argmin(loads))
        assignment[u] = best_part
        loads[best_part] += weight

    return assignment
