"""Initial partitioning of the coarsest graph.

Greedy region growing: vertices are considered in descending weight
order; each is placed on the part it is most strongly connected to,
subject to the balance constraint, falling back to the lightest part.
On the coarsest graph (a few hundred vertices) this is fast and the
subsequent refinement passes repair its local mistakes.
"""

from __future__ import annotations

import numpy as np

from repro.allocation.metis_like.csr import AdjacencyLike, csr_from_adjacency
from repro.errors import PartitionError


def greedy_initial_partition(
    adjacency: AdjacencyLike,
    vertex_weights: np.ndarray,
    k: int,
    max_part_weight: float,
) -> np.ndarray:
    """Greedily assign every vertex to one of ``k`` parts.

    Accepts either the list-of-dicts adjacency or a CSR view (the
    multilevel driver passes CSR directly). Returns an assignment array
    of length ``n``. The selection key per part is lexicographic
    ``(fits, connection, -load)``, evaluated on plain scalars.
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    csr = csr_from_adjacency(adjacency)
    n = csr.n
    indptr = csr.indptr.tolist()
    neighbours = csr.indices.tolist()
    weights = csr.weights.tolist()
    vw = vertex_weights.tolist()
    assignment = [-1] * n
    loads = [0.0] * k
    connection = [0.0] * k

    for u in np.argsort(-vertex_weights, kind="stable").tolist():
        weight = vw[u]
        touched = []
        for j in range(indptr[u], indptr[u + 1]):
            part = assignment[neighbours[j]]
            if part != -1:
                if connection[part] == 0.0:
                    touched.append(part)
                connection[part] += weights[j]
        # Prefer the most-connected part that still fits; break ties by
        # lighter load so early heavy vertices spread out.
        best_part = 0
        best_fits = loads[0] + weight <= max_part_weight
        best_conn = connection[0]
        best_load = loads[0]
        for part in range(1, k):
            fits = loads[part] + weight <= max_part_weight
            conn = connection[part]
            load = loads[part]
            if fits > best_fits:
                pass
            elif fits < best_fits:
                continue
            elif conn > best_conn:
                pass
            elif conn < best_conn:
                continue
            elif load >= best_load:  # key uses -load: larger load loses
                continue
            best_part = part
            best_fits = fits
            best_conn = conn
            best_load = load
        if not best_fits:
            # Nothing fits: place on the lightest part (balance repaired
            # later by refinement); this keeps completeness.
            best_part = 0
            best_load = loads[0]
            for part in range(1, k):
                if loads[part] < best_load:
                    best_part = part
                    best_load = loads[part]
        assignment[u] = best_part
        loads[best_part] += weight
        for part in touched:
            connection[part] = 0.0

    return np.asarray(assignment, dtype=np.int64)
