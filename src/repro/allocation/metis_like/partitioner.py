"""The multilevel driver and the Metis-like allocator.

``partition_graph`` runs the full multilevel pipeline on a
:class:`TransactionGraph`; :class:`MetisLikeAllocator` adapts it to the
simulation's :class:`Allocator` interface, rebuilding the accumulated
historical graph and repartitioning every epoch — exactly the redundant
global recomputation the paper charges miner-driven methods with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.allocation.base import AllocationUpdate, Allocator, UpdateContext
from repro.allocation.graph import TransactionGraph
from repro.allocation.metis_like.coarsen import coarsen_level_csr
from repro.allocation.metis_like.csr import CsrAdjacency, cut_weight_csr
from repro.allocation.metis_like.initial import greedy_initial_partition
from repro.allocation.metis_like.refine import polish_level
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.data.trace import Trace
from repro.errors import PartitionError
from repro.util.rng import RngFactory


@dataclass
class PartitionResult:
    """Outcome of one multilevel partitioning run."""

    vertex_ids: np.ndarray
    assignment: np.ndarray
    cut: float
    levels: int

    def as_mapping_dict(self) -> Dict[int, int]:
        """``{account_id: shard}`` for the partitioned vertices."""
        return {
            int(v): int(p) for v, p in zip(self.vertex_ids, self.assignment)
        }


def partition_graph(
    graph: TransactionGraph,
    k: int,
    balance_factor: float = 1.10,
    seed: int = 0,
    coarsen_target: Optional[int] = None,
    refine_passes: int = 4,
    compiled_kernels: Union[bool, str] = "auto",
) -> PartitionResult:
    """Partition ``graph`` into ``k`` balanced parts, multilevel style.

    Args:
        graph: the weighted account graph.
        k: number of parts (shards).
        balance_factor: per-part weight cap as a multiple of the average
            part weight (1.10 = 10% imbalance allowed, METIS's default
            ballpark).
        seed: RNG seed for matching/refinement orders.
        coarsen_target: stop coarsening when at most this many vertices
            remain (default ``max(16 * k, 64)``).
        refine_passes: refinement passes per level.
        compiled_kernels: route refinement commit loops through the
            jitted kernels (``"auto"`` = when numba is available; the
            result is bit-identical either way).
    """
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    if balance_factor < 1.0:
        raise PartitionError(
            f"balance_factor must be >= 1.0, got {balance_factor}"
        )
    vertex_ids = np.asarray(graph.vertices(), dtype=np.int64)
    n = len(vertex_ids)
    if n == 0:
        return PartitionResult(
            vertex_ids=vertex_ids,
            assignment=np.zeros(0, dtype=np.int64),
            cut=0.0,
            levels=0,
        )

    # Columnar relabelling: the graph's directed edge stream maps onto
    # local vertex indices with one inverse-lookup gather per endpoint,
    # yielding the root-level CSR view without materialising any dicts.
    edge_u, edge_v, edge_w = graph.to_arrays()
    local_of = np.zeros(int(vertex_ids[-1]) + 1, dtype=np.int64)
    local_of[vertex_ids] = np.arange(n)
    local_u = local_of[edge_u]
    local_v = local_of[edge_v]
    indptr = np.searchsorted(local_u, np.arange(n + 1))
    root = CsrAdjacency(indptr, local_v, edge_w)
    # Isolated-from-edges vertices can still carry weight 0; give every
    # vertex at least a unit weight so balance means "account count" for
    # degenerate graphs.
    vertex_weights = np.maximum(graph.vertex_weights()[vertex_ids], 1.0)

    total_weight = float(vertex_weights.sum())
    max_part_weight = balance_factor * total_weight / k
    max_vertex_weight = max(total_weight / (4.0 * k), vertex_weights.max())

    rngs = RngFactory(seed)
    target = coarsen_target if coarsen_target is not None else max(16 * k, 64)

    levels: List[Tuple[CsrAdjacency, np.ndarray]] = [(root, vertex_weights)]
    projections: List[np.ndarray] = []
    level_index = 0
    while len(levels[-1][1]) > target:
        fine_adj, fine_weights = levels[-1]
        rng = rngs.generator(f"coarsen-{level_index}")
        coarse_adj, coarse_weights, fine_to_coarse = coarsen_level_csr(
            fine_adj, fine_weights, rng, max_vertex_weight
        )
        if len(coarse_weights) >= 0.95 * len(fine_weights):
            break  # matching stalled; further coarsening is pointless
        levels.append((coarse_adj, coarse_weights))
        projections.append(fine_to_coarse)
        level_index += 1

    # Refinement runs in two phases per level: a relaxed-cap phase lets
    # "swap-shaped" improvements through (moving A out of an almost-full
    # part before B moves in — single-move FM would deadlock on the
    # strict cap), then rebalancing and a strict-cap phase restore the
    # balance constraint.
    relaxed_cap = max_part_weight + max_vertex_weight

    def polish(adjacency_l, weights_l, assignment_l, rng_l):
        return polish_level(
            adjacency_l, weights_l, assignment_l, k,
            relaxed_cap, max_part_weight, rng_l,
            max_passes=refine_passes,
            compiled_kernels=compiled_kernels,
        )

    coarse_adj, coarse_weights = levels[-1]
    assignment = greedy_initial_partition(
        coarse_adj, coarse_weights, k, max_part_weight
    )
    assignment = polish(
        coarse_adj, coarse_weights, assignment, rngs.generator("refine-coarsest")
    )

    for depth in range(len(projections) - 1, -1, -1):
        fine_adj, fine_weights = levels[depth]
        fine_to_coarse = projections[depth]
        assignment = assignment[fine_to_coarse]
        assignment = polish(
            fine_adj, fine_weights, assignment, rngs.generator(f"refine-{depth}")
        )

    return PartitionResult(
        vertex_ids=vertex_ids,
        assignment=assignment,
        cut=cut_weight_csr(levels[0][0], assignment),
        levels=len(levels),
    )


class MetisLikeAllocator(Allocator):
    """Miner-driven graph partitioning baseline (METIS-style)."""

    name = "metis"

    def __init__(
        self,
        balance_factor: float = 1.10,
        seed: int = 0,
        refine_passes: int = 4,
        compiled_kernels: Union[bool, str] = "auto",
    ) -> None:
        self.balance_factor = balance_factor
        self.seed = seed
        self.refine_passes = refine_passes
        self.compiled_kernels = compiled_kernels
        self._graph = TransactionGraph()

    def _partition_to_mapping(
        self, n_accounts: int, k: int, previous: Optional[ShardMapping]
    ) -> Tuple[ShardMapping, float]:
        result = partition_graph(
            self._graph,
            k,
            balance_factor=self.balance_factor,
            seed=self.seed,
            refine_passes=self.refine_passes,
            compiled_kernels=self.compiled_kernels,
        )
        if previous is not None:
            assignment = previous.as_array().copy()
            if len(assignment) < n_accounts:
                raise PartitionError("previous mapping smaller than universe")
        else:
            # Accounts outside the graph get deterministic pseudo-random
            # shards (the paper randomly allocates unseen accounts).
            rng = np.random.default_rng(self.seed)
            assignment = rng.integers(0, k, size=n_accounts, dtype=np.int64)
        in_range = result.vertex_ids < n_accounts
        assignment[result.vertex_ids[in_range]] = result.assignment[in_range]
        return ShardMapping(assignment, k), result.cut

    def initialize(self, history: Trace, params: ProtocolParams) -> ShardMapping:
        self._graph = TransactionGraph.from_batch(
            history.batch, n_accounts=history.n_accounts
        )
        mapping, _ = self._partition_to_mapping(
            history.n_accounts, params.k, previous=None
        )
        return mapping

    def update(
        self, mapping: ShardMapping, context: UpdateContext
    ) -> AllocationUpdate:
        # Miner-driven: fold the epoch into the accumulated global graph
        # and repartition from scratch.
        self._graph.add_batch(context.committed)
        input_bytes = float(self._graph.size_bytes())
        start = time.perf_counter()
        new_mapping, _ = self._partition_to_mapping(
            mapping.n_accounts, mapping.k, previous=mapping
        )
        elapsed = time.perf_counter() - start
        moved = len(mapping.diff(new_mapping))
        return AllocationUpdate(
            mapping=new_mapping,
            execution_time=elapsed,
            unit_time=elapsed,
            input_bytes=input_bytes,
            migrations=moved,
            proposed_migrations=moved,
        )
