"""A from-scratch multilevel graph partitioner in the spirit of METIS.

The paper's Metis baseline [9]-[11] partitions the historical account
graph with the classic multilevel scheme:

1. **Coarsening** — repeatedly contract a heavy-edge matching until the
   graph is small (:mod:`repro.allocation.metis_like.coarsen`);
2. **Initial partitioning** — greedy region growing on the coarsest
   graph (:mod:`repro.allocation.metis_like.initial`);
3. **Uncoarsening + refinement** — project the partition back level by
   level, improving it with boundary Fiduccia-Mattheyses-style moves
   under a balance constraint (:mod:`repro.allocation.metis_like.refine`).

No external METIS binary or bindings are used; see DESIGN.md §4.
"""

from repro.allocation.metis_like.kernels import (
    NUMBA_AVAILABLE,
    resolve_compiled,
)
from repro.allocation.metis_like.partitioner import (
    MetisLikeAllocator,
    PartitionResult,
    partition_graph,
)

__all__ = [
    "MetisLikeAllocator",
    "NUMBA_AVAILABLE",
    "PartitionResult",
    "partition_graph",
    "resolve_compiled",
]
