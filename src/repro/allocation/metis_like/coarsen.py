"""Coarsening phase: heavy-edge matching and graph contraction."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Adjacency = List[Dict[int, float]]


def heavy_edge_matching(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> np.ndarray:
    """Compute a matching preferring the heaviest incident edges.

    Vertices are visited in random order (METIS does the same to avoid
    pathological orderings). Each unmatched vertex is matched with its
    unmatched neighbour of maximum edge weight, provided the merged
    vertex would not exceed ``max_vertex_weight`` — this keeps coarse
    vertices small enough for the balance constraint to remain
    satisfiable. Unmatched vertices are matched with themselves.

    Returns an array ``match`` with ``match[u] = v`` and ``match[v] = u``
    (or ``match[u] = u``).
    """
    n = len(adjacency)
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for u in order:
        u = int(u)
        if match[u] != -1:
            continue
        best_v = -1
        best_w = 0.0
        for v, w in adjacency[u].items():
            if match[v] != -1 or v == u:
                continue
            if vertex_weights[u] + vertex_weights[v] > max_vertex_weight:
                continue
            if w > best_w or (w == best_w and v > best_v):
                best_w = w
                best_v = v
        if best_v == -1:
            match[u] = u
        else:
            match[u] = best_v
            match[best_v] = u
    return match


def contract(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    match: np.ndarray,
) -> Tuple[Adjacency, np.ndarray, np.ndarray]:
    """Contract matched pairs into coarse vertices.

    Returns ``(coarse_adjacency, coarse_vertex_weights, fine_to_coarse)``.
    Edges inside a matched pair disappear; parallel edges between coarse
    vertices are summed.
    """
    n = len(adjacency)
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for u in range(n):
        if fine_to_coarse[u] != -1:
            continue
        v = int(match[u])
        fine_to_coarse[u] = next_id
        if v != u:
            fine_to_coarse[v] = next_id
        next_id += 1

    coarse_weights = np.zeros(next_id, dtype=np.float64)
    for u in range(n):
        coarse_weights[fine_to_coarse[u]] += vertex_weights[u]

    # Each undirected fine edge (u, v) appears once in u's row and once
    # in v's row; those two appearances land in the two *different*
    # coarse rows (cu and cv), so summing directly yields the correct
    # symmetric coarse weights — no halving.
    coarse_adjacency: Adjacency = [dict() for _ in range(next_id)]
    for u in range(n):
        cu = int(fine_to_coarse[u])
        row = coarse_adjacency[cu]
        for v, w in adjacency[u].items():
            cv = int(fine_to_coarse[v])
            if cv == cu:
                continue
            row[cv] = row.get(cv, 0.0) + w

    return coarse_adjacency, coarse_weights, fine_to_coarse


def coarsen_level(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> Tuple[Adjacency, np.ndarray, np.ndarray]:
    """One full coarsening step: match then contract."""
    match = heavy_edge_matching(adjacency, vertex_weights, rng, max_vertex_weight)
    return contract(adjacency, vertex_weights, match)
