"""Coarsening phase: heavy-edge matching and graph contraction.

The multilevel driver runs on the CSR representation
(:func:`coarsen_level_csr`); the dict-based public functions keep their
original signatures and delegate through the CSR implementations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.allocation.metis_like.csr import (
    CsrAdjacency,
    adjacency_from_csr,
    csr_from_adjacency,
)

Adjacency = List[Dict[int, float]]

#: Below this many directed edges the scalar matching loop beats the
#: vectorised candidate pass (fixed numpy overhead per level).
_CANDIDATE_PASS_MIN_EDGES = 8192


def _heavy_edge_matching_scalar(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> np.ndarray:
    """Reference sequential matching over plain-list mirrors."""
    n = csr.n
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    weights = csr.weights.tolist()
    vw = vertex_weights.tolist()
    match: List[int] = [-1] * n
    for u in rng.permutation(n).tolist():
        if match[u] != -1:
            continue
        best_v = -1
        best_w = 0.0
        wu = vw[u]
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            if match[v] != -1 or v == u:
                continue
            if wu + vw[v] > max_vertex_weight:
                continue
            w = weights[j]
            if w > best_w or (w == best_w and v > best_v):
                best_w = w
                best_v = v
        if best_v == -1:
            match[u] = u
        else:
            match[u] = best_v
            match[best_v] = u
    return np.array(match, dtype=np.int64)


def heavy_edge_matching_csr(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
    rows: np.ndarray = None,
) -> np.ndarray:
    """Compute a matching preferring the heaviest incident edges.

    Vertices are visited in random order (METIS does the same to avoid
    pathological orderings). Each unmatched vertex is matched with its
    unmatched neighbour of maximum edge weight (ties to the highest
    neighbour id, which makes the choice independent of adjacency
    order), provided the merged vertex would not exceed
    ``max_vertex_weight``. Unmatched vertices are matched with
    themselves. Returns ``match`` with ``match[u] = v`` and
    ``match[v] = u`` (or ``match[u] = u``).
    """
    n = csr.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if len(csr.indices) < _CANDIDATE_PASS_MIN_EDGES:
        # Small coarse levels: the fixed cost of the vectorised
        # candidate pass exceeds the scalar scan it saves.
        return _heavy_edge_matching_scalar(
            csr, vertex_weights, rng, max_vertex_weight
        )
    # Vectorised candidate-selection pass: each vertex's lexicographic
    # (weight, neighbour-id) maximum over its *valid* incident edges,
    # computed once over the whole edge stream. Validity (self-loops,
    # weight cap) never changes during the matching, so a candidate that
    # is still unmatched when its vertex's turn comes is exactly the
    # vertex the sequential scan would pick — the scan only shrinks the
    # eligible set. Only conflicted vertices (candidate already taken)
    # fall back to rescanning their adjacency row.
    if rows is None:
        rows = csr.row_index()
    valid = (csr.indices != rows) & (
        vertex_weights[rows] + vertex_weights[csr.indices] <= max_vertex_weight
    )
    # Row-wise lexicographic (weight, neighbour-id) maximum. Integral
    # weights (every graph this partitioner sees) pack exactly into an
    # int64 composite ``w * n + v`` key, so one segment reduction finds
    # both; fractional weights take two reductions (max weight, then
    # max id among the edges attaining it). A trailing sentinel keeps
    # ``reduceat`` defined for empty rows, which are masked out after.
    starts = csr.indptr[:-1]
    empty_row = starts == csr.indptr[1:]
    weights_int = csr.weights.astype(np.int64)
    max_w = int(weights_int.max()) if len(weights_int) else 0
    if (weights_int == csr.weights).all() and max_w < (2**62) // max(n, 1):
        keys = np.where(valid, weights_int * np.int64(n) + csr.indices, -1)
        row_best_key = np.maximum.reduceat(
            np.append(keys, np.int64(-1)), np.minimum(starts, len(keys))
        )
        candidate_arr = np.where(
            empty_row | (row_best_key < 0), -1, row_best_key % np.int64(n)
        ).astype(np.int64)
    else:
        masked_w = np.where(valid, csr.weights, -np.inf)
        row_best_w = np.maximum.reduceat(
            np.append(masked_w, -np.inf), np.minimum(starts, len(masked_w))
        )
        at_best = valid & (masked_w == row_best_w[rows])
        masked_v = np.where(at_best, csr.indices, -1)
        row_best_v = np.maximum.reduceat(
            np.append(masked_v, np.int64(-1)), np.minimum(starts, len(masked_v))
        )
        candidate_arr = np.where(
            empty_row | np.isneginf(row_best_w), -1, row_best_v
        ).astype(np.int64)

    # Plain-list mirrors: the commit pass is inherently sequential (each
    # decision consumes earlier ones), and list indexing beats ndarray
    # scalar access in the interpreter loop. Conflicted vertices convert
    # only their own adjacency row (not the whole edge stream).
    candidate = candidate_arr.tolist()
    indptr = csr.indptr.tolist()
    vw = vertex_weights.tolist()
    match: List[int] = [-1] * n
    for u in rng.permutation(n).tolist():
        if match[u] != -1:
            continue
        best_v = candidate[u]
        if best_v == -1:
            match[u] = u
            continue
        if match[best_v] == -1:
            match[u] = best_v
            match[best_v] = u
            continue
        # Conflict: the precomputed candidate was matched earlier.
        # Rescan u's row for its best still-unmatched valid neighbour.
        start, stop = indptr[u], indptr[u + 1]
        row_v = csr.indices[start:stop].tolist()
        row_w = csr.weights[start:stop].tolist()
        best_v = -1
        best_w = 0.0
        wu = vw[u]
        for j in range(stop - start):
            v = row_v[j]
            if match[v] != -1 or v == u:
                continue
            if wu + vw[v] > max_vertex_weight:
                continue
            w = row_w[j]
            if w > best_w or (w == best_w and v > best_v):
                best_w = w
                best_v = v
        if best_v == -1:
            match[u] = u
        else:
            match[u] = best_v
            match[best_v] = u
    return np.array(match, dtype=np.int64)


def heavy_edge_matching(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> np.ndarray:
    """Dict-adjacency wrapper around :func:`heavy_edge_matching_csr`."""
    return heavy_edge_matching_csr(
        csr_from_adjacency(adjacency), vertex_weights, rng, max_vertex_weight
    )


def contract_csr(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    match: np.ndarray,
    rows: np.ndarray = None,
) -> Tuple[CsrAdjacency, np.ndarray, np.ndarray]:
    """Contract matched pairs into coarse vertices, fully vectorised.

    Returns ``(coarse_csr, coarse_vertex_weights, fine_to_coarse)``.
    Edges inside a matched pair disappear; parallel edges between coarse
    vertices are summed. Coarse ids are assigned in ascending order of
    each pair's smaller endpoint, matching the scalar reference.
    """
    n = csr.n
    representative = np.minimum(np.arange(n), match)
    is_rep = representative == np.arange(n)
    n_coarse = int(is_rep.sum())
    # Coarse ids ascend with the representative's fine id; the cumsum
    # assigns them in one O(n) pass (no sort needed — representatives
    # are their own fine ids).
    coarse_id = np.cumsum(is_rep) - 1
    fine_to_coarse = coarse_id[representative]
    coarse_weights = np.bincount(
        fine_to_coarse, weights=vertex_weights, minlength=n_coarse
    )

    # Each undirected fine edge appears once per direction; relabelling
    # both directions keeps the coarse stream symmetric, and summing
    # duplicates merges parallel edges. Grouping runs on a stable
    # integer radix sort plus a segmented reduction, which preserves the
    # per-edge accumulation order of the scalar reference.
    coarse_u = fine_to_coarse[csr.row_index() if rows is None else rows]
    coarse_v = fine_to_coarse[csr.indices]
    external = coarse_u != coarse_v
    keys = coarse_u[external] * np.int64(n_coarse) + coarse_v[external]
    if n_coarse * n_coarse < np.iinfo(np.int32).max:
        keys = keys.astype(np.int32)  # halves the radix-sort passes
    if len(keys):
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        run_start = np.concatenate(
            ([True], sorted_keys[1:] != sorted_keys[:-1])
        )
        starts = np.flatnonzero(run_start)
        unique_keys = sorted_keys[starts]
        merged_w = np.add.reduceat(csr.weights[external][order], starts)
    else:
        unique_keys = keys
        merged_w = csr.weights[external]
    rows = (unique_keys // n_coarse).astype(np.int64)
    cols = (unique_keys % n_coarse).astype(np.int64)
    indptr = np.searchsorted(rows, np.arange(n_coarse + 1))
    return (
        CsrAdjacency(indptr, cols, merged_w),
        coarse_weights,
        fine_to_coarse,
    )


def contract(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    match: np.ndarray,
) -> Tuple[Adjacency, np.ndarray, np.ndarray]:
    """Dict-adjacency wrapper around :func:`contract_csr`."""
    coarse_csr, coarse_weights, fine_to_coarse = contract_csr(
        csr_from_adjacency(adjacency), vertex_weights, match
    )
    return adjacency_from_csr(coarse_csr), coarse_weights, fine_to_coarse


def coarsen_level_csr(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> Tuple[CsrAdjacency, np.ndarray, np.ndarray]:
    """One full coarsening step on the CSR view: match then contract."""
    rows = csr.row_index()
    match = heavy_edge_matching_csr(
        csr, vertex_weights, rng, max_vertex_weight, rows=rows
    )
    return contract_csr(csr, vertex_weights, match, rows=rows)


def coarsen_level(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> Tuple[Adjacency, np.ndarray, np.ndarray]:
    """One full coarsening step: match then contract (dict view)."""
    match = heavy_edge_matching(adjacency, vertex_weights, rng, max_vertex_weight)
    return contract(adjacency, vertex_weights, match)
