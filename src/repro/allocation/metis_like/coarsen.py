"""Coarsening phase: heavy-edge matching and graph contraction.

The multilevel driver runs on the CSR representation
(:func:`coarsen_level_csr`); the dict-based public functions keep their
original signatures and delegate through the CSR implementations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.allocation.metis_like.csr import (
    CsrAdjacency,
    adjacency_from_csr,
    csr_from_adjacency,
)

Adjacency = List[Dict[int, float]]


def heavy_edge_matching_csr(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> np.ndarray:
    """Compute a matching preferring the heaviest incident edges.

    Vertices are visited in random order (METIS does the same to avoid
    pathological orderings). Each unmatched vertex is matched with its
    unmatched neighbour of maximum edge weight (ties to the highest
    neighbour id, which makes the choice independent of adjacency
    order), provided the merged vertex would not exceed
    ``max_vertex_weight``. Unmatched vertices are matched with
    themselves. Returns ``match`` with ``match[u] = v`` and
    ``match[v] = u`` (or ``match[u] = u``).
    """
    n = csr.n
    # Plain-list mirrors: the matching is inherently sequential (each
    # decision consumes earlier ones), and list indexing beats ndarray
    # scalar access in the interpreter loop.
    indptr = csr.indptr.tolist()
    indices = csr.indices.tolist()
    weights = csr.weights.tolist()
    vw = vertex_weights.tolist()
    match: List[int] = [-1] * n
    for u in rng.permutation(n).tolist():
        if match[u] != -1:
            continue
        best_v = -1
        best_w = 0.0
        wu = vw[u]
        for j in range(indptr[u], indptr[u + 1]):
            v = indices[j]
            if match[v] != -1 or v == u:
                continue
            if wu + vw[v] > max_vertex_weight:
                continue
            w = weights[j]
            if w > best_w or (w == best_w and v > best_v):
                best_w = w
                best_v = v
        if best_v == -1:
            match[u] = u
        else:
            match[u] = best_v
            match[best_v] = u
    return np.array(match, dtype=np.int64)


def heavy_edge_matching(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> np.ndarray:
    """Dict-adjacency wrapper around :func:`heavy_edge_matching_csr`."""
    return heavy_edge_matching_csr(
        csr_from_adjacency(adjacency), vertex_weights, rng, max_vertex_weight
    )


def contract_csr(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    match: np.ndarray,
) -> Tuple[CsrAdjacency, np.ndarray, np.ndarray]:
    """Contract matched pairs into coarse vertices, fully vectorised.

    Returns ``(coarse_csr, coarse_vertex_weights, fine_to_coarse)``.
    Edges inside a matched pair disappear; parallel edges between coarse
    vertices are summed. Coarse ids are assigned in ascending order of
    each pair's smaller endpoint, matching the scalar reference.
    """
    n = csr.n
    representative = np.minimum(np.arange(n), match)
    unique_reps = np.unique(representative)
    fine_to_coarse = np.searchsorted(unique_reps, representative)
    n_coarse = len(unique_reps)
    coarse_weights = np.bincount(
        fine_to_coarse, weights=vertex_weights, minlength=n_coarse
    )

    # Each undirected fine edge appears once per direction; relabelling
    # both directions keeps the coarse stream symmetric, and summing
    # duplicates merges parallel edges.
    coarse_u = fine_to_coarse[csr.row_index()]
    coarse_v = fine_to_coarse[csr.indices]
    external = coarse_u != coarse_v
    keys = coarse_u[external] * np.int64(n_coarse) + coarse_v[external]
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    merged_w = np.bincount(inverse, weights=csr.weights[external])
    rows = (unique_keys // n_coarse).astype(np.int64)
    cols = (unique_keys % n_coarse).astype(np.int64)
    indptr = np.searchsorted(rows, np.arange(n_coarse + 1))
    return (
        CsrAdjacency(indptr, cols, merged_w),
        coarse_weights,
        fine_to_coarse,
    )


def contract(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    match: np.ndarray,
) -> Tuple[Adjacency, np.ndarray, np.ndarray]:
    """Dict-adjacency wrapper around :func:`contract_csr`."""
    coarse_csr, coarse_weights, fine_to_coarse = contract_csr(
        csr_from_adjacency(adjacency), vertex_weights, match
    )
    return adjacency_from_csr(coarse_csr), coarse_weights, fine_to_coarse


def coarsen_level_csr(
    csr: CsrAdjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> Tuple[CsrAdjacency, np.ndarray, np.ndarray]:
    """One full coarsening step on the CSR view: match then contract."""
    match = heavy_edge_matching_csr(csr, vertex_weights, rng, max_vertex_weight)
    return contract_csr(csr, vertex_weights, match)


def coarsen_level(
    adjacency: Adjacency,
    vertex_weights: np.ndarray,
    rng: np.random.Generator,
    max_vertex_weight: float,
) -> Tuple[Adjacency, np.ndarray, np.ndarray]:
    """One full coarsening step: match then contract (dict view)."""
    match = heavy_edge_matching(adjacency, vertex_weights, rng, max_vertex_weight)
    return contract(adjacency, vertex_weights, match)
