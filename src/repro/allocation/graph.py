"""The weighted account-interaction graph.

Graph-based miner-driven methods (Metis, TxAllo) partition an undirected
weighted graph whose vertices are accounts and whose edge weight counts
the transactions between two accounts. Vertex weight is the account's
transaction count, which is the processing workload it brings to a
shard.

The graph is stored columnar (structure-of-arrays): new edges are staged
as raw ``(lo, hi, weight)`` array triples and aggregated lazily into one
canonical sorted edge stream on first query, so the batch -> graph ->
partitioner hot path never materialises per-edge Python objects or
dicts. Dict-shaped views (:meth:`neighbors`) are derived on demand for
tests and examples.

The graph supports incremental merging (A-TxAllo consumes per-epoch
deltas) and reports its serialised size, which is the "input data size"
the efficiency comparison in Table IV charges to miner-driven methods.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.chain.transaction import TransactionBatch
from repro.errors import ValidationError

#: Bytes per serialised edge record: two 20-byte addresses + 8-byte weight.
EDGE_RECORD_BYTES = 48

_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_W = np.zeros(0, dtype=np.float64)


class TransactionGraph:
    """Undirected weighted multigraph aggregated into simple weighted edges."""

    def __init__(self, n_accounts: int = 0) -> None:
        if n_accounts < 0:
            raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
        self.n_accounts = n_accounts
        # Canonical aggregated stream: unique (lo, hi) pairs with lo < hi,
        # sorted lexicographically; ``_edge_w`` is parallel.
        self._edge_lo = _EMPTY_IDS
        self._edge_hi = _EMPTY_IDS
        self._edge_w = _EMPTY_W
        # Staged raw contributions awaiting aggregation.
        self._staged_lo: List[np.ndarray] = []
        self._staged_hi: List[np.ndarray] = []
        self._staged_w: List[np.ndarray] = []
        self._total_edge_weight = 0.0
        # True while every staged weight is integer-valued; integral
        # weights make float accumulation exact, enabling the in-place
        # sorted-merge fast path in :meth:`_compiled`.
        self._integral = True
        # Derived caches. The directed stream is stored as sorted
        # (u, v) arrays plus ``_dup``, the map from directed position to
        # canonical edge position: weights are gathered through it at
        # query time, so in-place weight updates need no rebuild, and
        # the integral compile path splices new pairs in incrementally.
        self._directed_u: Optional[np.ndarray] = None
        self._directed_v: Optional[np.ndarray] = None
        self._dup: Optional[np.ndarray] = None
        self._vertex_weight: Optional[np.ndarray] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_batch(
        cls, batch: TransactionBatch, n_accounts: Optional[int] = None
    ) -> "TransactionGraph":
        """Aggregate a transaction batch into a weighted graph."""
        if n_accounts is None:
            n_accounts = batch.max_account_id() + 1
        graph = cls(n_accounts)
        graph.add_batch(batch)
        return graph

    def add_batch(self, batch: TransactionBatch) -> None:
        """Merge a batch of transactions into the graph (incremental)."""
        if len(batch) == 0:
            return
        max_id = batch.max_account_id()
        if max_id >= self.n_accounts:
            self.n_accounts = max_id + 1
        # Canonicalise each pair to (min, max); self-transfers carry no
        # edge. Each transaction contributes one unit of weight.
        lo = np.minimum(batch.senders, batch.receivers)
        hi = np.maximum(batch.senders, batch.receivers)
        not_self = lo != hi
        lo, hi = lo[not_self], hi[not_self]
        if len(lo) == 0:
            return
        self._stage(lo, hi, np.ones(len(lo), dtype=np.float64))

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or reinforce) a single undirected edge."""
        if u == v:
            raise ValidationError("self-loops are not allowed")
        if u < 0 or v < 0:
            raise ValidationError("vertex ids must be >= 0")
        if weight <= 0:
            raise ValidationError(f"weight must be > 0, got {weight}")
        self.n_accounts = max(self.n_accounts, u + 1, v + 1)
        self._stage(
            np.array([min(u, v)], dtype=np.int64),
            np.array([max(u, v)], dtype=np.int64),
            np.array([weight], dtype=np.float64),
            integral=float(weight).is_integer(),
        )

    def merge(self, other: "TransactionGraph") -> None:
        """Merge another graph into this one in place."""
        self.n_accounts = max(self.n_accounts, other.n_accounts)
        lo, hi, w = other._compiled()
        if len(lo):
            self._stage(lo.copy(), hi.copy(), w.copy(), integral=other._integral)

    def _stage(
        self, lo: np.ndarray, hi: np.ndarray, w: np.ndarray, integral: bool = True
    ) -> None:
        self._staged_lo.append(lo)
        self._staged_hi.append(hi)
        self._staged_w.append(w)
        self._integral = self._integral and integral
        self._total_edge_weight += float(w.sum())
        self._vertex_weight = None

    def _compiled(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Aggregate staged contributions into the canonical edge stream.

        Staged contributions are aggregated with one segment sum (in
        arrival order — bit-identical to sequential accumulation) and
        then sorted-merged into the existing stream in place. The merge
        adds each edge's staged total onto its existing weight, which is
        exact for integer-valued weights; fractional graphs take the
        full re-aggregation path, whose accumulation order matches the
        sequential reference exactly.
        """
        if not self._staged_lo:
            return self._edge_lo, self._edge_hi, self._edge_w
        # Composite (lo, hi) key over the account universe; ids stay
        # well below 2**31 so the product cannot overflow int64.
        span = np.int64(self.n_accounts)
        if self._integral and len(self._edge_lo):
            lo = np.concatenate(self._staged_lo)
            hi = np.concatenate(self._staged_hi)
            w = np.concatenate(self._staged_w)
            self._staged_lo, self._staged_hi, self._staged_w = [], [], []
            keys = lo * span + hi
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            merged = np.bincount(inverse, weights=w, minlength=len(unique_keys))
            existing_keys = self._edge_lo * span + self._edge_hi
            pos = np.searchsorted(existing_keys, unique_keys)
            in_bounds = pos < len(existing_keys)
            matched = np.zeros(len(unique_keys), dtype=bool)
            matched[in_bounds] = (
                existing_keys[pos[in_bounds]] == unique_keys[in_bounds]
            )
            self._edge_w[pos[matched]] += merged[matched]
            fresh = ~matched
            if fresh.any():
                insert_at = pos[fresh]
                fresh_lo = unique_keys[fresh] // span
                fresh_hi = unique_keys[fresh] % span
                self._edge_lo = np.insert(self._edge_lo, insert_at, fresh_lo)
                self._edge_hi = np.insert(self._edge_hi, insert_at, fresh_hi)
                self._edge_w = np.insert(self._edge_w, insert_at, merged[fresh])
                if self._dup is not None:
                    # Splice the new pairs into the cached directed
                    # stream: shift the dup map past the canonical
                    # insertions, then insert both directions at their
                    # sorted positions — identical to a full rebuild.
                    self._dup += np.searchsorted(
                        insert_at, self._dup, side="right"
                    )
                    new_pos = insert_at + np.arange(len(insert_at))
                    nu = np.concatenate([fresh_lo, fresh_hi])
                    nv = np.concatenate([fresh_hi, fresh_lo])
                    nsrc = np.concatenate([new_pos, new_pos])
                    new_order = np.lexsort((nv, nu))
                    nu, nv, nsrc = nu[new_order], nv[new_order], nsrc[new_order]
                    directed_keys = self._directed_u * span + self._directed_v
                    ipos = np.searchsorted(directed_keys, nu * span + nv)
                    self._directed_u = np.insert(self._directed_u, ipos, nu)
                    self._directed_v = np.insert(self._directed_v, ipos, nv)
                    self._dup = np.insert(self._dup, ipos, nsrc)
        else:
            lo = np.concatenate([self._edge_lo] + self._staged_lo)
            hi = np.concatenate([self._edge_hi] + self._staged_hi)
            w = np.concatenate([self._edge_w] + self._staged_w)
            self._staged_lo, self._staged_hi, self._staged_w = [], [], []
            keys = lo * span + hi
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            merged = np.bincount(inverse, weights=w, minlength=len(unique_keys))
            self._edge_lo = (unique_keys // span).astype(np.int64)
            self._edge_hi = (unique_keys % span).astype(np.int64)
            self._edge_w = merged
            self._directed_u = self._directed_v = self._dup = None
        return self._edge_lo, self._edge_hi, self._edge_w

    # -- queries ---------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of distinct weighted edges."""
        return len(self._compiled()[0])

    @property
    def total_edge_weight(self) -> float:
        """Sum of all edge weights (== number of aggregated transactions)."""
        return self._total_edge_weight

    def vertices(self) -> List[int]:
        """All vertices with at least one incident edge, sorted.

        Edge weights are validated positive, so the vertices with an
        incident edge are exactly those with positive weighted degree —
        read off the cached degree array instead of sorting endpoints.
        """
        return np.flatnonzero(self._vertex_weights_cached() > 0).tolist()

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over (u, v, weight) with u < v, sorted by (u, v)."""
        lo, hi, w = self._compiled()
        return zip(lo.tolist(), hi.tolist(), w.tolist())

    def neighbors(self, u: int) -> Dict[int, float]:
        """Neighbour -> edge-weight map for ``u`` (empty if isolated)."""
        edge_u, edge_v, edge_w = self.to_arrays()
        start, stop = np.searchsorted(edge_u, [u, u + 1])
        return dict(
            zip(edge_v[start:stop].tolist(), edge_w[start:stop].tolist())
        )

    def degree(self, u: int) -> float:
        """Weighted degree of ``u``: total transactions it appears in."""
        weights = self._vertex_weights_cached()
        if not 0 <= u < len(weights):
            return 0.0
        return float(weights[u])

    def _vertex_weights_cached(self) -> np.ndarray:
        if self._vertex_weight is None or len(self._vertex_weight) < self.n_accounts:
            lo, hi, w = self._compiled()
            vw = np.bincount(lo, weights=w, minlength=self.n_accounts)
            vw += np.bincount(hi, weights=w, minlength=self.n_accounts)
            self._vertex_weight = vw
        return self._vertex_weight

    def vertex_weights(self) -> np.ndarray:
        """Dense per-account weighted degree array of length n_accounts."""
        return self._vertex_weights_cached().copy()

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v), or 0 when absent."""
        if u == v:
            return 0.0
        lo, hi = (u, v) if u < v else (v, u)
        edge_lo, edge_hi, edge_w = self._compiled()
        start, stop = np.searchsorted(edge_lo, [lo, lo + 1])
        offset = np.searchsorted(edge_hi[start:stop], hi)
        index = start + int(offset)
        if index < stop and edge_hi[index] == hi:
            return float(edge_w[index])
        return 0.0

    def size_bytes(self) -> int:
        """Serialised size — the miner-side allocator input (Table IV)."""
        return self.n_edges * EDGE_RECORD_BYTES

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed columnar edge view ``(u, v, w)`` sorted by ``(u, v)``.

        Every undirected edge appears twice (once per direction), so the
        result is a CSR-ready adjacency stream: consumers slice row
        ``u``'s neighbours with ``searchsorted``. The (u, v) ordering is
        cached and updated in place by the incremental compile; weights
        are gathered through the dup map so they are always current.
        """
        lo, hi, w = self._compiled()
        if self._directed_u is None:
            m = len(lo)
            us = np.concatenate([lo, hi])
            vs = np.concatenate([hi, lo])
            src = np.concatenate([np.arange(m), np.arange(m)])
            order = np.lexsort((vs, us))
            self._directed_u = us[order]
            self._directed_v = vs[order]
            self._dup = src[order]
        return self._directed_u, self._directed_v, w[self._dup]

    def csr_indptr(self, edge_u: np.ndarray) -> np.ndarray:
        """Row pointer for the :meth:`to_arrays` stream, length n+1."""
        return np.searchsorted(edge_u, np.arange(self.n_accounts + 1))

    def subgraph_touching(self, vertices: np.ndarray) -> "TransactionGraph":
        """Edges with at least one endpoint in ``vertices``."""
        lo, hi, w = self._compiled()
        wanted = np.asarray(vertices, dtype=np.int64)
        mask = np.isin(lo, wanted) | np.isin(hi, wanted)
        sub = TransactionGraph(self.n_accounts)
        if mask.any():
            sub._stage(
                lo[mask].copy(),
                hi[mask].copy(),
                w[mask].copy(),
                integral=self._integral,
            )
        return sub

    def cut_weight(self, assignment: np.ndarray) -> float:
        """Total weight of edges crossing parts under ``assignment``."""
        assignment = np.asarray(assignment)
        lo, hi, w = self._compiled()
        if len(lo) == 0:
            return 0.0
        return float(w[assignment[lo] != assignment[hi]].sum())

    def __repr__(self) -> str:
        return (
            f"TransactionGraph(n_accounts={self.n_accounts}, "
            f"n_edges={self.n_edges}, total_weight={self._total_edge_weight:.0f})"
        )
