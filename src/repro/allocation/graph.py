"""The weighted account-interaction graph.

Graph-based miner-driven methods (Metis, TxAllo) partition an undirected
weighted graph whose vertices are accounts and whose edge weight counts
the transactions between two accounts. Vertex weight is the account's
transaction count, which is the processing workload it brings to a
shard.

The graph supports incremental merging (A-TxAllo consumes per-epoch
deltas) and reports its serialised size, which is the "input data size"
the efficiency comparison in Table IV charges to miner-driven methods.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.chain.transaction import TransactionBatch
from repro.errors import ValidationError

#: Bytes per serialised edge record: two 20-byte addresses + 8-byte weight.
EDGE_RECORD_BYTES = 48


class TransactionGraph:
    """Undirected weighted multigraph aggregated into simple weighted edges."""

    def __init__(self, n_accounts: int = 0) -> None:
        if n_accounts < 0:
            raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
        self.n_accounts = n_accounts
        self._adjacency: Dict[int, Dict[int, float]] = {}
        self._vertex_weight: Dict[int, float] = {}
        self._total_edge_weight = 0.0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_batch(
        cls, batch: TransactionBatch, n_accounts: Optional[int] = None
    ) -> "TransactionGraph":
        """Aggregate a transaction batch into a weighted graph."""
        if n_accounts is None:
            n_accounts = batch.max_account_id() + 1
        graph = cls(n_accounts)
        graph.add_batch(batch)
        return graph

    def add_batch(self, batch: TransactionBatch) -> None:
        """Merge a batch of transactions into the graph (incremental)."""
        if len(batch) == 0:
            return
        max_id = batch.max_account_id()
        if max_id >= self.n_accounts:
            self.n_accounts = max_id + 1
        # Canonicalise each pair to (min, max) and aggregate duplicates
        # with one numpy pass before touching the dict.
        lo = np.minimum(batch.senders, batch.receivers)
        hi = np.maximum(batch.senders, batch.receivers)
        not_self = lo != hi
        lo, hi = lo[not_self], hi[not_self]
        if len(lo) == 0:
            return
        keys = lo.astype(np.int64) * np.int64(self.n_accounts) + hi
        unique_keys, counts = np.unique(keys, return_counts=True)
        us = (unique_keys // self.n_accounts).astype(np.int64)
        vs = (unique_keys % self.n_accounts).astype(np.int64)
        for u, v, count in zip(us.tolist(), vs.tolist(), counts.tolist()):
            self._add_edge(u, v, float(count))

    def _add_edge(self, u: int, v: int, weight: float) -> None:
        self._adjacency.setdefault(u, {})
        self._adjacency.setdefault(v, {})
        self._adjacency[u][v] = self._adjacency[u].get(v, 0.0) + weight
        self._adjacency[v][u] = self._adjacency[v].get(u, 0.0) + weight
        self._vertex_weight[u] = self._vertex_weight.get(u, 0.0) + weight
        self._vertex_weight[v] = self._vertex_weight.get(v, 0.0) + weight
        self._total_edge_weight += weight

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or reinforce) a single undirected edge."""
        if u == v:
            raise ValidationError("self-loops are not allowed")
        if u < 0 or v < 0:
            raise ValidationError("vertex ids must be >= 0")
        if weight <= 0:
            raise ValidationError(f"weight must be > 0, got {weight}")
        self.n_accounts = max(self.n_accounts, u + 1, v + 1)
        self._add_edge(u, v, weight)

    def merge(self, other: "TransactionGraph") -> None:
        """Merge another graph into this one in place."""
        self.n_accounts = max(self.n_accounts, other.n_accounts)
        for u, v, w in other.edges():
            self._add_edge(u, v, w)

    # -- queries ---------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of distinct weighted edges."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    @property
    def total_edge_weight(self) -> float:
        """Sum of all edge weights (== number of aggregated transactions)."""
        return self._total_edge_weight

    def vertices(self) -> List[int]:
        """All vertices with at least one incident edge, sorted."""
        return sorted(self._adjacency.keys())

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over (u, v, weight) with u < v."""
        for u, neighbours in self._adjacency.items():
            for v, weight in neighbours.items():
                if u < v:
                    yield u, v, weight

    def neighbors(self, u: int) -> Dict[int, float]:
        """Neighbour -> edge-weight map for ``u`` (empty if isolated)."""
        return dict(self._adjacency.get(u, {}))

    def degree(self, u: int) -> float:
        """Weighted degree of ``u``: total transactions it appears in."""
        return self._vertex_weight.get(u, 0.0)

    def vertex_weights(self) -> np.ndarray:
        """Dense per-account weighted degree array of length n_accounts."""
        weights = np.zeros(self.n_accounts, dtype=np.float64)
        for u, w in self._vertex_weight.items():
            weights[u] = w
        return weights

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v), or 0 when absent."""
        return self._adjacency.get(u, {}).get(v, 0.0)

    def size_bytes(self) -> int:
        """Serialised size — the miner-side allocator input (Table IV)."""
        return self.n_edges * EDGE_RECORD_BYTES

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Directed columnar edge view ``(u, v, w)`` sorted by ``(u, v)``.

        Every undirected edge appears twice (once per direction), so the
        result is a CSR-ready adjacency stream: consumers slice row
        ``u``'s neighbours with ``searchsorted``. Sorting makes the view
        deterministic regardless of dict insertion order.
        """
        n_directed = sum(len(nbrs) for nbrs in self._adjacency.values())
        us = np.empty(n_directed, dtype=np.int64)
        vs = np.empty(n_directed, dtype=np.int64)
        ws = np.empty(n_directed, dtype=np.float64)
        position = 0
        for u, nbrs in self._adjacency.items():
            m = len(nbrs)
            us[position : position + m] = u
            vs[position : position + m] = np.fromiter(nbrs.keys(), np.int64, m)
            ws[position : position + m] = np.fromiter(nbrs.values(), np.float64, m)
            position += m
        order = np.lexsort((vs, us))
        return us[order], vs[order], ws[order]

    def csr_indptr(self, edge_u: np.ndarray) -> np.ndarray:
        """Row pointer for the :meth:`to_arrays` stream, length n+1."""
        return np.searchsorted(edge_u, np.arange(self.n_accounts + 1))

    def subgraph_touching(self, vertices: np.ndarray) -> "TransactionGraph":
        """Edges with at least one endpoint in ``vertices``."""
        wanted = set(int(v) for v in vertices)
        sub = TransactionGraph(self.n_accounts)
        for u, v, w in self.edges():
            if u in wanted or v in wanted:
                sub._add_edge(u, v, w)
        return sub

    def cut_weight(self, assignment: np.ndarray) -> float:
        """Total weight of edges crossing parts under ``assignment``."""
        assignment = np.asarray(assignment)
        cut = 0.0
        for u, v, w in self.edges():
            if assignment[u] != assignment[v]:
                cut += w
        return cut

    def __repr__(self) -> str:
        return (
            f"TransactionGraph(n_accounts={self.n_accounts}, "
            f"n_edges={self.n_edges}, total_weight={self._total_edge_weight:.0f})"
        )
