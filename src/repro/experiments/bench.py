"""The performance benchmark: Table II workload, microbench, and gate.

This module owns everything around ``BENCH_baseline.json``:

* :func:`table2_matrix` — the canonical Table II-equivalent grid
  (4 methods x k = 16 x eta in {2, 5, 10} over the shared benchmark
  trace) whose wall time the snapshot records;
* :func:`executor_microbench` — a columnar cross-shard-executor kernel
  benchmark (batched two-phase commit + settlement over a fixed
  synthetic workload), recorded alongside the matrix timings;
* :func:`run_bench` — regenerate the snapshot (the ``repro bench``
  subcommand), preserving the previous snapshot as the reference so
  the speedup series stays comparable across PRs;
* :func:`check_against_baseline` — the CI perf smoke gate: fail when a
  measured wall time regresses more than ``threshold``x against the
  committed snapshot (3x by default — far above machine jitter, tight
  enough to catch accidental de-vectorisation).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.errors import ExperimentError
from repro.experiments.aggregate import baseline_snapshot
from repro.experiments.matrix import ScenarioMatrix, TraceSpec
from repro.experiments.runner import run_matrix, seed_trace_cache

#: The benchmark trace shared with ``benchmarks/conftest.py``.
BENCH_TRACE_CONFIG = EthereumTraceConfig(
    n_accounts=6_000,
    n_transactions=80_000,
    n_blocks=4_000,
    hub_fraction=0.01,
    hub_transaction_share=0.12,
    seed=42,
)
BENCH_TRACE_SPEC = TraceSpec(name="bench", config=BENCH_TRACE_CONFIG)


def table2_matrix() -> ScenarioMatrix:
    """The Table II-equivalent workload tracked in ``BENCH_baseline.json``."""
    return ScenarioMatrix(
        name="table2-throughput",
        methods=("hash-random", "metis", "mosaic-pilot", "txallo"),
        traces=(BENCH_TRACE_SPEC,),
        ks=(16,),
        etas=(2.0, 5.0, 10.0),
        betas=(0.0,),
        tau=40,
        seed=42,
    )


def executor_microbench(
    n_accounts: int = 50_000,
    k: int = 16,
    n_transfers: int = 200_000,
    n_blocks: int = 100,
    seed: int = 0,
    backend: str = "dict",
) -> float:
    """Wall seconds for the batched executor kernel workload.

    Funds a universe (columnar, untimed), executes a block-ordered
    transfer batch through the columnar two-phase committer and settles
    every receipt. ``backend`` selects the per-shard state store
    (``"dict"`` / ``"dense"``); at the million-account scale the dense
    backend's direct-indexed gather/scatter is what keeps this flat.
    The result feeds the snapshot's ``kernel_seconds*`` entries and the
    CI gate.
    """
    from repro.chain.crossshard import CrossShardExecutor
    from repro.chain.mapping import ShardMapping
    from repro.chain.state import StateRegistry
    from repro.chain.transaction import TransactionBatch

    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, k, size=n_accounts)
    batch = TransactionBatch(
        rng.integers(0, n_accounts, size=n_transfers),
        rng.integers(0, n_accounts, size=n_transfers),
        np.sort(rng.integers(0, n_blocks, size=n_transfers)),
        rng.integers(1, 5, size=n_transfers).astype(np.float64),
    )
    executor = CrossShardExecutor(
        StateRegistry(k=k, backend=backend, n_accounts=n_accounts),
        ShardMapping(assignment, k=k),
    )
    executor.fund_many(np.arange(n_accounts, dtype=np.int64), 1_000.0)
    started = time.perf_counter()
    executor.execute_batch(batch)
    executor.settle_all(n_blocks)
    return time.perf_counter() - started


def netsim_microbench(
    mode: str = "direct",
    n_accounts: int = 20_000,
    k: int = 16,
    n_transfers: int = 100_000,
    n_blocks: int = 400,
    seed: int = 0,
    repeats: int = 3,
) -> float:
    """Median wall seconds for the executor workload under a message bus.

    Runs the same block-ordered cross-shard transfer batch (execute +
    full settlement) three ways: ``mode="direct"`` bypasses the network
    layer entirely (``network=None``), ``mode="ideal"`` routes every
    receipt through the null :class:`~repro.chain.netsim.NetworkModel`
    (counters only, no event heap — contractually bit-identical to the
    direct path), and ``mode="wan"`` through the seeded degraded-WAN
    preset (latency, drops, duplicates, retransmissions, refunds). The
    workload is rebuilt untimed before each of ``repeats`` timed runs;
    the median feeds the snapshot's ``netsim_seconds_{direct,ideal,wan}``
    entries and the derived ``netsim_overhead_{ideal,wan}`` ratios the
    perf gate budgets (the ideal bus must stay within 1.1x of direct).
    """
    from repro.chain.crossshard import CrossShardExecutor
    from repro.chain.mapping import ShardMapping
    from repro.chain.netsim import NetworkModel
    from repro.chain.state import StateRegistry
    from repro.chain.transaction import TransactionBatch

    if mode not in ("direct", "ideal", "wan"):
        raise ExperimentError(
            f"mode must be 'direct', 'ideal' or 'wan', got {mode!r}"
        )
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, k, size=n_accounts)
    batch = TransactionBatch(
        rng.integers(0, n_accounts, size=n_transfers),
        rng.integers(0, n_accounts, size=n_transfers),
        np.sort(rng.integers(0, n_blocks, size=n_transfers)),
        rng.integers(1, 5, size=n_transfers).astype(np.float64),
    )
    timings = []
    for _ in range(max(1, repeats)):
        network = (
            None if mode == "direct" else NetworkModel(mode, seed=seed)
        )
        executor = CrossShardExecutor(
            StateRegistry(k=k),
            ShardMapping(assignment.copy(), k=k),
            relay_delay_blocks=1,
            network=network,
        )
        executor.fund_many(np.arange(n_accounts, dtype=np.int64), 1_000.0)
        started = time.perf_counter()
        executor.execute_batch(batch)
        executor.settle_all(n_blocks)
        timings.append(time.perf_counter() - started)
    return median(timings)


def reconfig_microbench(
    n_accounts: int = 1_000_000,
    k: int = 16,
    seed: int = 0,
    mode: str = "batch",
    backend: str = "dense",
    move_fraction: float = 1.0,
) -> float:
    """Wall seconds for one full-repartition reconfiguration (executed mode).

    Builds a funded universe under a random mapping, draws a
    metis-style full repartition (every account re-assigned uniformly,
    so ~(k-1)/k of the universe moves), and times the complete
    reconfiguration pipeline: request construction, beacon submission,
    the uncapped commitment round, mapping sync, and account state
    movement between the shard stores. ``mode`` selects the columnar
    path (``"batch"``: one :class:`MigrationRequestBatch`, vectorised
    commitment, grouped gather/scatter state moves) or the per-account
    object path (``"object"``: one ``MigrationRequest`` per move and a
    locate loop). The results feed the snapshot's
    ``reconfig_seconds_{object,batch}_1m`` entries and the CI gate.
    """
    from repro.chain.beacon import BeaconChain
    from repro.chain.crossshard import CrossShardExecutor
    from repro.chain.epoch import EpochReconfigurator
    from repro.chain.mapping import ShardMapping
    from repro.chain.migration import MigrationRequest, MigrationRequestBatch
    from repro.chain.state import StateRegistry

    if mode not in ("object", "batch"):
        raise ExperimentError(f"mode must be 'object' or 'batch', got {mode!r}")
    rng = np.random.default_rng(seed)
    mapping = ShardMapping(rng.integers(0, k, size=n_accounts), k=k)
    registry = StateRegistry(k=k, backend=backend, n_accounts=n_accounts)
    executor = CrossShardExecutor(registry, mapping)
    executor.fund_many(np.arange(n_accounts, dtype=np.int64), 100.0)

    target = rng.integers(0, k, size=n_accounts, dtype=np.int64)
    moved = np.flatnonzero(target != mapping.as_array())
    if move_fraction < 1.0:
        moved = moved[: int(len(moved) * move_fraction)]
    from_shards = mapping.as_array()[moved].copy()
    to_shards = target[moved]
    beacon = BeaconChain()
    reconfigurator = EpochReconfigurator(
        beacon, executor=executor, batched=(mode == "batch")
    )

    started = time.perf_counter()
    if mode == "batch":
        beacon.submit_batch(
            MigrationRequestBatch(moved, from_shards, to_shards)
        )
    else:
        beacon.submit_many(
            [
                MigrationRequest(
                    account=int(account),
                    from_shard=int(from_shard),
                    to_shard=int(to_shard),
                )
                for account, from_shard, to_shard in zip(
                    moved.tolist(), from_shards.tolist(), to_shards.tolist()
                )
            ]
        )
    beacon.commit_epoch(epoch=0, capacity=None, mapping=mapping)
    reconfigurator.run(0, mapping)
    return time.perf_counter() - started


def churn_microbench(
    policy: str = "arena",
    n_accounts: int = 1_000_000,
    k: int = 16,
    epochs: int = 8,
    churn_fraction: float = 0.35,
    compact_slack: float = 0.25,
    seed: int = 0,
) -> Dict[str, object]:
    """Churn-adversarial recycle-policy benchmark over the dense backends.

    Funds an ``n_accounts`` universe, then runs ``epochs`` adversarial
    reconfiguration rounds: each round migrates a fresh random
    ``churn_fraction`` of the whole universe into a rotating hot shard
    (scattered frees across every source shard's slot space — the
    workload that fragments a recycling allocator) and follows with the
    engine's per-epoch ``compact_stores(min_slack=compact_slack)`` pass.

    ``policy`` selects the slot layer under test: ``"arena"`` is the
    size-classed arena allocator (backend ``"dense"`` — targeted
    compaction re-slots only arenas below the occupancy threshold),
    ``"firstfit"`` the single-class first-fit free-list reference
    (backend ``"dense-ref"`` — compaction is a whole-column rewrite).
    Both see the identical migration sequence, so their per-shard state
    roots must match bit-for-bit (asserted in the perf gate and the CI
    smoke step).

    Returns a metrics dict: wall ``seconds`` for the timed churn loop,
    ``moved_accounts``, ``compactions``, ``compact_moved_mb`` (bytes
    physically rewritten by compaction — the headline margin: targeted
    re-slotting vs whole-column rewrites), ``reclaimed_mb``,
    ``peak_state_mb`` (high-water registry state bytes),
    final ``fragmentation``/``occupancy`` (occupancy doubling as the
    slot-locality proxy: live rows per allocated slot), ``arena_count``,
    and the per-shard ``state_roots`` for cross-policy equivalence.
    """
    from repro.chain.crossshard import CrossShardExecutor
    from repro.chain.mapping import ShardMapping
    from repro.chain.state import StateRegistry

    policies = {"arena": "dense", "firstfit": "dense-ref"}
    backend = policies.get(policy)
    if backend is None:
        raise ExperimentError(
            f"policy must be one of {sorted(policies)}, got {policy!r}"
        )
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, k, size=n_accounts)
    registry = StateRegistry(k=k, backend=backend, n_accounts=n_accounts)
    executor = CrossShardExecutor(
        registry, ShardMapping(assignment.copy(), k=k)
    )
    executor.fund_many(np.arange(n_accounts, dtype=np.int64), 100.0)

    # Pre-draw every round's churn set so the timed loop measures the
    # allocator, not the RNG — and so both policies replay the exact
    # same migration sequence from the same seed.
    rounds = [
        rng.choice(n_accounts, size=int(n_accounts * churn_fraction), replace=False)
        for _ in range(epochs)
    ]
    moved_accounts = 0
    peak_state = registry.state_memory_nbytes()
    started = time.perf_counter()
    for epoch, churn in enumerate(rounds):
        hot = epoch % k
        targets = np.full(len(churn), hot, dtype=np.int64)
        registry.migrate_batch(churn, targets)
        moved_accounts += len(churn)
        peak_state = max(peak_state, registry.state_memory_nbytes())
        registry.compact_stores(min_slack=compact_slack)
    elapsed = time.perf_counter() - started
    peak_state = max(peak_state, registry.state_memory_nbytes())

    stats = registry.fragmentation_stats()
    mb = 1024 * 1024
    return {
        "seconds": elapsed,
        "moved_accounts": moved_accounts,
        "compactions": int(registry.compaction_count),
        "compact_moved_mb": registry.compact_moved_bytes_total / mb,
        "reclaimed_mb": registry.compacted_bytes_total / mb,
        "peak_state_mb": peak_state / mb,
        "fragmentation": float(stats["fragmentation"]),
        "occupancy": float(stats["occupancy"]),
        "arena_count": int(stats["arena_count"]),
        "state_roots": [store.state_root() for store in registry.stores],
    }


def delta_is_noise(
    delta: Optional[float], spread: Optional[float]
) -> bool:
    """True when a cell's delta sits within its recorded run-to-run spread.

    The automatic twin of PR 4's manual "metis cells jitter ±17% under
    scheduler noise" snapshot comment: ``repro bench`` marks any delta
    whose magnitude does not exceed the cell's own (max-min)/median
    spread as "within noise" instead of presenting it as a real
    speedup or regression. Cells without a delta or a recorded spread
    are never flagged.
    """
    if delta is None or spread is None:
        return False
    return abs(delta) <= spread


def _valued_extract(
    n_rows: int, path: Optional[Union[str, Path]] = None
) -> Path:
    """Write (or reuse) the benchmark's valued ``n_rows`` CSV extract.

    Sized from the row count so the file carries real value/fee columns
    like the ethereum-etl extracts the streamed paths target. When
    ``path`` is omitted the file is cached in the system temp dir under
    a config-keyed name: keyed on the generating config, not just the
    row count, so a stale file from another code version (different
    schema or value model) is never silently reused. An explicit path
    is always (re)written, since its contents could be anything.
    """
    import hashlib
    import tempfile

    from repro.data.etl import write_transactions_csv
    from repro.data.generators import ValueModelConfig

    config = EthereumTraceConfig(
        n_transactions=n_rows,
        n_accounts=max(10, n_rows // 10),
        n_blocks=max(1, n_rows // 50),
        hub_fraction=0.005,
        hub_transaction_share=0.15,
        seed=7,
        value_model=ValueModelConfig(fee_fraction=0.01),
    )
    if path is None:
        config_key = hashlib.sha256(repr(config).encode()).hexdigest()[:12]
        path = (
            Path(tempfile.gettempdir())
            / f"repro_ingest_bench_{n_rows}_{config_key}.csv"
        )
        if path.exists():
            return path
    else:
        path = Path(path)
    write_transactions_csv(path, generate_ethereum_like_trace(config))
    return path


def ingest_microbench(
    n_rows: int = 1_000_000,
    mode: str = "streamed",
    chunk_rows: int = 65_536,
    path: Optional[Union[str, Path]] = None,
) -> float:
    """Wall seconds to ingest an ``n_rows`` ethereum-etl CSV into a Trace.

    Writes the benchmark extract untimed — cached in the system temp
    dir under a config-keyed name when ``path`` is omitted, always
    freshly written when an explicit ``path`` is given — then times the
    decode:
    ``mode="materialised"`` is the eager reader
    (:func:`repro.data.etl.read_transactions_csv`, whole-file Python
    lists then one sort), ``mode="streamed"`` the chunked bounded-memory
    :class:`~repro.data.source.CsvTraceSource` decode, and
    ``mode="arrow"`` the same chunked source through the pyarrow
    columnar decoder (requires pyarrow). The results feed the
    snapshot's ``ingest_seconds_{materialised,streamed,arrow}_1m``
    entries and the CI gate.
    """
    from repro.data.etl import read_transactions_csv
    from repro.data.source import CsvTraceSource

    if mode not in ("streamed", "materialised", "arrow"):
        raise ExperimentError(
            f"mode must be 'streamed', 'materialised' or 'arrow', "
            f"got {mode!r}"
        )
    path = _valued_extract(n_rows, path)
    # Untimed warm read: both modes measure decode work against a warm
    # page cache, so timing order cannot bias the comparison.
    with path.open("rb") as handle:
        while handle.read(1 << 24):
            pass
    started = time.perf_counter()
    if mode == "streamed":
        CsvTraceSource(
            path, chunk_rows=chunk_rows, decoder="python"
        ).materialise()
    elif mode == "arrow":
        CsvTraceSource(
            path, chunk_rows=chunk_rows, decoder="arrow"
        ).materialise()
    else:
        read_transactions_csv(path)
    return time.perf_counter() - started


def memory_microbench(
    n_rows: int = 1_000_000,
    mode: str = "windowed",
    chunk_rows: int = 65_536,
    history_epochs: int = 4,
    path: Optional[Union[str, Path]] = None,
) -> float:
    """Peak traced allocation (MB) for a metrics run over ``n_rows`` rows.

    Both modes run the same hash-random metrics simulation over the
    benchmark's valued CSV extract and report tracemalloc's peak:

    * ``mode="windowed"`` drives :class:`StreamingSimulation` over the
      chunked :class:`~repro.data.source.CsvTraceSource` — the engine
      holds the ``history_epochs`` prefix plus a two-epoch window, so
      the peak is O(window + accounts), independent of the total row
      count;
    * ``mode="materialised"`` is the twin run: eager decode into a full
      :class:`Trace`, then ``Simulation.run`` — O(total rows).

    The pair feeds the snapshot's
    ``peak_rss_mb_{windowed,materialised}_1m`` entries; the sublinearity
    gate in ``tests/test_perf_gate.py`` rests on the gap between them.
    Peaks are traced *allocations* (tracemalloc), not process RSS — a
    stable, interpreter-independent proxy for the same quantity.
    """
    import tracemalloc

    from repro.allocation.hash_based import HashAllocator
    from repro.chain.params import ProtocolParams
    from repro.data.source import CsvTraceSource
    from repro.sim.engine import (
        Simulation,
        SimulationConfig,
        StreamingSimulation,
    )

    if mode not in ("windowed", "materialised"):
        raise ExperimentError(
            f"mode must be 'windowed' or 'materialised', got {mode!r}"
        )
    csv_path = _valued_extract(n_rows, path)
    # tau sized for ~40 evaluation epochs at any row count, so the
    # window the streaming engine holds shrinks relative to the file as
    # n_rows grows — exactly the regime the O(window) claim is about.
    n_blocks = max(1, n_rows // 50)
    tau = max(1, n_blocks // 40)
    config = SimulationConfig(
        params=ProtocolParams(k=8, tau=tau, seed=7),
        history_epochs=history_epochs,
    )
    source = CsvTraceSource(csv_path, chunk_rows=chunk_rows, decoder="python")
    tracemalloc.start()
    try:
        if mode == "windowed":
            StreamingSimulation(source, HashAllocator(), config).run()
        else:
            trace = source.materialise()
            Simulation(trace, HashAllocator(), config).run()
        peak_bytes = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return peak_bytes / (1024 * 1024)


def refine_microbench(
    compiled: bool = False,
    repeats: int = 3,
    k: int = 16,
    seed: int = 42,
) -> float:
    """Median wall seconds for one full multilevel partition of the
    benchmark account graph.

    Builds the accumulated account graph of the benchmark trace
    (untimed — the same graph the ``metis/bench`` matrix cells
    repartition every epoch), runs one untimed warmup call (absorbing
    numba compilation when ``compiled``), then times ``repeats``
    :func:`partition_graph` calls and reports the median. Feeds the
    snapshot's ``refine_seconds_{python,jit}`` entries and the CI gate.
    """
    from repro.allocation.graph import TransactionGraph
    from repro.allocation.metis_like import partition_graph

    trace = generate_ethereum_like_trace(BENCH_TRACE_CONFIG)
    graph = TransactionGraph.from_batch(
        trace.batch, n_accounts=trace.n_accounts
    )
    partition_graph(graph, k, seed=seed, compiled_kernels=compiled)
    timings = []
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        partition_graph(graph, k, seed=seed, compiled_kernels=compiled)
        timings.append(time.perf_counter() - started)
    return median(timings)


def compiled_env() -> Dict[str, str]:
    """Which compiled fast paths are active in this interpreter.

    The dict feeds the snapshot's ``compiled`` entry and the
    ``repro bench --env`` report, so a recorded timing always says
    whether it was measured with the jitted kernels / arrow decoder or
    on the pure-python reference paths.
    """
    from repro.allocation.metis_like import kernels
    from repro.data import arrow

    return {
        "numba": kernels.numba_version(),
        "pyarrow": arrow.pyarrow_version(),
        "metis_kernels": "jit" if kernels.NUMBA_AVAILABLE else "python",
        "csv_decoder": "arrow" if arrow.PYARROW_AVAILABLE else "python",
    }


def cell_delta_rows(
    payload: Dict[str, object]
) -> List[
    Tuple[
        str,
        Optional[float],
        float,
        Optional[float],
        Optional[float],
        Optional[float],
    ]
]:
    """Per-cell ``(label, reference_s, measured_s, delta, spread, peak_mb)``.

    Pairs a snapshot's ``cell_seconds`` with its ``reference.cells`` so
    ``repro bench`` can print where a speedup or regression actually
    lives instead of one opaque total. Cells without a reference timing
    carry ``None`` for the reference and delta; ``spread`` is the cell's
    (max - min) / median across the snapshot's timing repeats (``None``
    for single-repeat snapshots), so a delta can be read against the
    cell's own run-to-run noise; ``peak_mb`` is the cell's peak traced
    allocation from the snapshot's ``cell_peak_mb`` (``None`` for
    snapshots that predate memory tracking).
    """
    cells = payload.get("cell_seconds") or {}
    reference = payload.get("reference") or {}
    ref_cells = reference.get("cells") if isinstance(reference, dict) else {}
    if not isinstance(ref_cells, dict):
        ref_cells = {}
    spreads = payload.get("cell_spread") or {}
    if not isinstance(spreads, dict):
        spreads = {}
    peaks = payload.get("cell_peak_mb") or {}
    if not isinstance(peaks, dict):
        peaks = {}
    rows: List[
        Tuple[
            str,
            Optional[float],
            float,
            Optional[float],
            Optional[float],
            Optional[float],
        ]
    ] = []
    for label in sorted(cells):
        measured = float(cells[label])
        spread = spreads.get(label)
        spread = float(spread) if isinstance(spread, (int, float)) else None
        peak = peaks.get(label)
        peak = float(peak) if isinstance(peak, (int, float)) else None
        ref = ref_cells.get(label)
        if isinstance(ref, (int, float)) and ref > 0:
            delta = (measured - float(ref)) / float(ref)
            rows.append((label, float(ref), measured, delta, spread, peak))
        else:
            rows.append((label, None, measured, None, spread, peak))
    return rows


def smoke_seconds(workers: int = 1, repeats: int = 1) -> float:
    """Wall seconds of the CI smoke grid (``repro matrix --smoke``).

    ``repeats > 1`` reruns the grid and reports the median wall time,
    which is what the snapshot records and the perf gate measures —
    scheduler noise on a loaded CI host lands in the tails, and the
    median keeps the gate margin meaningful.
    """
    from repro.experiments.matrix import smoke_matrix

    matrix = smoke_matrix()
    timings = []
    for _ in range(max(1, repeats)):
        result = run_matrix(matrix, workers=workers, strict=True)
        timings.append(result.seconds)
    return median(timings)


#: Timing repeats per matrix cell in ``run_bench``: the snapshot
#: records per-cell medians (and spreads) over this many full matrix
#: runs, so a single descheduled run cannot skew the committed numbers.
BENCH_REPEATS = 3


def run_bench(
    path: Union[str, Path] = "BENCH_baseline.json",
    workers: int = 1,
    notes: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Regenerate the performance snapshot (``repro bench``).

    The trace is generated (untimed) and seeded into the runner's cache
    first, so cell timings measure simulation work, not trace synthesis
    — the same methodology as the benchmark suite. The matrix runs
    :data:`BENCH_REPEATS` times; every repeat must produce the same
    deterministic digest, per-cell timings are medians across repeats
    and ``cell_spread`` records each cell's (max - min) / median. The
    previous snapshot's totals become the new snapshot's ``reference``,
    keeping a chained speedup series across PRs.
    """
    path = Path(path)
    reference: Optional[Dict[str, object]] = None
    if path.exists():
        previous = json.loads(path.read_text())
        reference = {
            "cells": previous.get("cell_seconds", {}),
            "total_seconds": previous.get("total_seconds"),
            "revision": previous.get(
                "revision",
                f"snapshot of {previous.get('recorded_at', 'unknown')}",
            ),
        }

    seed_trace_cache(
        BENCH_TRACE_SPEC, generate_ethereum_like_trace(BENCH_TRACE_CONFIG)
    )
    matrix = table2_matrix()
    repeats = [
        run_matrix(matrix, workers=workers) for _ in range(BENCH_REPEATS)
    ]
    result = repeats[0]
    digests = {r.deterministic_digest() for r in repeats}
    if len(digests) != 1:
        raise ExperimentError(
            f"benchmark matrix is not deterministic across repeats: {digests}"
        )
    cell_runs: Dict[str, List[float]] = {}
    for run in repeats:
        for outcome in run.outcomes:
            if outcome.ok:
                cell_runs.setdefault(outcome.label, []).append(
                    outcome.seconds
                )
    cell_seconds = {
        label: median(timings) for label, timings in cell_runs.items()
    }
    cell_spread = {
        label: (max(timings) - min(timings)) / median(timings)
        if median(timings) > 0
        else 0.0
        for label, timings in cell_runs.items()
    }
    total_seconds = sum(cell_seconds.values())
    kernel_seconds = executor_microbench()
    # Best of two for the 1M-account entries: the first dense run pays
    # one-off page faults for the preallocated state columns, which is
    # allocator warmup, not kernel time.
    kernel_dict_1m = min(
        executor_microbench(n_accounts=1_000_000, backend="dict")
        for _ in range(2)
    )
    kernel_dense_1m = min(
        executor_microbench(n_accounts=1_000_000, backend="dense")
        for _ in range(2)
    )
    # Best of two for the batch path (first run pays dense-column page
    # faults); the object path is dominated by per-request Python work,
    # one run is representative.
    reconfig_batch_1m = min(
        reconfig_microbench(mode="batch") for _ in range(2)
    )
    reconfig_object_1m = reconfig_microbench(mode="object")
    # The CSV is written once (untimed) and shared by both modes; each
    # timed decode is preceded by an untimed warm read of the file, so
    # ordering cannot hand either mode a page-cache advantage.
    ingest_materialised_1m = ingest_microbench(mode="materialised")
    ingest_streamed_1m = ingest_microbench(mode="streamed")
    env = compiled_env()
    refine_python = refine_microbench(compiled=False)
    refine_jit = (
        refine_microbench(compiled=True)
        if env["metis_kernels"] == "jit"
        else None
    )
    ingest_arrow_1m = (
        ingest_microbench(mode="arrow")
        if env["csv_decoder"] == "arrow"
        else None
    )
    # The netsim trio shares one workload; each mode is a median of 3
    # fresh-executor runs, so the overhead ratios compare like to like.
    netsim_direct = netsim_microbench(mode="direct")
    netsim_ideal = netsim_microbench(mode="ideal")
    netsim_wan = netsim_microbench(mode="wan")
    # Recycle-policy churn bench: both policies replay the identical
    # migration sequence, so root divergence here is a correctness bug,
    # not noise — refuse to record a snapshot from a broken allocator.
    churn_arena = churn_microbench(policy="arena")
    churn_firstfit = churn_microbench(policy="firstfit")
    if churn_arena["state_roots"] != churn_firstfit["state_roots"]:
        raise ExperimentError(
            "churn microbench: arena and first-fit state roots diverged"
        )
    smoke = smoke_seconds(repeats=BENCH_REPEATS)
    # One extra matrix pass with memory tracking, outside the timing
    # repeats: tracemalloc slows cells noticeably, so peaks must never
    # share a run with the recorded timings. The digest check proves
    # tracking didn't perturb the results.
    memory_run = run_matrix(matrix, workers=workers, track_memory=True)
    if memory_run.deterministic_digest() != next(iter(digests)):
        raise ExperimentError(
            "memory-tracked matrix run diverged from the timed runs"
        )
    cell_peak_mb = {
        outcome.label: outcome.peak_mb
        for outcome in memory_run.outcomes
        if outcome.ok and outcome.peak_mb is not None
    }
    peak_windowed_1m = memory_microbench(mode="windowed")
    peak_materialised_1m = memory_microbench(mode="materialised")

    all_notes = [
        "Table II-equivalent workload: 4 methods x k=16 x eta in {2,5,10}",
        "sequential timings unless workers > 1; digest is worker-invariant",
        f"cell_seconds are medians over {BENCH_REPEATS} full matrix runs; "
        "cell_spread is each cell's (max-min)/median across the repeats",
        "kernel_seconds: columnar cross-shard executor microbenchmark",
        "kernel_seconds_{dict,dense}_1m: the same executor workload over "
        "a 1M-account universe, per state-store backend",
        "reconfig_seconds_{object,batch}_1m: metis-style full repartition "
        "of a 1M-account executed universe (beacon commit + state "
        "movement), per migration path",
        "ingest_seconds_{materialised,streamed}_1m: decode a 1M-row "
        "valued ethereum-etl CSV into a Trace, eager reader vs chunked "
        "bounded-memory CsvTraceSource (python reference decoder)",
        "ingest_seconds_arrow_1m: the same chunked decode through the "
        "pyarrow columnar fast path (recorded only when pyarrow is "
        "installed)",
        "refine_seconds_{python,jit}: one full multilevel partition of "
        "the benchmark account graph, reference loops vs numba kernels "
        "(jit recorded only when numba is installed); bit-identical "
        "assignments either way",
        "netsim_seconds_{direct,ideal,wan}: the executor workload with "
        "no network layer vs the ideal null bus vs the degraded-WAN "
        "model (median of 3); netsim_overhead_{ideal,wan} are the "
        "ratios against direct — the gate budgets ideal at <= 1.1x",
        f"smoke_seconds: the 2x2 CI smoke grid (median of {BENCH_REPEATS})",
        "cell_peak_mb: per-cell peak traced allocation (MB), measured on "
        "one extra untimed matrix pass so tracemalloc never skews the "
        "recorded timings",
        "peak_rss_mb_{windowed,materialised}_1m: peak traced MB for a "
        "hash-random metrics run over the 1M-row valued extract — "
        "windowed StreamingSimulation over the chunked CsvTraceSource "
        "vs eager materialise + Simulation",
        "churn_*_{arena,firstfit}_1m: 8 adversarial reconfiguration "
        "rounds at 1M accounts / k=16 (35% of the universe migrates to "
        "a rotating hot shard each round, compact_stores after every "
        "round), size-classed arena allocator vs the single-class "
        "first-fit reference; identical migration sequence, per-shard "
        "state roots asserted bit-identical",
        "churn_moved_mb_*: bytes physically rewritten by compaction — "
        "targeted arena re-slotting vs whole-column rewrites (the gated "
        ">= 1.5x margin); the arena policy trades deferred reclamation "
        "(higher frag_final/peak_state) for that rewrite cut",
        "frag_final_*/arena_count_1m: end-of-run allocator telemetry "
        "(free slots over capacity; arenas across shards and size "
        "classes) — the same counters EpochRecord surfaces per epoch",
    ]
    if notes:
        all_notes.extend(notes)
    baseline_snapshot(result, path, reference=reference, notes=all_notes)
    payload = json.loads(path.read_text())
    # Swap the single-run matrix timings for the medians across repeats
    # and recompute the derived entries from them.
    payload["cell_seconds"] = {
        label: round(seconds, 3) for label, seconds in cell_seconds.items()
    }
    payload["cell_spread"] = {
        label: round(spread, 3) for label, spread in cell_spread.items()
    }
    payload["total_seconds"] = round(total_seconds, 3)
    payload["timing_repeats"] = BENCH_REPEATS
    if reference is not None:
        ref_total = reference.get("total_seconds")
        if isinstance(ref_total, (int, float)) and total_seconds > 0:
            payload["speedup_vs_reference"] = round(
                float(ref_total) / total_seconds, 2
            )
    payload["compiled"] = env
    payload["kernel_seconds"] = round(kernel_seconds, 3)
    payload["kernel_seconds_dict_1m"] = round(kernel_dict_1m, 3)
    payload["kernel_seconds_dense_1m"] = round(kernel_dense_1m, 3)
    payload["reconfig_seconds_object_1m"] = round(reconfig_object_1m, 3)
    payload["reconfig_seconds_batch_1m"] = round(reconfig_batch_1m, 3)
    payload["ingest_seconds_materialised_1m"] = round(ingest_materialised_1m, 3)
    payload["ingest_seconds_streamed_1m"] = round(ingest_streamed_1m, 3)
    payload["refine_seconds_python"] = round(refine_python, 3)
    if refine_jit is not None:
        payload["refine_seconds_jit"] = round(refine_jit, 3)
    if ingest_arrow_1m is not None:
        payload["ingest_seconds_arrow_1m"] = round(ingest_arrow_1m, 3)
    payload["churn_seconds_arena_1m"] = round(churn_arena["seconds"], 3)
    payload["churn_seconds_firstfit_1m"] = round(churn_firstfit["seconds"], 3)
    payload["churn_moved_mb_arena_1m"] = round(churn_arena["compact_moved_mb"], 3)
    payload["churn_moved_mb_firstfit_1m"] = round(
        churn_firstfit["compact_moved_mb"], 3
    )
    payload["churn_compactions_arena_1m"] = churn_arena["compactions"]
    payload["churn_compactions_firstfit_1m"] = churn_firstfit["compactions"]
    payload["frag_final_arena_1m"] = round(churn_arena["fragmentation"], 3)
    payload["frag_final_firstfit_1m"] = round(
        churn_firstfit["fragmentation"], 3
    )
    payload["arena_count_1m"] = churn_arena["arena_count"]
    payload["peak_state_mb_arena_1m"] = round(churn_arena["peak_state_mb"], 1)
    payload["peak_state_mb_firstfit_1m"] = round(
        churn_firstfit["peak_state_mb"], 1
    )
    payload["netsim_seconds_direct"] = round(netsim_direct, 3)
    payload["netsim_seconds_ideal"] = round(netsim_ideal, 3)
    payload["netsim_seconds_wan"] = round(netsim_wan, 3)
    payload["netsim_overhead_ideal"] = round(netsim_ideal / netsim_direct, 3)
    payload["netsim_overhead_wan"] = round(netsim_wan / netsim_direct, 3)
    payload["smoke_seconds"] = round(smoke, 3)
    payload["cell_peak_mb"] = {
        label: round(peak, 1) for label, peak in cell_peak_mb.items()
    }
    payload["peak_rss_mb_windowed_1m"] = round(peak_windowed_1m, 1)
    payload["peak_rss_mb_materialised_1m"] = round(peak_materialised_1m, 1)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return payload


def load_baseline(
    path: Union[str, Path] = "BENCH_baseline.json"
) -> Dict[str, object]:
    """Read the committed snapshot; raise when missing."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no benchmark snapshot at {path}")
    return json.loads(path.read_text())


def check_against_baseline(
    measured: Dict[str, float],
    baseline: Dict[str, object],
    threshold: float = 3.0,
    min_reference: float = 0.25,
) -> List[str]:
    """Compare measured wall times against snapshot entries.

    ``measured`` maps snapshot keys (``smoke_seconds``,
    ``kernel_seconds``, ...) to freshly measured seconds. Returns a
    list of human-readable violations (empty = gate passes); keys the
    snapshot does not carry are skipped, so the gate degrades
    gracefully against older snapshots. References are floored at
    ``min_reference`` seconds so millisecond-scale snapshot entries
    recorded on a fast machine do not turn scheduler jitter on slower
    CI runners into failures.
    """
    if threshold <= 1.0:
        raise ExperimentError(f"threshold must be > 1, got {threshold}")
    violations: List[str] = []
    for key, seconds in measured.items():
        reference = baseline.get(key)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        floored = max(float(reference), min_reference)
        if seconds > threshold * floored:
            violations.append(
                f"{key}: measured {seconds:.3f}s vs snapshot "
                f"{float(reference):.3f}s (> {threshold:g}x of "
                f"max(reference, {min_reference:g}s))"
            )
    return violations
