"""Scenario-matrix experiments: declarative grids, one fast runner.

Public surface:

* :class:`~repro.experiments.matrix.ScenarioMatrix`,
  :class:`~repro.experiments.matrix.TraceSpec`,
  :class:`~repro.experiments.matrix.MatrixCell` — the declarative grid;
* :func:`~repro.experiments.runner.run_matrix`,
  :func:`~repro.experiments.runner.execute_cell` — execution
  (sequential or multiprocess, bit-identical);
* aggregation helpers rendering results in the ``analysis/tables``
  format and writing the ``BENCH_baseline.json`` snapshot.
"""

from repro.experiments.aggregate import (
    baseline_snapshot,
    grid_row_settings,
    matrix_table,
    write_result_json,
)
from repro.experiments.bench import (
    cell_delta_rows,
    check_against_baseline,
    churn_microbench,
    compiled_env,
    delta_is_noise,
    executor_microbench,
    ingest_microbench,
    load_baseline,
    memory_microbench,
    netsim_microbench,
    reconfig_microbench,
    refine_microbench,
    run_bench,
    smoke_seconds,
    table2_matrix,
)
from repro.experiments.matrix import (
    ALLOCATOR_BUILDERS,
    ENGINE_MODES,
    MatrixCell,
    ScenarioMatrix,
    TraceSpec,
    default_trace,
    etl_smoke_matrix,
    network_smoke_matrix,
    paper_tables_matrix,
    realloc_smoke_matrix,
    smoke_matrix,
    valued_trace,
    with_engine_modes,
    with_funding,
    with_methods,
    with_network,
    with_trace_source,
    with_windowed,
)
from repro.experiments.runner import (
    CellOutcome,
    MatrixResult,
    execute_cell,
    run_cell,
    run_matrix,
    seed_trace_cache,
)

__all__ = [
    "ALLOCATOR_BUILDERS",
    "ENGINE_MODES",
    "CellOutcome",
    "MatrixCell",
    "MatrixResult",
    "ScenarioMatrix",
    "TraceSpec",
    "baseline_snapshot",
    "cell_delta_rows",
    "check_against_baseline",
    "compiled_env",
    "default_trace",
    "etl_smoke_matrix",
    "execute_cell",
    "churn_microbench",
    "delta_is_noise",
    "executor_microbench",
    "grid_row_settings",
    "ingest_microbench",
    "load_baseline",
    "matrix_table",
    "memory_microbench",
    "netsim_microbench",
    "network_smoke_matrix",
    "paper_tables_matrix",
    "realloc_smoke_matrix",
    "reconfig_microbench",
    "refine_microbench",
    "run_bench",
    "run_cell",
    "run_matrix",
    "seed_trace_cache",
    "smoke_matrix",
    "smoke_seconds",
    "table2_matrix",
    "valued_trace",
    "with_engine_modes",
    "with_funding",
    "with_methods",
    "with_network",
    "with_trace_source",
    "with_windowed",
    "write_result_json",
]
