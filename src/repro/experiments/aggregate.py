"""Aggregation: matrix results into the paper-table and JSON formats.

The runner's summaries are already shaped like
``repro.sim.recorder.summarize_results`` output, so they feed straight
into ``repro.analysis.tables``; this module adds the glue (row settings
derived from the grid axes, JSON persistence, and the
``BENCH_baseline.json`` performance snapshot).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.tables import comparison_table
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import MatrixResult


def grid_row_settings(matrix: ScenarioMatrix) -> List[Dict[str, object]]:
    """One table row per (k, eta, beta, engine_mode) combination.

    Axes with a single value are folded out of the label (and, for the
    engine mode, out of the filter too), mirroring the paper's
    "k = 4", "eta = 5" row style.
    """
    rows: List[Dict[str, object]] = []
    for k in matrix.ks:
        for eta in matrix.etas:
            for beta in matrix.betas:
                for engine_mode in matrix.engine_modes:
                    label_parts = [f"k = {k}"]
                    if len(matrix.etas) > 1:
                        label_parts.append(f"eta = {eta:g}")
                    if len(matrix.betas) > 1:
                        label_parts.append(f"beta = {beta:g}")
                    row: Dict[str, object] = {
                        "k": k,
                        "eta": eta,
                        "beta": beta,
                    }
                    if len(matrix.engine_modes) > 1:
                        label_parts.append(engine_mode)
                        row["engine_mode"] = engine_mode
                    row["label"] = ", ".join(label_parts)
                    rows.append(row)
    return rows


def matrix_table(
    matrix: ScenarioMatrix,
    result: MatrixResult,
    metric: str = "mean_normalized_throughput",
    value_format: str = "{:.2f}",
    lower_is_better: bool = False,
) -> str:
    """Render a Tables I-III style comparison straight from a run."""
    return comparison_table(
        result.summaries,
        metric=metric,
        allocators=list(matrix.methods),
        row_settings=grid_row_settings(matrix),
        value_format=value_format,
        lower_is_better=lower_is_better,
    )


def write_result_json(
    result: MatrixResult, path: Union[str, Path]
) -> Path:
    """Persist a full matrix result (summaries, failures, digest)."""
    path = Path(path)
    payload = {
        "matrix": result.matrix_name,
        "workers": result.workers,
        "seconds": result.seconds,
        "digest": result.deterministic_digest(),
        "summaries": result.summaries,
        "failures": [
            {"cell": o.label, "error": o.error} for o in result.failures
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def baseline_snapshot(
    result: MatrixResult,
    path: Union[str, Path],
    reference: Optional[Dict[str, object]] = None,
    notes: Optional[Sequence[str]] = None,
) -> Path:
    """Write the ``BENCH_baseline.json`` performance snapshot.

    Records the wall-clock of this run (total and per cell), the
    deterministic digest, and — when a ``reference`` timing dict with a
    ``total_seconds`` entry is provided — the speedup against it.
    """
    path = Path(path)
    per_cell = {
        o.label: round(o.seconds, 3) for o in result.outcomes if o.ok
    }
    payload: Dict[str, object] = {
        "matrix": result.matrix_name,
        "workers": result.workers,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "recorded_at": time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime()),
        "total_seconds": round(result.seconds, 3),
        "cell_seconds": per_cell,
        "digest": result.deterministic_digest(),
        "failures": len(result.failures),
    }
    if reference is not None:
        payload["reference"] = reference
        ref_total = reference.get("total_seconds")
        if isinstance(ref_total, (int, float)) and result.seconds > 0:
            payload["speedup_vs_reference"] = round(
                float(ref_total) / result.seconds, 2
            )
    if notes:
        payload["notes"] = list(notes)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
