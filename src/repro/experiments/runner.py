"""The scenario-matrix runner: sequential or multiprocess, same bits.

``run_matrix`` executes every cell of a :class:`ScenarioMatrix` either
in-process (``workers <= 1``) or on a process pool. Because each cell
derives its RNG seed from its own label (see ``experiments/matrix.py``)
and traces are regenerated deterministically per process, the parallel
runner produces **bit-identical deterministic results** to the
sequential one — ``MatrixResult.deterministic_digest()`` is the
canonical witness, and the determinism test in
``tests/test_experiments.py`` asserts it.

Failure containment: a cell that raises — or a worker process that dies
outright — becomes a failed :class:`CellOutcome` carrying a clear error
naming the cell; every other cell's result is unaffected. ``strict=True``
upgrades any failure to :class:`ExperimentError` after the full sweep.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.data.trace import Trace
from repro.errors import ExperimentError
from repro.experiments.matrix import MatrixCell, ScenarioMatrix, TraceSpec
from repro.sim.engine import Simulation, SimulationResult, StreamingSimulation
from repro.sim.recorder import summarize_results

#: Summary keys that are wall-clock measurements, excluded from the
#: deterministic payload (they legitimately differ run to run).
TIMING_KEYS = ("mean_execution_time", "mean_unit_time")

#: Per-process trace cache: cells sharing a TraceSpec reuse the built
#: trace (generated or ETL-decoded) instead of rebuilding it per cell.
_TRACE_CACHE: Dict[TraceSpec, Trace] = {}

#: Per-process source cache for windowed cells. A shared
#: GeneratorTraceSource keeps the synthetic trace generated once per
#: process; a shared CsvTraceSource keeps one account registry
#: (registration is idempotent, so re-streaming assigns the same ids).
_SOURCE_CACHE: Dict[TraceSpec, object] = {}


def _trace_for(spec: TraceSpec) -> Trace:
    trace = _TRACE_CACHE.get(spec)
    if trace is None:
        trace = spec.build()
        _TRACE_CACHE[spec] = trace
    return trace


def _source_for(spec: TraceSpec):
    source = _SOURCE_CACHE.get(spec)
    if source is None:
        source = spec.build_source()
        _SOURCE_CACHE[spec] = source
    return source


def seed_trace_cache(spec: TraceSpec, trace: Trace) -> None:
    """Pre-populate this process's trace cache (benchmark fixtures)."""
    _TRACE_CACHE[spec] = trace


def run_cell(cell: MatrixCell) -> SimulationResult:
    """Run one cell to completion; return the full simulation result.

    This is the single execution path shared by the sequential runner,
    the process-pool workers and the benchmark suite's simulation cache.
    Windowed cells run through :class:`StreamingSimulation` over the
    spec's chunked source instead of a materialised trace; results are
    bit-identical (the digest-equality CI check rests on this).
    """
    allocator = cell.build_allocator()
    config = cell.simulation_config()
    if cell.windowed:
        source = _source_for(cell.trace)
        result = StreamingSimulation(source, allocator, config).run()
    else:
        trace = _trace_for(cell.trace)
        result = Simulation(trace, allocator, config).run()
    result.allocator_name = cell.method
    return result


def execute_cell(cell: MatrixCell) -> Dict[str, object]:
    """Run one cell and flatten it into its labelled summary dict."""
    summary = summarize_results(run_cell(cell))
    summary["cell"] = cell.label
    summary["trace"] = cell.trace.name
    summary["seed"] = cell.cell_seed
    summary["engine_mode"] = cell.engine_mode
    if cell.funding != "uniform":
        # Only non-default funding annotates the summary, so digests of
        # every pre-existing grid stay byte-identical.
        summary["funding"] = cell.funding
    return summary


@dataclass
class CellOutcome:
    """One cell's result: a summary on success, an error message on failure."""

    index: int
    label: str
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    seconds: float = 0.0
    #: Peak traced allocation (MB) while the cell ran; None unless the
    #: sweep tracked memory. A measurement, not a result — excluded
    #: from the deterministic payload like the timing keys.
    peak_mb: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def deterministic_summary(self) -> Dict[str, object]:
        """The summary minus wall-clock fields (bit-comparable)."""
        if self.summary is None:
            return {"cell": self.label, "error": self.error}
        return {
            key: value
            for key, value in self.summary.items()
            if key not in TIMING_KEYS
        }


@dataclass
class MatrixResult:
    """All outcomes of one matrix run, in grid order."""

    matrix_name: str
    workers: int
    outcomes: List[CellOutcome] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def summaries(self) -> List[Dict[str, object]]:
        """Successful summaries in grid order (aggregation input)."""
        return [o.summary for o in self.outcomes if o.ok]

    @property
    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def deterministic_digest(self) -> str:
        """SHA-256 over the canonical deterministic payload.

        Identical for sequential and parallel runs of the same matrix;
        any numeric drift, reordering, or lost cell changes it.
        """
        payload = json.dumps(
            [o.deterministic_summary() for o in self.outcomes],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _execute_cell_guarded(indexed_cell) -> CellOutcome:
    """Worker entry point: never raises, always returns an outcome."""
    index, cell = indexed_cell[0], indexed_cell[1]
    track_memory = indexed_cell[2] if len(indexed_cell) > 2 else False
    started = time.perf_counter()
    try:
        if track_memory:
            import tracemalloc

            tracemalloc.start()
            try:
                summary = execute_cell(cell)
                _, peak_bytes = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            peak_mb = peak_bytes / (1024 * 1024)
        else:
            summary = execute_cell(cell)
            peak_mb = None
        return CellOutcome(
            index=index,
            label=cell.label,
            summary=summary,
            seconds=time.perf_counter() - started,
            peak_mb=peak_mb,
        )
    except Exception as error:  # noqa: BLE001 - contained by design
        tail = traceback.format_exc().strip().splitlines()[-1]
        return CellOutcome(
            index=index,
            label=cell.label,
            error=f"cell {cell.label!r} failed: {tail}",
            seconds=time.perf_counter() - started,
        )


def run_matrix(
    matrix: ScenarioMatrix,
    workers: int = 1,
    strict: bool = False,
    track_memory: bool = False,
) -> MatrixResult:
    """Execute every cell of ``matrix``; return outcomes in grid order.

    Args:
        matrix: the declarative grid to run.
        workers: ``<= 1`` runs sequentially in-process; otherwise a
            process pool of that size executes cells concurrently. The
            deterministic payload is bit-identical either way.
        strict: raise :class:`ExperimentError` after the sweep when any
            cell failed (the error lists every failed cell).
        track_memory: measure each cell's peak traced allocation
            (``CellOutcome.peak_mb``) via tracemalloc. Tracing slows
            cells down noticeably, so it's opt-in and never affects the
            deterministic payload.
    """
    cells = matrix.cells()
    started = time.perf_counter()
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    if workers <= 1:
        for index, cell in enumerate(cells):
            outcomes[index] = _execute_cell_guarded((index, cell, track_memory))
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _execute_cell_guarded, (index, cell, track_memory)
                ): (index, cell)
                for index, cell in enumerate(cells)
            }
            for future, (index, cell) in futures.items():
                try:
                    outcomes[index] = future.result()
                except Exception as error:  # worker died outright
                    outcomes[index] = CellOutcome(
                        index=index,
                        label=cell.label,
                        error=(
                            f"cell {cell.label!r} worker crashed: "
                            f"{type(error).__name__}: {error}"
                        ),
                    )
    result = MatrixResult(
        matrix_name=matrix.name,
        workers=workers,
        outcomes=[o for o in outcomes if o is not None],
        seconds=time.perf_counter() - started,
    )
    if strict and result.failures:
        details = "; ".join(o.error or o.label for o in result.failures)
        raise ExperimentError(
            f"{len(result.failures)} of {len(cells)} cells failed: {details}"
        )
    return result
