"""Declarative scenario matrices: allocator x trace x parameter grids.

A :class:`ScenarioMatrix` names every simulation the experiment harness
should run — which allocators, over which traces, under which protocol
parameters — without saying *how* to run them (that is
``experiments/runner.py``). The grid expands into a deterministic,
ordered list of :class:`MatrixCell` objects; each cell derives its own
RNG seed from the matrix seed and the cell's label through
:func:`repro.util.rng.derive_seed`, so results are independent of
execution order, worker count and co-scheduled cells.

Adding a new grid cell means widening one of the axes (methods, traces,
``ks``/``etas``/``betas``) or registering a new allocator builder in
:data:`ALLOCATOR_BUILDERS`; see README.md for a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from repro.allocation.base import Allocator
from repro.allocation.hash_based import HashAllocator
from repro.allocation.metis_like import MetisLikeAllocator
from repro.allocation.orbit import OrbitAllocator
from repro.allocation.txallo import TxAlloAllocator
from typing import Optional

from repro.chain.netsim import NETWORK_IDEAL, NETWORK_SPEC_NAMES
from repro.chain.params import ProtocolParams
from repro.chain.state import BACKEND_DENSE, BACKEND_DICT
from repro.core.mosaic import MosaicAllocator
from repro.data.ethereum import EthereumTraceConfig
from repro.data.generators import ValueModelConfig
from repro.errors import ConfigurationError
from repro.sim.engine import (
    FUNDING_MODES,
    FUNDING_UNIFORM,
    ORACLE_LOOKAHEAD,
    SimulationConfig,
)
from repro.util.rng import derive_seed

#: Engine modes — a first-class grid axis. ``metrics`` is the classic
#: metrics-only loop; ``execute`` adds unified value execution on the
#: scalar-dict state backend; ``execute-dense`` selects the
#: dense-array backend.
ENGINE_MODE_METRICS = "metrics"
ENGINE_MODE_EXECUTE = "execute"
ENGINE_MODE_EXECUTE_DENSE = "execute-dense"
ENGINE_MODES = (
    ENGINE_MODE_METRICS,
    ENGINE_MODE_EXECUTE,
    ENGINE_MODE_EXECUTE_DENSE,
)

#: Allocator builders, keyed by the display name used in result tables.
#: Each builder takes the cell seed so stochastic allocators stay
#: deterministic per cell and independent across cells.
ALLOCATOR_BUILDERS: Dict[str, Callable[[int], Allocator]] = {
    "mosaic-pilot": lambda seed: MosaicAllocator(initializer=TxAlloAllocator()),
    "txallo": lambda seed: TxAlloAllocator(mode="full"),
    "txallo-a": lambda seed: TxAlloAllocator(mode="adaptive"),
    "metis": lambda seed: MetisLikeAllocator(seed=seed),
    "hash-random": lambda seed: HashAllocator(),
    "orbit": lambda seed: OrbitAllocator(),
}


@dataclass(frozen=True)
class TraceSpec:
    """A named, reproducible trace source.

    Exactly one of two sources backs a spec: a synthetic generator
    configuration (``config``) or an ethereum-etl CSV on disk
    (``etl_path`` — decoded through the chunked, bounded-memory
    :class:`~repro.data.source.CsvTraceSource`). Either way,
    :meth:`build` materialises the same :class:`Trace` every time, so
    cells sharing a spec share a cached trace and grids stay
    deterministic.

    ``decoder`` (CSV specs only) picks the row-decode implementation —
    python reference, arrow columnar, or auto-detect. Both decoders are
    bit-identical, so the choice never changes a cell's results, only
    the ingest wall-clock.
    """

    name: str
    config: Optional[EthereumTraceConfig] = None
    etl_path: Optional[str] = None
    decoder: str = "auto"

    def __post_init__(self) -> None:
        if (self.config is None) == (self.etl_path is None):
            raise ConfigurationError(
                f"trace spec {self.name!r} needs exactly one of "
                "config (synthetic) or etl_path (CSV replay)"
            )
        from repro.data.arrow import DECODERS

        if self.decoder not in DECODERS:
            raise ConfigurationError(
                f"trace spec {self.name!r}: decoder must be one of "
                f"{DECODERS}, got {self.decoder!r}"
            )
        if self.decoder != "auto" and self.etl_path is None:
            raise ConfigurationError(
                f"trace spec {self.name!r}: decoder applies only to "
                "etl_path specs (synthetic traces decode nothing)"
            )

    def build(self) -> "Trace":  # noqa: F821 - runtime import below
        """Materialise this spec's trace (generator or streamed ETL)."""
        if self.etl_path is not None:
            from repro.data.source import CsvTraceSource

            return CsvTraceSource(
                self.etl_path, decoder=self.decoder
            ).materialise()
        from repro.data.ethereum import generate_ethereum_like_trace

        return generate_ethereum_like_trace(self.config)

    def build_source(self) -> "TraceSource":  # noqa: F821 - runtime import
        """This spec as a chunked :class:`~repro.data.source.TraceSource`.

        Windowed cells stream from this instead of materialising
        :meth:`build`'s trace; both views decode/generate the same rows,
        so a cell's results are bit-identical either way.
        """
        if self.etl_path is not None:
            from repro.data.source import CsvTraceSource

            return CsvTraceSource(self.etl_path, decoder=self.decoder)
        from repro.data.source import GeneratorTraceSource

        return GeneratorTraceSource(self.config)


@dataclass(frozen=True)
class MatrixCell:
    """One fully-specified simulation of the grid."""

    method: str
    trace: TraceSpec
    k: int
    eta: float
    beta: float
    tau: int
    matrix_seed: int
    oracle_mode: str = ORACLE_LOOKAHEAD
    history_fraction: Optional[float] = None
    history_epochs: Optional[int] = None
    engine_mode: str = ENGINE_MODE_METRICS
    funding: str = FUNDING_UNIFORM
    #: Network model receipts/announcements ride (``"ideal"`` is the
    #: direct-call null model and — like the engine mode — is not part
    #: of the scenario label: a lossy cell simulates the bit-identical
    #: scenario of its ideal twin, the network only perturbs delivery).
    network: str = NETWORK_IDEAL
    #: Run through the windowed streaming engine instead of
    #: materialising the trace. Deliberately *not* part of the label:
    #: a windowed run simulates the bit-identical scenario, so digest
    #: equality between a windowed and a materialised sweep of the same
    #: grid is the CI equivalence assertion.
    windowed: bool = False

    @property
    def scenario_label(self) -> str:
        """The engine-mode-free identifier: also the RNG-stream label.

        Seeds derive from this label, *not* from :attr:`label`, so an
        executed cell simulates the bit-identical world of its
        metrics-mode twin — the engine mode (and the funding mode,
        which only shapes the substrate's genesis supply) changes what
        is measured, never the simulated scenario. An absolute history
        split (``history_epochs``) *does* change the scenario, so it
        annotates the label when set; the default fractional split
        keeps every pre-existing label byte-identical.
        """
        label = (
            f"{self.method}/{self.trace.name}"
            f"/k{self.k}/eta{self.eta:g}/beta{self.beta:g}/tau{self.tau}"
        )
        if self.history_epochs is not None:
            label = f"{label}/hist{self.history_epochs}"
        return label

    @property
    def label(self) -> str:
        """Stable identifier; executed cells carry mode suffixes."""
        label = self.scenario_label
        if self.engine_mode != ENGINE_MODE_METRICS:
            label = f"{label}/{self.engine_mode}"
        if self.funding != FUNDING_UNIFORM:
            label = f"{label}/funding-{self.funding}"
        if self.network != NETWORK_IDEAL:
            label = f"{label}/net-{self.network}"
        return label

    @property
    def cell_seed(self) -> int:
        """Deterministic per-cell seed, shared across engine modes."""
        return derive_seed(self.matrix_seed, self.scenario_label)

    def protocol_params(self) -> ProtocolParams:
        return ProtocolParams(
            k=self.k,
            eta=self.eta,
            tau=self.tau,
            beta=self.beta,
            seed=self.cell_seed,
        )

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            params=self.protocol_params(),
            history_fraction=self.history_fraction,
            history_epochs=self.history_epochs,
            oracle_mode=self.oracle_mode,
            execute_values=self.engine_mode != ENGINE_MODE_METRICS,
            state_backend=(
                BACKEND_DENSE
                if self.engine_mode == ENGINE_MODE_EXECUTE_DENSE
                else BACKEND_DICT
            ),
            funding=self.funding,
            network=self.network,
        )

    def build_allocator(self) -> Allocator:
        return ALLOCATOR_BUILDERS[self.method](self.cell_seed)


@dataclass(frozen=True)
class ScenarioMatrix:
    """A declarative grid of simulations.

    The cell list is the Cartesian product
    ``traces x methods x ks x etas x betas x engine_modes`` in that
    (deterministic) nesting order, all sharing ``tau``/oracle settings.
    Unknown method or engine-mode names fail at construction time, not
    mid-run. The default single-mode axis (``("metrics",)``) expands to
    exactly the cells, labels and seeds of the pre-axis grid.
    """

    name: str
    methods: Tuple[str, ...]
    traces: Tuple[TraceSpec, ...]
    ks: Tuple[int, ...] = (16,)
    etas: Tuple[float, ...] = (2.0,)
    betas: Tuple[float, ...] = (0.0,)
    tau: int = 30
    seed: int = 0
    oracle_mode: str = ORACLE_LOOKAHEAD
    history_fraction: Optional[float] = None
    history_epochs: Optional[int] = None
    engine_modes: Tuple[str, ...] = (ENGINE_MODE_METRICS,)
    funding: str = FUNDING_UNIFORM
    network: str = NETWORK_IDEAL
    windowed: bool = False

    def __post_init__(self) -> None:
        if self.history_fraction is not None and self.history_epochs is not None:
            raise ConfigurationError(
                f"matrix {self.name!r}: history_fraction and history_epochs "
                "are mutually exclusive; set at most one"
            )
        unknown = [m for m in self.methods if m not in ALLOCATOR_BUILDERS]
        if unknown:
            raise ConfigurationError(
                f"unknown methods {unknown}; "
                f"available: {sorted(ALLOCATOR_BUILDERS)}"
            )
        unknown_modes = [m for m in self.engine_modes if m not in ENGINE_MODES]
        if unknown_modes:
            raise ConfigurationError(
                f"unknown engine modes {unknown_modes}; "
                f"available: {', '.join(ENGINE_MODES)}"
            )
        if self.funding not in FUNDING_MODES:
            raise ConfigurationError(
                f"unknown funding mode {self.funding!r}; "
                f"available: {', '.join(FUNDING_MODES)}"
            )
        if self.network not in NETWORK_SPEC_NAMES:
            raise ConfigurationError(
                f"unknown network model {self.network!r}; "
                f"available: {', '.join(NETWORK_SPEC_NAMES)}"
            )
        if self.network != NETWORK_IDEAL and any(
            mode == ENGINE_MODE_METRICS for mode in self.engine_modes
        ):
            raise ConfigurationError(
                f"matrix {self.name!r}: network {self.network!r} needs "
                "value execution; restrict engine_modes to executing "
                "modes (the metrics-only loop moves no messages)"
            )
        if not self.methods or not self.traces:
            raise ConfigurationError("matrix needs >= 1 method and >= 1 trace")
        if not self.ks or not self.etas or not self.betas or not self.engine_modes:
            raise ConfigurationError("every parameter axis needs >= 1 value")

    def cells(self) -> List[MatrixCell]:
        """Expand the grid in deterministic order."""
        return [
            MatrixCell(
                method=method,
                trace=trace,
                k=k,
                eta=eta,
                beta=beta,
                tau=self.tau,
                matrix_seed=self.seed,
                oracle_mode=self.oracle_mode,
                history_fraction=self.history_fraction,
                history_epochs=self.history_epochs,
                engine_mode=engine_mode,
                funding=self.funding,
                network=self.network,
                windowed=self.windowed,
            )
            for trace in self.traces
            for method in self.methods
            for k in self.ks
            for eta in self.etas
            for beta in self.betas
            for engine_mode in self.engine_modes
        ]

    def __len__(self) -> int:
        return (
            len(self.traces)
            * len(self.methods)
            * len(self.ks)
            * len(self.etas)
            * len(self.betas)
            * len(self.engine_modes)
        )


def default_trace(
    name: str = "community",
    n_accounts: int = 3_000,
    n_transactions: int = 40_000,
    n_blocks: int = 2_400,
    seed: int = 0,
) -> TraceSpec:
    """The standard community-structured synthetic trace, sized to taste."""
    return TraceSpec(
        name=name,
        config=EthereumTraceConfig(
            n_accounts=n_accounts,
            n_transactions=n_transactions,
            n_blocks=n_blocks,
            hub_fraction=0.01,
            hub_transaction_share=0.12,
            seed=seed,
        ),
    )


def smoke_matrix(seed: int = 0) -> ScenarioMatrix:
    """The 2x2 CI smoke grid: two allocators x two shard counts.

    Small enough to finish in seconds; wide enough to cross the whole
    pipeline (trace generation, both allocator families, aggregation).
    """
    return ScenarioMatrix(
        name="smoke",
        methods=("mosaic-pilot", "hash-random"),
        traces=(
            default_trace(
                "smoke-trace",
                n_accounts=600,
                n_transactions=6_000,
                n_blocks=400,
                seed=7,
            ),
        ),
        ks=(4, 8),
        tau=40,
        seed=seed,
    )


def realloc_smoke_matrix(seed: int = 0) -> ScenarioMatrix:
    """One reallocation-heavy executed cell for CI.

    Metis recomputes a full partition every epoch, so in executed mode
    each epoch's mapping update floods the beacon with migration
    requests — exercising the columnar beacon commit, the residency
    index and the grouped gather/scatter state movement end to end on
    every push, at smoke-grid size.
    """
    return ScenarioMatrix(
        name="realloc-smoke",
        methods=("metis",),
        traces=(
            default_trace(
                "smoke-trace",
                n_accounts=600,
                n_transactions=6_000,
                n_blocks=400,
                seed=7,
            ),
        ),
        ks=(4,),
        tau=40,
        seed=seed,
        engine_modes=("execute-dense",),
    )


def network_smoke_matrix(seed: int = 0) -> ScenarioMatrix:
    """One degraded-WAN executed cell for CI.

    The ``lossy`` model drops ~12% of receipts, duplicates and reorders
    the rest, and periodically severs shard links outright — so this
    cell exercises the full failure surface on every push: bounded
    retransmission with backoff, duplicate-settlement dedup, timeout
    aborts with sender refunds, and delivered-block settlement. The CLI
    asserts nonzero retransmissions, exact value conservation, and a
    repeat-run digest match on top of it.
    """
    return ScenarioMatrix(
        name="network-smoke",
        methods=("metis",),
        traces=(
            default_trace(
                "smoke-trace",
                n_accounts=600,
                n_transactions=6_000,
                n_blocks=400,
                seed=7,
            ),
        ),
        ks=(4,),
        tau=40,
        seed=seed,
        engine_modes=(ENGINE_MODE_EXECUTE_DENSE,),
        network="lossy",
    )


def paper_tables_matrix(
    trace: TraceSpec, tau: int = 40, seed: int = 42
) -> ScenarioMatrix:
    """The Tables I-III effectiveness grid over one trace.

    k in {4, 16, 32} at eta = 2 plus eta in {5, 10} at k = 16 is not a
    full Cartesian product, so the grid is the product superset; table
    renderers pick the rows they need.
    """
    return ScenarioMatrix(
        name="paper-tables",
        methods=("mosaic-pilot", "txallo", "metis", "hash-random"),
        traces=(trace,),
        ks=(4, 16, 32),
        etas=(2.0, 5.0, 10.0),
        tau=tau,
        seed=seed,
    )


def valued_trace(
    name: str = "community-valued",
    n_accounts: int = 3_000,
    n_transactions: int = 40_000,
    n_blocks: int = 2_400,
    seed: int = 0,
    value_model: Optional[ValueModelConfig] = None,
) -> TraceSpec:
    """The standard synthetic trace with a value model attached.

    The graph structure is bit-identical to :func:`default_trace` at
    the same parameters (values draw from their own RNG stream); the
    batch additionally carries ``values`` (and ``fees`` when the model
    sets a fee fraction) for value-faithful executed cells.
    """
    spec = default_trace(name, n_accounts, n_transactions, n_blocks, seed)
    model = value_model if value_model is not None else ValueModelConfig()
    return TraceSpec(name=name, config=replace(spec.config, value_model=model))


def etl_smoke_matrix(
    etl_path: str, seed: int = 0, decoder: str = "auto"
) -> ScenarioMatrix:
    """One streamed value-faithful executed cell for CI.

    The trace comes from an ethereum-etl CSV through the chunked
    :class:`~repro.data.source.CsvTraceSource` (the streamed decode
    path), runs in ``execute-dense`` mode, and funds genesis from the
    file's observed value flow — the complete ingest-to-settlement
    value pipeline on every push, at smoke size.
    """
    return ScenarioMatrix(
        name="etl-smoke",
        methods=("mosaic-pilot",),
        traces=(
            TraceSpec(name="etl-fixture", etl_path=etl_path, decoder=decoder),
        ),
        ks=(4,),
        tau=40,
        seed=seed,
        engine_modes=(ENGINE_MODE_EXECUTE_DENSE,),
        funding="observed",
    )


def with_methods(matrix: ScenarioMatrix, methods: Tuple[str, ...]) -> ScenarioMatrix:
    """A copy of ``matrix`` restricted/extended to ``methods``."""
    return replace(matrix, methods=tuple(methods))


def with_trace_source(
    matrix: ScenarioMatrix,
    etl_path: str,
    name: str = "etl",
    decoder: str = "auto",
) -> ScenarioMatrix:
    """A copy of ``matrix`` replaying an ETL CSV instead of its traces.

    This is the ``repro matrix --trace-source`` axis: the grid's
    methods/parameters stay as declared while every cell draws its
    transactions (and value columns) from the extract at ``etl_path``,
    decoded through ``decoder`` (python reference / arrow columnar /
    auto).
    """
    return replace(
        matrix,
        traces=(
            TraceSpec(name=name, etl_path=str(etl_path), decoder=decoder),
        ),
    )


def with_funding(matrix: ScenarioMatrix, funding: str) -> ScenarioMatrix:
    """A copy of ``matrix`` under another genesis-funding mode."""
    return replace(matrix, funding=funding)


def with_network(matrix: ScenarioMatrix, network: str) -> ScenarioMatrix:
    """A copy of ``matrix`` routing messages through ``network``.

    Non-ideal models require executing engine modes (validated at
    construction); cell labels gain a ``/net-{name}`` suffix while
    scenario labels — and therefore seeds — are shared with the ideal
    twin, so a lossy cell perturbs delivery of the identical workload.
    """
    return replace(matrix, network=network)


def with_engine_modes(
    matrix: ScenarioMatrix, engine_modes: Tuple[str, ...]
) -> ScenarioMatrix:
    """A copy of ``matrix`` running under ``engine_modes`` instead."""
    return replace(matrix, engine_modes=tuple(engine_modes))


def with_windowed(
    matrix: ScenarioMatrix,
    windowed: bool = True,
    history_epochs: Optional[int] = None,
) -> ScenarioMatrix:
    """A copy of ``matrix`` run through the windowed streaming engine.

    Cell labels (and therefore seeds and the deterministic digest) are
    unchanged unless ``history_epochs`` moves the history split — so
    comparing this copy's digest against the original's is the
    streamed-vs-materialised equivalence check.
    """
    updated = replace(matrix, windowed=windowed)
    if history_epochs is not None:
        updated = replace(
            updated, history_epochs=history_epochs, history_fraction=None
        )
    return updated
