"""Arrow-backed columnar CSV decode for :class:`CsvTraceSource`.

The streamed python decoder in :mod:`repro.data.source` pays an
interpreted per-row cost (csv split, ``int``/``float`` parses, list
appends) that dominates 1M-row ingest. This module decodes the same
ethereum-etl files through ``pyarrow.csv``'s streaming reader instead:
rows arrive as columnar record batches, every cell validation is a
vectorised kernel, and only address registration touches per-row Python
state — on the hash-map, not on the csv text.

The columnar path honours the exact chunk contract of the reference
decoder (which remains the equivalence reference, property-pinned in
``tests/test_data_arrow.py``):

* chunks are block-ordered :class:`TransactionBatch` slices of exactly
  ``chunk_rows`` rows (final chunk partial), with the same lazy
  value-column activation and optional fee column;
* the registry sees addresses in the same interleaved first-occurrence
  order, so dense account ids are identical;
* malformed input surfaces the same typed errors with the same file and
  1-based line numbers.

Arrow cannot track source line numbers through its block reader, so the
error contract is kept by *replay*: any anomaly the columnar kernels
detect (bad cell, negative value, out-of-order block, reader error)
aborts the fast path and the caller re-decodes through the reference
decoder — seamlessly when no chunk was emitted yet (registration is
idempotent and prefix-ordered, so the python decoder continues with
identical ids), or as an error-reporting replay otherwise. Either way
the caller observes exactly the python decoder's behaviour.

When pyarrow is missing, ``decoder="auto"`` quietly resolves to the
python path and ``decoder="arrow"`` raises a :class:`DataError` naming
the missing dependency (installed by the ``repro[fast]`` extra).
"""

from __future__ import annotations

import csv
from itertools import chain
from typing import Iterator, List, Optional

import numpy as np

from repro.chain.transaction import TransactionBatch
from repro.data.etl import _RowDecoder
from repro.errors import DataError

__all__ = [
    "PYARROW_AVAILABLE",
    "DECODER_PYTHON",
    "DECODER_ARROW",
    "DECODER_AUTO",
    "DECODERS",
    "ArrowDecodeAnomaly",
    "arrow_chunks",
    "describe",
    "resolve_decoder",
]

try:  # pragma: no cover - exercised implicitly per environment
    import pyarrow  # noqa: F401

    PYARROW_AVAILABLE = True
except ImportError:  # pragma: no cover
    PYARROW_AVAILABLE = False

#: Decoder knob values accepted by :class:`CsvTraceSource`.
DECODER_PYTHON = "python"
DECODER_ARROW = "arrow"
DECODER_AUTO = "auto"
DECODERS = (DECODER_PYTHON, DECODER_ARROW, DECODER_AUTO)

#: pyarrow block size bounds: roughly ``chunk_rows`` worth of raw csv
#: text per record batch (~128 bytes/row), clamped to sane IO sizes.
_MIN_BLOCK_BYTES = 1 << 16
_MAX_BLOCK_BYTES = 1 << 24
_BYTES_PER_ROW = 128


def pyarrow_version() -> str:
    """The installed pyarrow version, or ``""`` when absent."""
    if not PYARROW_AVAILABLE:
        return ""
    import pyarrow

    return pyarrow.__version__


def describe() -> str:
    """One-line status of the columnar ingest fast path."""
    if PYARROW_AVAILABLE:
        return f"pyarrow {pyarrow_version()} (csv ingest: arrow columnar)"
    return "pyarrow absent (csv ingest: python row decoder)"


def resolve_decoder(name: str) -> str:
    """Resolve a decoder knob to ``"python"`` or ``"arrow"``.

    ``"auto"`` selects arrow exactly when pyarrow is importable;
    requesting ``"arrow"`` without pyarrow raises a :class:`DataError`
    (install the ``repro[fast]`` extra), so an explicit choice never
    silently degrades.
    """
    if name == DECODER_AUTO:
        return DECODER_ARROW if PYARROW_AVAILABLE else DECODER_PYTHON
    if name == DECODER_PYTHON:
        return DECODER_PYTHON
    if name == DECODER_ARROW:
        if not PYARROW_AVAILABLE:
            raise DataError(
                "decoder='arrow' requires pyarrow (pip install 'repro[fast]')"
            )
        return DECODER_ARROW
    raise DataError(
        f"decoder must be one of {DECODERS}, got {name!r}"
    )


class ArrowDecodeAnomaly(Exception):
    """Internal: the columnar fast path hit input it cannot vectorise.

    Not a user-facing error — :meth:`CsvTraceSource.chunks` catches it
    and re-decodes through the python reference path, which either
    raises the contract's typed error with the exact line number or
    proves the file decodes fine row-wise.
    """


class _ChunkAssembler:
    """Re-chunk columnar survivor rows into exact ``chunk_rows`` slices.

    Mirrors the python decoder's flush discipline: every emitted chunk
    is exactly ``chunk_rows`` rows (the final one partial), and the
    value column activates lazily — a chunk carries ``values`` iff a
    nonzero value was decoded anywhere up to and including that chunk's
    rows, matching the reference's append-time activation.
    """

    def __init__(self, chunk_rows: int, has_values: bool, has_fees: bool) -> None:
        self.chunk_rows = chunk_rows
        self.has_values = has_values
        self.has_fees = has_fees
        self.values_active = False
        self._senders = np.zeros(0, dtype=np.int64)
        self._receivers = np.zeros(0, dtype=np.int64)
        self._blocks = np.zeros(0, dtype=np.int64)
        self._values = np.zeros(0, dtype=np.float64)
        self._fees = np.zeros(0, dtype=np.float64)

    @property
    def rows(self) -> int:
        return len(self._senders)

    def append(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        blocks: np.ndarray,
        values: Optional[np.ndarray],
        fees: Optional[np.ndarray],
    ) -> None:
        self._senders = np.concatenate([self._senders, senders])
        self._receivers = np.concatenate([self._receivers, receivers])
        self._blocks = np.concatenate([self._blocks, blocks])
        if self.has_values:
            self._values = np.concatenate([self._values, values])
        if self.has_fees:
            self._fees = np.concatenate([self._fees, fees])

    def _emit(self, size: int) -> TransactionBatch:
        values = None
        if self.has_values:
            head = self._values[:size]
            if not self.values_active and head.any():
                self.values_active = True
            if self.values_active:
                values = head.copy()
            self._values = self._values[size:]
        fees = None
        if self.has_fees:
            fees = self._fees[:size].copy()
            self._fees = self._fees[size:]
        batch = TransactionBatch(
            self._senders[:size].copy(),
            self._receivers[:size].copy(),
            self._blocks[:size].copy(),
            values,
            fees,
        )
        self._senders = self._senders[size:]
        self._receivers = self._receivers[size:]
        self._blocks = self._blocks[size:]
        return batch

    def ready(self) -> Iterator[TransactionBatch]:
        """Emit every complete ``chunk_rows``-sized chunk buffered."""
        while self.rows >= self.chunk_rows:
            yield self._emit(self.chunk_rows)

    def flush(self) -> Iterator[TransactionBatch]:
        """Emit the final partial chunk, if any."""
        if self.rows:
            yield self._emit(self.rows)


def arrow_chunks(source) -> Iterator[TransactionBatch]:
    """Columnar chunk stream for a :class:`CsvTraceSource`.

    Yields the same block-ordered :class:`TransactionBatch` chunks the
    source's python path yields. Raises :class:`ArrowDecodeAnomaly` on
    anything the vectorised kernels cannot accept verbatim — the caller
    owns the replay/fallback policy. Header problems raise the python
    decoder's own :class:`DataError` directly (the header is resolved
    through :class:`_RowDecoder` before any arrow work).
    """
    import pyarrow as pa
    import pyarrow.compute as pc
    import pyarrow.csv as pacsv

    path = source.path
    registry = source.registry
    # Header through the reference decoder: identical empty-file /
    # missing-column errors, identical first-occurrence column indices.
    with path.open(newline="") as handle:
        fieldnames = next(csv.reader(handle), None)
    decoder = _RowDecoder(path, fieldnames, registry)
    names = [f"c{i}" for i in range(len(fieldnames))]
    block_size = min(
        max(source.chunk_rows * _BYTES_PER_ROW, _MIN_BLOCK_BYTES),
        _MAX_BLOCK_BYTES,
    )

    try:
        reader = pacsv.open_csv(
            str(path),
            read_options=pacsv.ReadOptions(
                skip_rows=1, column_names=names, block_size=block_size
            ),
            parse_options=pacsv.ParseOptions(newlines_in_values=True),
            convert_options=pacsv.ConvertOptions(
                column_types={name: pa.string() for name in names}
            ),
        )
    except Exception as exc:
        raise ArrowDecodeAnomaly(f"reader open failed: {exc}") from exc

    assembler = _ChunkAssembler(
        source.chunk_rows, decoder.has_values, decoder.has_fees
    )
    id_of_raw: dict = {}
    last_block = -1

    while True:
        try:
            batch = reader.read_next_batch()
        except StopIteration:
            break
        except Exception as exc:
            raise ArrowDecodeAnomaly(f"batch read failed: {exc}") from exc
        if batch.num_rows == 0:
            continue
        columns = batch.columns

        # Endpoint trim + contract-creation skip happen before any cell
        # validation, exactly like the reference decoder (a row with an
        # empty endpoint is skipped even if its block cell is garbage).
        try:
            from_trim = pc.utf8_trim_whitespace(columns[decoder.from_index])
            to_trim = pc.utf8_trim_whitespace(columns[decoder.to_index])
            keep = pc.fill_null(
                pc.and_(
                    pc.not_equal(from_trim, ""), pc.not_equal(to_trim, "")
                ),
                False,
            )
            from_kept = pc.filter(from_trim, keep)
            to_kept = pc.filter(to_trim, keep)
            block_kept = pc.utf8_trim_whitespace(
                pc.filter(columns[decoder.block_index], keep)
            )
            blocks = pc.cast(block_kept, pa.int64()).to_numpy(
                zero_copy_only=False
            )
        except ArrowDecodeAnomaly:
            raise
        except Exception as exc:
            raise ArrowDecodeAnomaly(f"block decode failed: {exc}") from exc
        if blocks.size and int(blocks.min()) < 0:
            raise ArrowDecodeAnomaly("negative block_number")

        values = None
        if decoder.has_values:
            values = _cast_amount_column(
                pc, pa, columns[decoder.value_index], keep, "value"
            )
        fees = None
        if decoder.has_fees:
            fees = _cast_amount_column(
                pc, pa, columns[decoder.fee_index], keep, "fee"
            )

        # Registration: dense ids in interleaved (sender, receiver)
        # first-occurrence order, same as the per-row reference. Only
        # unseen raw spellings hit the registry's validating register;
        # repeats resolve through a plain dict.
        froms: List[str] = from_kept.to_pylist()
        tos: List[str] = to_kept.to_pylist()
        for address in dict.fromkeys(chain.from_iterable(zip(froms, tos))):
            if address not in id_of_raw:
                try:
                    id_of_raw[address] = registry.register(address)
                except Exception as exc:
                    raise ArrowDecodeAnomaly(
                        f"address rejected: {exc}"
                    ) from exc
        senders = np.fromiter(
            (id_of_raw[a] for a in froms), dtype=np.int64, count=len(froms)
        )
        receivers = np.fromiter(
            (id_of_raw[a] for a in tos), dtype=np.int64, count=len(tos)
        )

        # Self-transfers register their endpoints (above) but carry no
        # allocation signal; the block-order contract applies to the
        # rows that survive, exactly like the reference stream.
        tx_keep = senders != receivers
        if not tx_keep.all():
            senders = senders[tx_keep]
            receivers = receivers[tx_keep]
            blocks = blocks[tx_keep]
            if values is not None:
                values = values[tx_keep]
            if fees is not None:
                fees = fees[tx_keep]
        if blocks.size:
            if int(blocks[0]) < last_block or (np.diff(blocks) < 0).any():
                raise ArrowDecodeAnomaly("blocks out of order")
            last_block = int(blocks[-1])
            assembler.append(senders, receivers, blocks, values, fees)
            source.peak_buffer_rows = max(
                source.peak_buffer_rows, assembler.rows
            )
            yield from assembler.ready()

    yield from assembler.flush()


def _cast_amount_column(pc, pa, column, keep, label: str) -> np.ndarray:
    """Decode a value/fee column: trim, empty -> 0, reject bad cells."""
    try:
        trimmed = pc.utf8_trim_whitespace(pc.filter(column, keep))
        filled = pc.if_else(pc.equal(trimmed, ""), "0", trimmed)
        amounts = pc.cast(filled, pa.float64()).to_numpy(
            zero_copy_only=False
        )
    except Exception as exc:
        raise ArrowDecodeAnomaly(f"bad {label} column: {exc}") from exc
    if np.isnan(amounts).any() or (amounts < 0).any():
        raise ArrowDecodeAnomaly(f"bad {label} column")
    return amounts
