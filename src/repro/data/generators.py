"""Workload-generation primitives shared by the synthetic datasets.

These building blocks let the Ethereum-like generator (and the tests)
compose traces with the statistical properties the allocation algorithms
care about: heavy-tailed activity, repeated counterparties, and community
structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import DataError
from repro.util.validation import check_in_range, check_positive, check_probability

#: Value-model kinds accepted by :class:`ValueModelConfig`.
VALUE_MODEL_UNIFORM = "uniform"
VALUE_MODEL_ZIPF = "zipf"
VALUE_MODEL_BURST = "burst"
VALUE_MODELS = (VALUE_MODEL_UNIFORM, VALUE_MODEL_ZIPF, VALUE_MODEL_BURST)


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf weights ``w_i ~ 1 / rank^exponent`` for ``n`` items.

    ``exponent = 0`` degenerates to uniform; Ethereum account activity is
    well approximated by exponents around 1.0-1.3.
    """
    if n < 1:
        raise DataError(f"n must be >= 1, got {n}")
    check_in_range("exponent", exponent, 0.0, 10.0)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_pairs(
    rng: np.random.Generator,
    n_pairs: int,
    weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``n_pairs`` (sender, receiver) pairs i.i.d. from ``weights``.

    Self-pairs are re-drawn (a value transfer to oneself carries no
    allocation signal); after a bounded number of redraw rounds any
    remaining self-pairs are shifted by one id as a last resort.
    """
    if n_pairs < 0:
        raise DataError(f"n_pairs must be >= 0, got {n_pairs}")
    n_accounts = len(weights)
    if n_accounts < 2:
        raise DataError("need at least 2 accounts to sample pairs")
    senders = rng.choice(n_accounts, size=n_pairs, p=weights)
    receivers = rng.choice(n_accounts, size=n_pairs, p=weights)
    for _ in range(8):
        clash = senders == receivers
        n_clash = int(clash.sum())
        if n_clash == 0:
            break
        receivers[clash] = rng.choice(n_accounts, size=n_clash, p=weights)
    clash = senders == receivers
    receivers[clash] = (receivers[clash] + 1) % n_accounts
    return senders.astype(np.int64), receivers.astype(np.int64)


@dataclass(frozen=True)
class ValueModelConfig:
    """Per-transfer value (and fee) model for synthetic traces.

    Three kinds:

    * ``"uniform"`` — every transfer moves ``scale`` units;
    * ``"zipf"`` — heavy-tailed transfer values (power-law tail with
      exponent ``exponent``), the shape real Ethereum value flow has:
      most transfers are small, a thin tail moves most of the volume;
    * ``"burst"`` — zipf values plus a flash-crowd window: transfers
      inside the block window ``[burst_start, burst_start + burst_span)``
      (fractions of the trace's block range) carry ``burst_multiplier``
      times the value, modelling an NFT-mint/airdrop surge.

    Values are rounded up to whole units so every generated amount is
    integer-valued — which keeps the batched executor's scalar-vs-batch
    equivalence bit-exact (see :mod:`repro.chain.crossshard`).
    ``fee_fraction > 0`` adds a ``fees`` column of
    ``floor(value * fee_fraction)``.
    """

    kind: str = VALUE_MODEL_ZIPF
    scale: float = 10.0
    exponent: float = 1.5
    fee_fraction: float = 0.0
    burst_start: float = 0.5
    burst_span: float = 0.1
    burst_multiplier: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in VALUE_MODELS:
            raise DataError(
                f"unknown value model {self.kind!r}; "
                f"available: {', '.join(VALUE_MODELS)}"
            )
        check_positive("scale", self.scale)
        check_in_range("exponent", self.exponent, 0.1, 10.0)
        check_in_range("fee_fraction", self.fee_fraction, 0.0, 1.0)
        check_probability("burst_start", self.burst_start)
        check_probability("burst_span", self.burst_span)
        if self.burst_multiplier < 1:
            raise DataError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )


def sample_transfer_values(
    rng: np.random.Generator,
    blocks: np.ndarray,
    config: ValueModelConfig,
    n_blocks: Optional[int] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Sample ``(values, fees)`` columns for transfers at ``blocks``.

    ``fees`` is ``None`` when the model's ``fee_fraction`` is zero, so
    fee-free traces keep their three/four-column batch layout.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = len(blocks)
    if config.kind == VALUE_MODEL_UNIFORM:
        values = np.full(n, np.ceil(config.scale), dtype=np.float64)
    else:
        # Pareto tail: most transfers near `scale`, a heavy tail above.
        values = np.ceil(config.scale * (rng.pareto(config.exponent, size=n) + 1.0))
    if config.kind == VALUE_MODEL_BURST and n:
        span_first = int(blocks[0])
        span_last = int(n_blocks - 1) if n_blocks is not None else int(blocks[-1])
        span = max(1, span_last - span_first + 1)
        start = span_first + int(config.burst_start * span)
        stop = start + max(1, int(config.burst_span * span))
        in_burst = (blocks >= start) & (blocks < stop)
        values[in_burst] *= np.ceil(config.burst_multiplier)
    fees: Optional[np.ndarray] = None
    if config.fee_fraction > 0.0:
        fees = np.floor(values * config.fee_fraction)
    return values, fees


@dataclass(frozen=True)
class CommunityConfig:
    """Parameters of the community-structured pair sampler.

    Attributes:
        n_communities: number of latent communities accounts belong to.
        intra_probability: probability a transaction stays inside the
            sender's community (locality the graph methods exploit).
        activity_exponent: Zipf exponent of within-community activity.
    """

    n_communities: int = 32
    intra_probability: float = 0.8
    activity_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.n_communities < 1:
            raise DataError(
                f"n_communities must be >= 1, got {self.n_communities}"
            )
        check_probability("intra_probability", self.intra_probability)
        check_in_range("activity_exponent", self.activity_exponent, 0.0, 10.0)


class community_pair_sampler:
    """Samples (sender, receiver) pairs with community locality.

    Accounts are assigned to communities round-robin over a random
    permutation, so community sizes are balanced but membership is
    random. A fraction ``intra_probability`` of transactions pick both
    endpoints inside one community (chosen proportionally to community
    weight); the rest are global pairs.
    """

    def __init__(
        self,
        n_accounts: int,
        config: CommunityConfig,
        rng: np.random.Generator,
    ) -> None:
        if n_accounts < 2:
            raise DataError("need at least 2 accounts")
        self.n_accounts = n_accounts
        self.config = config
        n_comm = min(config.n_communities, n_accounts // 2)
        n_comm = max(1, n_comm)
        permutation = rng.permutation(n_accounts)
        self.community_of = np.empty(n_accounts, dtype=np.int64)
        self.community_of[permutation] = np.arange(n_accounts) % n_comm
        self.n_communities = n_comm
        self.members = [
            np.flatnonzero(self.community_of == c) for c in range(n_comm)
        ]
        self._member_weights = []
        for members in self.members:
            weights = zipf_weights(len(members), config.activity_exponent)
            self._member_weights.append(weights)
        self._global_weights = zipf_weights(n_accounts, config.activity_exponent)
        # Global weights index accounts by activity rank; permute so rank
        # is independent of id order.
        self._global_weights = self._global_weights[
            np.argsort(rng.permutation(n_accounts), kind="stable")
        ]
        self._global_weights /= self._global_weights.sum()

    def sample(
        self, rng: np.random.Generator, n_pairs: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``n_pairs`` pairs honouring the locality configuration."""
        if n_pairs == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        intra_mask = rng.random(n_pairs) < self.config.intra_probability
        n_intra = int(intra_mask.sum())
        n_global = n_pairs - n_intra

        senders = np.empty(n_pairs, dtype=np.int64)
        receivers = np.empty(n_pairs, dtype=np.int64)

        if n_global:
            g_senders, g_receivers = sample_pairs(rng, n_global, self._global_weights)
            senders[~intra_mask] = g_senders
            receivers[~intra_mask] = g_receivers

        if n_intra:
            community_sizes = np.array([len(m) for m in self.members], dtype=np.float64)
            community_probs = community_sizes / community_sizes.sum()
            chosen = rng.choice(self.n_communities, size=n_intra, p=community_probs)
            i_senders = np.empty(n_intra, dtype=np.int64)
            i_receivers = np.empty(n_intra, dtype=np.int64)
            for community in np.unique(chosen):
                members = self.members[community]
                weights = self._member_weights[community]
                positions = np.flatnonzero(chosen == community)
                if len(members) < 2:
                    # Degenerate community: fall back to global pairs.
                    s, r = sample_pairs(rng, len(positions), self._global_weights)
                else:
                    s_local, r_local = sample_pairs(rng, len(positions), weights)
                    s, r = members[s_local], members[r_local]
                i_senders[positions] = s
                i_receivers[positions] = r
            senders[intra_mask] = i_senders
            receivers[intra_mask] = i_receivers

        return senders, receivers
