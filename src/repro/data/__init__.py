"""Datasets: trace containers, synthetic Ethereum-like generation, ETL."""

from repro.data.trace import Trace, EpochView
from repro.data.generators import (
    zipf_weights,
    sample_pairs,
    CommunityConfig,
    community_pair_sampler,
)
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.etl import write_transactions_csv, read_transactions_csv, ETL_COLUMNS

__all__ = [
    "Trace",
    "EpochView",
    "zipf_weights",
    "sample_pairs",
    "CommunityConfig",
    "community_pair_sampler",
    "EthereumTraceConfig",
    "generate_ethereum_like_trace",
    "write_transactions_csv",
    "read_transactions_csv",
    "ETL_COLUMNS",
]
