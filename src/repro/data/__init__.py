"""Datasets: trace containers, sources, synthetic generation, ETL."""

from repro.data.trace import Trace, EpochView
from repro.data.generators import (
    zipf_weights,
    sample_pairs,
    sample_transfer_values,
    CommunityConfig,
    ValueModelConfig,
    community_pair_sampler,
)
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.etl import (
    write_transactions_csv,
    read_transactions_csv,
    ETL_COLUMNS,
    FEE_COLUMN,
)
from repro.data.arrow import (
    DECODERS,
    PYARROW_AVAILABLE,
    resolve_decoder,
)
from repro.data.source import (
    ChunkIteratorSource,
    CsvTraceSource,
    EpochStream,
    FollowCsvTraceSource,
    GeneratorTraceSource,
    MaterialisedTraceSource,
    TraceSource,
    stream_epochs,
)

__all__ = [
    "Trace",
    "EpochView",
    "zipf_weights",
    "sample_pairs",
    "sample_transfer_values",
    "CommunityConfig",
    "ValueModelConfig",
    "community_pair_sampler",
    "EthereumTraceConfig",
    "generate_ethereum_like_trace",
    "write_transactions_csv",
    "read_transactions_csv",
    "ETL_COLUMNS",
    "FEE_COLUMN",
    "TraceSource",
    "MaterialisedTraceSource",
    "GeneratorTraceSource",
    "ChunkIteratorSource",
    "CsvTraceSource",
    "FollowCsvTraceSource",
    "DECODERS",
    "EpochStream",
    "PYARROW_AVAILABLE",
    "resolve_decoder",
    "stream_epochs",
]
