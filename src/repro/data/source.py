"""Trace sources: chunked, bounded-memory trace ingest.

A :class:`TraceSource` is where transactions come *from* — an ETL CSV
on disk, a synthetic generator, or an already-materialised trace. It
yields block-ordered :class:`TransactionBatch` chunks of bounded size,
with ``values``/``fees`` columns carried through, so the data layer can
feed the engine without ever holding more than a chunk of decoded
Python state at a time:

* :meth:`TraceSource.materialise` assembles the chunks into a
  :class:`Trace` in one concatenation pass — the compatibility bridge
  that keeps every existing ``Trace`` caller working;
* :class:`EpochStream` slices a source into the *same*
  :class:`EpochView` sequence ``Trace.epochs`` produces, buffering only
  the current epoch plus one chunk (equivalence under randomized chunk
  sizes is property-tested in ``tests/test_data_source.py``).

Sources track ``peak_buffer_rows`` — the high-water mark of buffered
decoded rows — which is what the streamed-ingest memory bound asserts:
peak buffering is proportional to ``chunk_rows``, never to the trace.
"""

from __future__ import annotations

import csv
import io
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.data.sizing import SizingIndex

import numpy as np

from repro.chain.account import AccountRegistry
from repro.chain.transaction import TransactionBatch
from repro.data.arrow import (
    DECODER_ARROW,
    DECODERS,
    ArrowDecodeAnomaly,
    arrow_chunks,
    resolve_decoder,
)
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.etl import _RowDecoder
from repro.data.trace import EpochView, Trace
from repro.errors import ConfigurationError, DataError, MalformedRowError

#: Default rows per decoded chunk (~1.5 MB of column data at 5 columns).
DEFAULT_CHUNK_ROWS = 65_536


class TraceSource:
    """Base contract: block-ordered chunked access to a transaction trace.

    Subclasses implement :meth:`chunks` (yield block-ordered
    :class:`TransactionBatch` chunks) and :meth:`resolved_n_accounts`
    (the account-universe size, which a streaming decoder only knows
    once its registry has seen every row — hence *after* the chunks
    were consumed).
    """

    #: Display name (trace-spec label / error messages).
    name: str = "source"
    #: High-water mark of decoded rows buffered at once (set by chunks()).
    peak_buffer_rows: int = 0
    #: True for open-ended sources (e.g. a tailed file) whose chunk
    #: stream has no predetermined end — consumers must not run a
    #: sizing pass over them.
    unbounded: bool = False

    def chunks(self) -> Iterator[TransactionBatch]:
        raise NotImplementedError

    def resolved_n_accounts(self) -> Optional[int]:
        """Universe size; valid after :meth:`chunks` was consumed."""
        return None

    def size_hint(self) -> Optional[Tuple[int, int]]:
        """``(total_rows, n_accounts)`` when known *up front*, else None.

        The count-prefixed fast path: sources that already know their
        length (a materialised trace, a cached generator) return it here
        so the streaming engine can skip its sizing pass; a CSV decoder
        only learns both after a full read and returns None.
        """
        return None

    def sizing_index(self) -> Optional["SizingIndex"]:
        """Persisted sizing sidecar, when one exists and matches.

        The slow-path twin of :meth:`size_hint`: file-backed sources
        whose extract ships a sizing index return it here so the
        engine can skip the sizing pass *and* recover the canonical
        funding partials without re-streaming. Raises
        :class:`~repro.errors.SizingIndexError` on a stale sidecar;
        returns None when the source has no persisted index.
        """
        return None

    def materialise(self) -> Trace:
        """Assemble every chunk into a materialised :class:`Trace`."""
        batches = list(self.chunks())
        return Trace(
            TransactionBatch.concat_many(batches),
            n_accounts=self.resolved_n_accounts(),
        )


class MaterialisedTraceSource(TraceSource):
    """A source view over an already-materialised :class:`Trace`.

    Chunking an in-memory trace costs nothing (chunks are numpy views),
    which makes this the equivalence reference for every streaming
    consumer: anything that accepts a source accepts a trace.
    """

    def __init__(
        self, trace: Trace, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> None:
        if chunk_rows < 1:
            raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.trace = trace
        self.chunk_rows = int(chunk_rows)
        self.name = "materialised"

    def chunks(self) -> Iterator[TransactionBatch]:
        batch = self.trace.batch
        self.peak_buffer_rows = min(len(batch), self.chunk_rows)
        for start in range(0, len(batch), self.chunk_rows):
            yield batch[start : start + self.chunk_rows]

    def resolved_n_accounts(self) -> Optional[int]:
        return self.trace.n_accounts

    def size_hint(self) -> Optional[Tuple[int, int]]:
        return len(self.trace), self.trace.n_accounts

    def materialise(self) -> Trace:
        return self.trace


class GeneratorTraceSource(TraceSource):
    """Chunked view over the synthetic Ethereum-like generator.

    Generation itself is array-native and in-memory (the memory ceiling
    this layer lifts is on *decode*, not synthesis); the generated
    trace is cached across iterations so a spec generates once per
    process, exactly like the runner's trace cache.
    """

    def __init__(
        self,
        config: EthereumTraceConfig,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if chunk_rows < 1:
            raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.config = config
        self.chunk_rows = int(chunk_rows)
        self.name = "generator"
        self._trace: Optional[Trace] = None

    def _generated(self) -> Trace:
        if self._trace is None:
            self._trace = generate_ethereum_like_trace(self.config)
        return self._trace

    def chunks(self) -> Iterator[TransactionBatch]:
        inner = MaterialisedTraceSource(self._generated(), self.chunk_rows)
        for chunk in inner.chunks():
            # Mirror the mark per chunk, not after exhaustion, so an
            # early-terminating consumer (EpochStream with max_epochs)
            # still reads an accurate high-water mark.
            self.peak_buffer_rows = inner.peak_buffer_rows
            yield chunk

    def resolved_n_accounts(self) -> Optional[int]:
        return self._generated().n_accounts

    def size_hint(self) -> Optional[Tuple[int, int]]:
        trace = self._generated()
        return len(trace), trace.n_accounts

    def materialise(self) -> Trace:
        return self._generated()


class CsvTraceSource(TraceSource):
    """Chunked, bounded-memory decode of an ethereum-etl CSV.

    Rows decode straight into numpy chunks of ``chunk_rows``; at no
    point does the decoder hold more than one chunk of Python-object
    row state, which is what keeps 1M-row (and beyond) ingest flat in
    memory — ``peak_buffer_rows`` records the high-water mark and is
    asserted ``<= chunk_rows`` in tests.

    Streaming requires the file to be block-ordered (real ETL extracts
    are; our writer emits block order). An out-of-order row raises
    :class:`MalformedRowError` naming the line — for arbitrary-order
    files use the eager :func:`repro.data.etl.read_transactions_csv`,
    which sorts after decoding. Contract creations and self-transfers
    are skipped and malformed cells raise, exactly as in the eager
    reader, so both paths see the same rows and assign the same dense
    account ids.

    Like the eager reader, an **all-zero value column** decodes as no
    value column at all (metric-only and pre-value files carry literal
    zeros; materialising them would replay zero-amount transfers
    instead of the executor's default). Streaming can't look ahead, so
    the column activates lazily: chunks stay three/four-column until
    the first nonzero value appears, after which every chunk carries
    the column — :meth:`TransactionBatch.concat_many` re-materialises
    the skipped leading zeros, so the assembled trace is identical to
    the eager read.

    ``decoder`` selects the row-decode implementation: ``"python"`` is
    the reference :class:`_RowDecoder` loop, ``"arrow"`` the columnar
    pyarrow fast path (:mod:`repro.data.arrow`), and ``"auto"`` picks
    arrow exactly when pyarrow is installed. Both produce bit-identical
    chunk streams, ids, and typed errors; the arrow path falls back to
    (or replays through) the python path whenever it meets input it
    cannot decode verbatim, so consumers never observe a difference.
    """

    def __init__(
        self,
        path: Union[str, Path],
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        registry: Optional[AccountRegistry] = None,
        decoder: str = "auto",
    ) -> None:
        if chunk_rows < 1:
            raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if decoder not in DECODERS:
            raise DataError(
                f"decoder must be one of {DECODERS}, got {decoder!r}"
            )
        self.path = Path(path)
        self.chunk_rows = int(chunk_rows)
        self.registry = registry if registry is not None else AccountRegistry()
        self.decoder = decoder
        self.name = self.path.name
        self.peak_buffer_rows = 0

    def chunks(self) -> Iterator[TransactionBatch]:
        if resolve_decoder(self.decoder) != DECODER_ARROW:
            yield from self._python_chunks()
            return
        yielded = False
        stream = arrow_chunks(self)
        while True:
            try:
                chunk = next(stream)
            except StopIteration:
                return
            except ArrowDecodeAnomaly as anomaly:
                if not yielded:
                    # Nothing emitted yet: the reference decoder takes
                    # over seamlessly — registration is idempotent and
                    # the arrow path registered a correct prefix in the
                    # same first-seen order, so ids are unaffected.
                    yield from self._python_chunks()
                    return
                self._raise_reference_error(anomaly)
            else:
                yielded = True
                yield chunk

    def _raise_reference_error(self, anomaly: ArrowDecodeAnomaly) -> None:
        """Replay the file through the python decoder to surface its error.

        Mid-stream arrow anomalies cannot name a line number; the
        reference decode (against a throwaway registry) raises the
        contract's typed error instead. A replay that *succeeds* means
        the fast path rejected input the reference accepts — reported
        explicitly rather than silently re-emitting a stream the
        consumer already partially saw.
        """
        replay = CsvTraceSource(
            self.path,
            chunk_rows=self.chunk_rows,
            registry=AccountRegistry(),
            decoder="python",
        )
        for _ in replay.chunks():
            pass
        raise DataError(
            f"{self.path}: arrow decoder aborted mid-stream ({anomaly}) but "
            "the python decoder accepts this file; re-run with "
            "decoder='python'"
        ) from anomaly

    def _python_chunks(self) -> Iterator[TransactionBatch]:
        senders: List[int] = []
        receivers: List[int] = []
        blocks: List[int] = []
        values: List[float] = []
        fees: List[float] = []
        # Lazy value-column activation: False until a nonzero value is
        # decoded, so an all-zero column never materialises (see class
        # docstring).
        values_active = False

        def flush(decoder: _RowDecoder) -> TransactionBatch:
            batch = TransactionBatch(
                np.asarray(senders, dtype=np.int64),
                np.asarray(receivers, dtype=np.int64),
                np.asarray(blocks, dtype=np.int64),
                np.asarray(values, dtype=np.float64)
                if values_active
                else None,
                np.asarray(fees, dtype=np.float64) if decoder.has_fees else None,
            )
            senders.clear()
            receivers.clear()
            blocks.clear()
            values.clear()
            fees.clear()
            return batch

        last_block = -1
        with self.path.open(newline="") as handle:
            reader = csv.reader(handle)
            fieldnames = next(reader, None)
            decoder = _RowDecoder(self.path, fieldnames, self.registry)
            has_values = decoder.has_values
            has_fees = decoder.has_fees
            for line, row in enumerate(reader, start=2):
                decoded = decoder.decode(line, row)
                if decoded is None:
                    continue
                sender, receiver, block, value, fee = decoded
                if block < last_block:
                    raise MalformedRowError(
                        self.path,
                        line,
                        f"block {block} out of order after {last_block} "
                        "(streamed decode requires block-ordered rows; "
                        "use read_transactions_csv for unsorted files)",
                    )
                last_block = block
                senders.append(sender)
                receivers.append(receiver)
                blocks.append(block)
                if has_values:
                    values.append(value)
                    if value and not values_active:
                        values_active = True
                if has_fees:
                    fees.append(fee)
                if len(senders) >= self.chunk_rows:
                    self.peak_buffer_rows = max(
                        self.peak_buffer_rows, len(senders)
                    )
                    yield flush(decoder)
            self.peak_buffer_rows = max(self.peak_buffer_rows, len(senders))
            if senders:
                yield flush(decoder)

    def resolved_n_accounts(self) -> Optional[int]:
        return len(self.registry) or None

    def sizing_index(self) -> Optional["SizingIndex"]:
        from repro.data.sizing import load_sizing_index

        return load_sizing_index(self.path)


class ChunkIteratorSource(TraceSource):
    """One-shot source over an already-started chunk iterator.

    The streaming engine's two-pass protocol consumes a source's
    history prefix chunk by chunk and hands the *remainder* of the live
    iterator to :class:`EpochStream` through this adapter;
    ``n_accounts`` carries the full-universe size resolved during the
    sizing pass (the iterator itself can no longer answer that for the
    rows already consumed).
    """

    def __init__(
        self,
        chunks_iter: Iterator[TransactionBatch],
        n_accounts: Optional[int] = None,
        name: str = "chunk-iterator",
    ) -> None:
        self._iter = chunks_iter
        self._n_accounts = None if n_accounts is None else int(n_accounts)
        self._consumed = False
        self.name = name

    def chunks(self) -> Iterator[TransactionBatch]:
        if self._consumed:
            raise DataError(
                f"{self.name}: a chunk-iterator source is one-shot and "
                "was already consumed"
            )
        self._consumed = True
        return self._iter

    def resolved_n_accounts(self) -> Optional[int]:
        return self._n_accounts


class FollowCsvTraceSource(TraceSource):
    """Tail a growing ethereum-etl CSV: ``tail -f`` as a trace source.

    Rows decode exactly as in :class:`CsvTraceSource` (same
    :class:`_RowDecoder`, same skip/typed-error semantics, same lazy
    value-column activation, same block-order enforcement) but
    end-of-file is not end-of-trace: on EOF the source flushes whatever
    rows are buffered as a chunk, sleeps ``poll_interval`` seconds, and
    re-reads — epochs appear downstream roughly one poll after the
    writer appends them. A partially-written last line (no trailing
    newline yet) is left in place until a later poll completes it. The
    stream ends when no new complete row arrives for ``idle_timeout``
    seconds; an unterminated final line is decoded at that point
    (writers should terminate the file with a newline).

    ``unbounded = True``: no consumer may run a sizing pass over this
    source, so the streaming engine requires ``history_epochs`` (the
    absolute history split) and metrics-only execution for it.

    ``decoder`` exists for signature parity with
    :class:`CsvTraceSource` but only the python reference decoder can
    follow a file: the arrow path decodes whole record batches from a
    finished file, while tailing is line-oriented — each poll must stop
    at the last complete row and resume mid-file. Requesting
    ``"arrow"`` is therefore a configuration error, not a silent
    fallback; ``"auto"`` resolves to python.
    """

    unbounded = True

    def __init__(
        self,
        path: Union[str, Path],
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        registry: Optional[AccountRegistry] = None,
        poll_interval: float = 0.2,
        idle_timeout: float = 10.0,
        decoder: str = "auto",
    ) -> None:
        if chunk_rows < 1:
            raise DataError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if poll_interval <= 0:
            raise DataError(
                f"poll_interval must be > 0, got {poll_interval}"
            )
        if idle_timeout <= 0:
            raise DataError(f"idle_timeout must be > 0, got {idle_timeout}")
        if decoder not in DECODERS:
            raise DataError(
                f"decoder must be one of {DECODERS}, got {decoder!r}"
            )
        if decoder == DECODER_ARROW:
            raise ConfigurationError(
                "a followed CSV decodes with the python reference "
                "decoder only: tailing reads line by line and must stop "
                "at the last complete row, which the arrow record-batch "
                "reader cannot do; drop decoder='arrow' (or pass "
                "'python'/'auto')"
            )
        self.path = Path(path)
        self.chunk_rows = int(chunk_rows)
        self.registry = registry if registry is not None else AccountRegistry()
        self.poll_interval = float(poll_interval)
        self.idle_timeout = float(idle_timeout)
        self.decoder = decoder
        self.name = f"follow:{self.path.name}"
        self.peak_buffer_rows = 0

    def _follow_lines(self, handle: io.BufferedReader) -> Iterator[Optional[str]]:
        """Yield complete lines as they appear; ``None`` marks a quiet poll.

        A ``None`` is the flush hint: the file had no new complete line,
        so the consumer should surface whatever it buffered before this
        generator sleeps. Returns once the file has been quiet for
        ``idle_timeout`` seconds, yielding an unterminated final line
        (if any) just before stopping.
        """
        waited = 0.0
        while True:
            pos = handle.tell()
            raw = handle.readline()
            if raw.endswith(b"\n"):
                waited = 0.0
                yield raw.decode("utf-8")
                continue
            # EOF, or a line the writer has not finished yet: rewind so
            # the next poll re-reads it whole.
            handle.seek(pos)
            if waited >= self.idle_timeout:
                if raw:
                    handle.seek(pos + len(raw))
                    yield raw.decode("utf-8")
                return
            yield None
            time.sleep(self.poll_interval)
            waited += self.poll_interval

    def chunks(self) -> Iterator[TransactionBatch]:
        senders: List[int] = []
        receivers: List[int] = []
        blocks: List[int] = []
        values: List[float] = []
        fees: List[float] = []
        values_active = False

        def flush(decoder: _RowDecoder) -> TransactionBatch:
            batch = TransactionBatch(
                np.asarray(senders, dtype=np.int64),
                np.asarray(receivers, dtype=np.int64),
                np.asarray(blocks, dtype=np.int64),
                np.asarray(values, dtype=np.float64)
                if values_active
                else None,
                np.asarray(fees, dtype=np.float64) if decoder.has_fees else None,
            )
            senders.clear()
            receivers.clear()
            blocks.clear()
            values.clear()
            fees.clear()
            return batch

        with self.path.open("rb") as handle:
            lines = self._follow_lines(handle)
            fieldnames: Optional[List[str]] = None
            for item in lines:
                if item is None:
                    continue
                fieldnames = next(csv.reader([item]), None)
                break
            decoder = _RowDecoder(self.path, fieldnames, self.registry)
            has_values = decoder.has_values
            has_fees = decoder.has_fees
            last_block = -1
            line_no = 2
            for item in lines:
                if item is None:
                    if senders:
                        self.peak_buffer_rows = max(
                            self.peak_buffer_rows, len(senders)
                        )
                        yield flush(decoder)
                    continue
                row = next(csv.reader([item]), [])
                decoded = decoder.decode(line_no, row)
                line_no += 1
                if decoded is None:
                    continue
                sender, receiver, block, value, fee = decoded
                if block < last_block:
                    raise MalformedRowError(
                        self.path,
                        line_no - 1,
                        f"block {block} out of order after {last_block} "
                        "(a followed file must append in block order)",
                    )
                last_block = block
                senders.append(sender)
                receivers.append(receiver)
                blocks.append(block)
                if has_values:
                    values.append(value)
                    if value and not values_active:
                        values_active = True
                if has_fees:
                    fees.append(fee)
                if len(senders) >= self.chunk_rows:
                    self.peak_buffer_rows = max(
                        self.peak_buffer_rows, len(senders)
                    )
                    yield flush(decoder)
            self.peak_buffer_rows = max(self.peak_buffer_rows, len(senders))
            if senders:
                yield flush(decoder)

    def resolved_n_accounts(self) -> Optional[int]:
        return len(self.registry) or None


class EpochStream:
    """Slice a :class:`TraceSource` into ``tau``-block epochs, streaming.

    Yields the exact :class:`EpochView` sequence
    ``Trace.epochs(tau, max_epochs)`` yields for the materialised trace
    — same indices, block spans, and batch contents, including the
    empty views for block-range gaps — while holding at most the
    current epoch plus one source chunk (``peak_buffer_rows`` records
    the high-water mark; the equivalence and the bound are pinned in
    ``tests/test_data_source.py``).
    """

    def __init__(
        self,
        source: TraceSource,
        tau: int,
        max_epochs: Optional[int] = None,
    ) -> None:
        if tau < 1:
            raise DataError(f"tau must be >= 1, got {tau}")
        if max_epochs is not None and max_epochs < 1:
            raise DataError(f"max_epochs must be >= 1, got {max_epochs}")
        self.source = source
        self.tau = int(tau)
        self.max_epochs = max_epochs
        self.peak_buffer_rows = 0

    def __iter__(self) -> Iterator[EpochView]:
        tau = self.tau
        pending: List[TransactionBatch] = []
        pending_rows = 0
        epoch_start: Optional[int] = None
        index = 0

        def emit_ready(
            final: bool,
        ) -> Iterator[EpochView]:
            """Yield every epoch the buffer fully covers (all, at EOF)."""
            nonlocal pending, pending_rows, epoch_start, index
            if epoch_start is None:
                return
            buffered = TransactionBatch.concat_many(pending)
            last_seen = int(buffered.blocks[-1]) if len(buffered) else epoch_start
            lo = 0
            while (
                epoch_start + tau <= last_seen if not final else epoch_start <= last_seen
            ):
                if self.max_epochs is not None and index >= self.max_epochs:
                    pending = []
                    pending_rows = 0
                    return
                epoch_end = epoch_start + tau
                hi = int(
                    np.searchsorted(buffered.blocks, epoch_end, side="left")
                )
                yield EpochView(
                    index=index,
                    first_block=epoch_start,
                    last_block=epoch_end - 1,
                    batch=buffered[lo:hi],
                )
                lo = hi
                epoch_start = epoch_end
                index += 1
            remainder = buffered[lo:]
            pending = [remainder] if len(remainder) else []
            pending_rows = len(remainder)

        for chunk in self.source.chunks():
            if len(chunk) == 0:
                continue
            if epoch_start is None:
                epoch_start = int(chunk.blocks[0])
            pending.append(chunk)
            pending_rows += len(chunk)
            self.peak_buffer_rows = max(self.peak_buffer_rows, pending_rows)
            # Only re-assemble the buffer when this chunk completed an
            # epoch — a huge epoch spanning many chunks accumulates
            # views instead of re-concatenating per chunk.
            if int(chunk.blocks[-1]) >= epoch_start + tau:
                yield from emit_ready(final=False)
            if self.max_epochs is not None and index >= self.max_epochs:
                # Stop pulling chunks (and decoding rows) the moment
                # the epoch budget is spent — Trace.epochs stops here
                # too, and a bounded-ingest source must not pay for
                # rows nobody will see.
                return
        yield from emit_ready(final=True)


def stream_epochs(
    source: TraceSource, tau: int, max_epochs: Optional[int] = None
) -> Iterator[EpochView]:
    """Functional wrapper over :class:`EpochStream`."""
    return iter(EpochStream(source, tau, max_epochs))
