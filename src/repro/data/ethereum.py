"""Synthetic Ethereum-like transaction traces.

This is the documented substitution (DESIGN.md §4) for the paper's real
dataset (Ethereum blocks 10,000,000-10,600,000; 91 M transactions, 12 M
accounts, collected via Ethereum ETL). The generator reproduces the four
statistical properties the evaluation depends on:

1. **Heavy-tailed activity** — a small number of hub accounts (exchanges,
   popular contracts) participate in a large share of transactions.
2. **Repeated counterparties** — ordinary accounts transact repeatedly
   with a small personal set of peers; this is the signal Pilot's
   interaction distribution ``Psi`` exploits.
3. **Community structure** — activity clusters into communities, the
   signal graph partitioners (Metis, TxAllo) exploit.
4. **New-account arrivals** — a steady share of transactions involve
   accounts never seen before, where only client-driven allocation can
   act (Section VI, "Allocation of new accounts").

Transactions are spread over a configurable block range so the ``tau``
block epoching of the evaluation protocol applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Optional

from repro.chain.transaction import TransactionBatch
from repro.data.generators import (
    CommunityConfig,
    ValueModelConfig,
    community_pair_sampler,
    sample_transfer_values,
    zipf_weights,
)
from repro.data.trace import Trace
from repro.errors import DataError
from repro.util.rng import RngFactory
from repro.util.validation import check_in_range, check_probability


@dataclass(frozen=True)
class EthereumTraceConfig:
    """Configuration of the synthetic Ethereum-like trace.

    The defaults produce a laptop-scale trace whose *ratios* (hub share,
    locality, arrival rate) match the qualitative structure of the
    paper's dataset; scale up ``n_accounts``/``n_transactions`` for
    larger experiments.
    """

    n_accounts: int = 20_000
    n_transactions: int = 200_000
    n_blocks: int = 6_000
    hub_fraction: float = 0.002
    hub_transaction_share: float = 0.25
    community: CommunityConfig = CommunityConfig()
    new_account_fraction: float = 0.10
    seed: int = 0
    #: When set, transfers carry ``values`` (and, with a fee fraction,
    #: ``fees``) sampled from this model. ``None`` (the default) keeps
    #: the classic three-column metric trace, so existing goldens are
    #: untouched. Values draw from their own RNG stream, so a valued
    #: trace has the bit-identical graph structure of its valueless twin.
    value_model: Optional[ValueModelConfig] = None

    def __post_init__(self) -> None:
        if self.n_accounts < 10:
            raise DataError(f"n_accounts must be >= 10, got {self.n_accounts}")
        if self.n_transactions < 1:
            raise DataError(
                f"n_transactions must be >= 1, got {self.n_transactions}"
            )
        if self.n_blocks < 1:
            raise DataError(f"n_blocks must be >= 1, got {self.n_blocks}")
        check_probability("hub_fraction", self.hub_fraction)
        check_probability("hub_transaction_share", self.hub_transaction_share)
        check_probability("new_account_fraction", self.new_account_fraction)


def generate_ethereum_like_trace(config: EthereumTraceConfig) -> Trace:
    """Generate a :class:`Trace` according to ``config``.

    Account ids are ordered by first appearance *probability*: the
    "established" accounts occupy low ids and the late-arriving accounts
    (``new_account_fraction`` of the universe) occupy the highest ids and
    only start transacting in the final portion of the block range. That
    mirrors how graph baselines meet unseen accounts in the held-out 10%
    of the real trace.
    """
    rngs = RngFactory(config.seed)
    rng = rngs.generator("ethereum-trace")

    n_total = config.n_accounts
    n_new = int(round(n_total * config.new_account_fraction))
    n_established = max(2, n_total - n_new)
    n_new = n_total - n_established

    n_hubs = max(1, int(round(n_established * config.hub_fraction)))
    # Hub ids are sampled among established accounts.
    hub_ids = rng.choice(n_established, size=n_hubs, replace=False)

    sampler = community_pair_sampler(n_established, config.community, rng)

    n_tx = config.n_transactions
    senders = np.empty(n_tx, dtype=np.int64)
    receivers = np.empty(n_tx, dtype=np.int64)

    # 1) Base traffic from the community sampler.
    base_senders, base_receivers = sampler.sample(rng, n_tx)
    senders[:] = base_senders
    receivers[:] = base_receivers

    # 2) Hub traffic: redirect a share of transactions to hit a hub on one
    #    side (deposits/withdrawals to exchanges, contract calls).
    hub_mask = rng.random(n_tx) < config.hub_transaction_share
    n_hub_tx = int(hub_mask.sum())
    if n_hub_tx:
        hub_weights = zipf_weights(n_hubs, 1.0)
        chosen_hubs = rng.choice(hub_ids, size=n_hub_tx, p=hub_weights)
        to_hub = rng.random(n_hub_tx) < 0.5
        hub_positions = np.flatnonzero(hub_mask)
        receivers[hub_positions[to_hub]] = chosen_hubs[to_hub]
        senders[hub_positions[~to_hub]] = chosen_hubs[~to_hub]
        clash = senders[hub_positions] == receivers[hub_positions]
        receivers[hub_positions[clash]] = (
            receivers[hub_positions[clash]] + 1
        ) % n_established

    # 3) Blocks: uniform arrival over the block range (Ethereum blocks
    #    carry a roughly constant transaction count).
    blocks = np.sort(rng.integers(0, config.n_blocks, size=n_tx)).astype(np.int64)

    # 4) New accounts: in the tail of the trace, substitute one endpoint of
    #    some transactions with a brand-new account id.
    if n_new:
        tail_start = int(n_tx * (1.0 - 1.5 * config.new_account_fraction))
        tail_start = min(max(0, tail_start), n_tx - 1)
        tail_positions = np.arange(tail_start, n_tx)
        n_sub = min(len(tail_positions), max(n_new, len(tail_positions) // 4))
        sub_positions = rng.choice(tail_positions, size=n_sub, replace=False)
        new_ids = n_established + rng.integers(0, n_new, size=n_sub)
        replace_sender = rng.random(n_sub) < 0.5
        senders[sub_positions[replace_sender]] = new_ids[replace_sender]
        receivers[sub_positions[~replace_sender]] = new_ids[~replace_sender]
        clash = senders[sub_positions] == receivers[sub_positions]
        receivers[sub_positions[clash]] = (
            receivers[sub_positions[clash]] + 1
        ) % n_established

    # 5) Values/fees ride a dedicated RNG stream so enabling a value
    #    model never perturbs the graph structure sampled above.
    values = fees = None
    if config.value_model is not None:
        values, fees = sample_transfer_values(
            rngs.generator("ethereum-values"),
            blocks,
            config.value_model,
            n_blocks=config.n_blocks,
        )

    batch = TransactionBatch(senders, receivers, blocks, values, fees)
    return Trace(batch, n_accounts=n_total)
