"""Trace containers and epoch slicing.

A :class:`Trace` is a block-ordered :class:`TransactionBatch` plus the
account universe size. It provides the two operations the evaluation
protocol needs (Section V-A):

* ``split(0.9)`` — first 90% for initial allocation, last 10% held out;
* ``epochs(tau)`` — slice the evaluation segment into ``tau``-block
  epochs, yielding :class:`EpochView` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.chain.transaction import TransactionBatch
from repro.errors import DataError
from repro.util.validation import check_in_range


@dataclass(frozen=True)
class EpochView:
    """One epoch's slice of a trace."""

    index: int
    first_block: int
    last_block: int
    batch: TransactionBatch

    def __len__(self) -> int:
        return len(self.batch)


class Trace:
    """An ordered transaction trace over a dense account universe."""

    def __init__(self, batch: TransactionBatch, n_accounts: Optional[int] = None) -> None:
        if len(batch) > 1 and np.any(np.diff(batch.blocks) < 0):
            raise DataError("trace blocks must be non-decreasing")
        max_id = batch.max_account_id()
        if n_accounts is None:
            n_accounts = max_id + 1
        if n_accounts <= max_id:
            raise DataError(
                f"n_accounts={n_accounts} but trace references account {max_id}"
            )
        self.batch = batch
        self.n_accounts = int(n_accounts)

    def __len__(self) -> int:
        return len(self.batch)

    @classmethod
    def from_source(
        cls,
        source: "TraceSource",  # noqa: F821
        decoder: Optional[str] = None,
    ) -> "Trace":
        """Materialise a :class:`~repro.data.source.TraceSource`.

        A trace is a thin materialised view over a source: this is the
        bridge that lets every existing ``Trace`` consumer accept
        streamed input (chunked CSV decode, generator output) without
        change. Streaming consumers use
        :class:`~repro.data.source.EpochStream` instead.

        ``decoder`` overrides the source's decode implementation
        (``"python"``/``"arrow"``/``"auto"``) for sources that carry a
        decoder knob (:class:`~repro.data.source.CsvTraceSource`);
        passing it for any other source raises :class:`DataError`.
        """
        if decoder is not None:
            if not hasattr(source, "decoder"):
                raise DataError(
                    f"source {source.name!r} has no decoder knob "
                    "(only CSV sources decode rows)"
                )
            source.decoder = decoder
        return source.materialise()

    @property
    def first_block(self) -> int:
        """Block number of the first transaction (0 when empty)."""
        return int(self.batch.blocks[0]) if len(self.batch) else 0

    @property
    def last_block(self) -> int:
        """Block number of the last transaction (-1 when empty)."""
        return int(self.batch.blocks[-1]) if len(self.batch) else -1

    @property
    def block_span(self) -> int:
        """Number of block heights covered, inclusive."""
        if len(self.batch) == 0:
            return 0
        return self.last_block - self.first_block + 1

    def split(self, fraction: float) -> Tuple["Trace", "Trace"]:
        """Split into (head, tail) by transaction count fraction.

        The split point is adjusted to the next block boundary so no
        block's transactions straddle the two segments.
        """
        check_in_range("fraction", fraction, 0.0, 1.0)
        n = len(self.batch)
        if n == 0:
            return self, Trace(TransactionBatch.empty(), self.n_accounts)
        cut = int(round(n * fraction))
        cut = max(0, min(n, cut))
        # Move the cut forward to a block boundary.
        if 0 < cut < n:
            boundary_block = int(self.batch.blocks[cut - 1])
            while cut < n and int(self.batch.blocks[cut]) == boundary_block:
                cut += 1
        head = Trace(self.batch[:cut], self.n_accounts)
        tail = Trace(self.batch[cut:], self.n_accounts)
        return head, tail

    def split_epochs(self, tau: int, n_epochs: int) -> Tuple["Trace", "Trace"]:
        """Split into (head, tail) at an absolute epoch count.

        The head is the block-sorted prefix covering the first
        ``n_epochs`` ``tau``-block epochs — every row with
        ``block < first_block + n_epochs * tau`` — and the tail is the
        rest. Unlike :meth:`split` this needs no total row count, which
        is what lets the streaming engine place the same history split
        without materialising the trace; ``n_epochs=0`` yields an empty
        head.
        """
        if tau < 1:
            raise DataError(f"tau must be >= 1, got {tau}")
        if n_epochs < 0:
            raise DataError(f"n_epochs must be >= 0, got {n_epochs}")
        n = len(self.batch)
        if n == 0:
            return self, Trace(TransactionBatch.empty(), self.n_accounts)
        boundary = int(self.batch.blocks[0]) + n_epochs * tau
        cut = int(np.searchsorted(self.batch.blocks, boundary, side="left"))
        head = Trace(self.batch[:cut], self.n_accounts)
        tail = Trace(self.batch[cut:], self.n_accounts)
        return head, tail

    def epochs(self, tau: int, max_epochs: Optional[int] = None) -> Iterator[EpochView]:
        """Yield consecutive ``tau``-block epochs of this trace."""
        if tau < 1:
            raise DataError(f"tau must be >= 1, got {tau}")
        if len(self.batch) == 0:
            return
        blocks = self.batch.blocks
        start_block = int(blocks[0])
        end_block = int(blocks[-1])
        index = 0
        lo = 0
        epoch_start = start_block
        while epoch_start <= end_block:
            if max_epochs is not None and index >= max_epochs:
                return
            epoch_end = epoch_start + tau  # exclusive
            hi = int(np.searchsorted(blocks, epoch_end, side="left"))
            yield EpochView(
                index=index,
                first_block=epoch_start,
                last_block=epoch_end - 1,
                batch=self.batch[lo:hi],
            )
            lo = hi
            epoch_start = epoch_end
            index += 1

    def epoch_list(self, tau: int, max_epochs: Optional[int] = None) -> List[EpochView]:
        """Materialise :meth:`epochs` into a list."""
        return list(self.epochs(tau, max_epochs))

    def account_activity(self) -> np.ndarray:
        """Transaction count per account id (length ``n_accounts``)."""
        counts = np.bincount(self.batch.senders, minlength=self.n_accounts)
        counts = counts + np.bincount(self.batch.receivers, minlength=self.n_accounts)
        return counts

    def active_accounts(self) -> np.ndarray:
        """Sorted ids of accounts appearing at least once."""
        return self.batch.touched_accounts()

    def subset_blocks(self, first_block: int, last_block: int) -> "Trace":
        """Transactions with ``first_block <= block <= last_block``."""
        mask = (self.batch.blocks >= first_block) & (self.batch.blocks <= last_block)
        return Trace(self.batch.select(mask), self.n_accounts)
