"""Persisted sizing index for two-pass CSV ingest.

The streaming engine's bounded protocol needs three facts before the
first epoch can run: the total row count (to place the history cut),
the account-universe size (to size mappings and state columns), and —
for observed-funding executed runs — the canonical funding partials.
A CSV extract can only answer after a full read, so every replay pays
a *sizing pass* that streams the whole file once and throws the
chunks away (ROADMAP PR 7 headroom).

This module persists that pass as a sidecar next to the extract
(``trace.csv`` -> ``trace.csv.sizing.npz``) holding::

    (n_rows, universe, canonical funding partials)

plus the stat fingerprint (size, mtime_ns) of the CSV it was built
from. :meth:`CsvTraceSource.sizing_index` loads it and
``StreamingSimulation`` skips the sizing pass when it matches —
observed-funding replays become one-pass. A sidecar that *disagrees*
with its file (the extract was regenerated, truncated, or appended-to)
raises the typed :class:`~repro.errors.SizingIndexError` rather than
silently funding a stale universe; a missing sidecar simply means "no
index" and the two-pass protocol runs as before.

Bit-exactness contract: the stored partials are the accumulator's
surviving pre-headroom array padded to the universe
(``ObservedFundingAccumulator(headroom=0.0).finalise(n_accounts)``),
and :meth:`SizingIndex.funding_balances` replays the tail of
``finalise`` — zero-init, prefix add, headroom scale — so an indexed
run's genesis funding is bit-identical to the sizing pass it skipped,
for any ``funding_headroom``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import SizingIndexError, ValidationError

#: Sidecar format version; bumped on any layout change so older
#: sidecars invalidate loudly instead of being misread.
SIZING_INDEX_VERSION = 1

#: Suffix appended to the CSV path (``trace.csv.sizing.npz``).
SIZING_INDEX_SUFFIX = ".sizing.npz"


def sizing_index_path(csv_path: Union[str, Path]) -> Path:
    """Sidecar path for ``csv_path`` (appended suffix, same directory)."""
    csv_path = Path(csv_path)
    return csv_path.with_name(csv_path.name + SIZING_INDEX_SUFFIX)


@dataclass(frozen=True)
class SizingIndex:
    """One sizing pass, persisted: row count, universe, funding partials.

    ``partials`` is the length-``n_accounts`` pre-headroom funding
    array (all zeros for a valueless metric trace — storing it
    unconditionally keeps the format single-shape); ``values_present``
    records whether any decoded chunk carried a value column, which the
    engine needs to normalise the second-pass chunk stream.
    """

    n_rows: int
    n_accounts: int
    max_account_id: int
    values_present: bool
    partials: np.ndarray
    file_size: int
    file_mtime_ns: int

    def funding_balances(self, n_accounts: int, headroom: float) -> np.ndarray:
        """Replay ``ObservedFundingAccumulator.finalise`` from the partials.

        Must be called with the index's own universe size (the engine
        derives both from the same sidecar); the replication below is
        the exact tail of ``finalise`` so the result is bit-identical
        to the sizing pass this index replaced.
        """
        if n_accounts != self.n_accounts:
            raise ValidationError(
                f"sizing index covers {self.n_accounts} accounts, "
                f"asked to fund {n_accounts}"
            )
        if headroom < 0:
            raise ValidationError(f"headroom must be >= 0, got {headroom}")
        balances = np.zeros(n_accounts, dtype=np.float64)
        balances[: len(self.partials)] += self.partials
        if headroom:
            balances *= 1.0 + headroom
        return balances


def build_sizing_index(
    csv_path: Union[str, Path],
    chunk_rows: Optional[int] = None,
    decoder: str = "auto",
) -> SizingIndex:
    """Run one sizing pass over ``csv_path`` and return the index.

    Streams the file through a fresh :class:`CsvTraceSource` (its own
    registry, so building an index never perturbs a live decode) and
    resolves the universe exactly as the engine's sizing pass does:
    the decoder's first-seen registry when it saw any row, else
    ``max_account_id + 1``. The funding partials accumulate in
    canonical chunk order, so any ``chunk_rows`` yields the same index.
    """
    from repro.chain.economics import ObservedFundingAccumulator
    from repro.data.source import DEFAULT_CHUNK_ROWS, CsvTraceSource

    csv_path = Path(csv_path)
    stat = os.stat(csv_path)
    source = CsvTraceSource(
        csv_path,
        chunk_rows=chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS,
        decoder=decoder,
    )
    accumulator = ObservedFundingAccumulator(headroom=0.0)
    values_present = False
    for chunk in source.chunks():
        accumulator.add(chunk)
        if chunk.values is not None:
            values_present = True
    resolved = source.resolved_n_accounts()
    if resolved is None:
        resolved = accumulator.max_account_id + 1
    n_accounts = max(int(resolved), 0)
    partials = accumulator.finalise(n_accounts)
    return SizingIndex(
        n_rows=accumulator.rows,
        n_accounts=n_accounts,
        max_account_id=accumulator.max_account_id,
        values_present=values_present,
        partials=partials,
        file_size=stat.st_size,
        file_mtime_ns=stat.st_mtime_ns,
    )


def write_sizing_index(
    csv_path: Union[str, Path],
    index: Optional[SizingIndex] = None,
    chunk_rows: Optional[int] = None,
    decoder: str = "auto",
) -> Path:
    """Build (unless given) and persist the sidecar; returns its path."""
    csv_path = Path(csv_path)
    if index is None:
        index = build_sizing_index(csv_path, chunk_rows=chunk_rows, decoder=decoder)
    target = sizing_index_path(csv_path)
    with target.open("wb") as handle:
        np.savez(
            handle,
            version=np.int64(SIZING_INDEX_VERSION),
            n_rows=np.int64(index.n_rows),
            n_accounts=np.int64(index.n_accounts),
            max_account_id=np.int64(index.max_account_id),
            values_present=np.bool_(index.values_present),
            partials=np.asarray(index.partials, dtype=np.float64),
            file_size=np.int64(index.file_size),
            file_mtime_ns=np.int64(index.file_mtime_ns),
        )
    return target


def load_sizing_index(csv_path: Union[str, Path]) -> Optional[SizingIndex]:
    """Load and validate the sidecar for ``csv_path``.

    Returns None when no sidecar exists (callers fall back to the
    sizing pass). Raises :class:`SizingIndexError` when a sidecar is
    present but unreadable, version-skewed, or stat-mismatched against
    the CSV — staleness must never be silent.
    """
    csv_path = Path(csv_path)
    sidecar = sizing_index_path(csv_path)
    if not sidecar.exists():
        return None
    try:
        with np.load(sidecar) as payload:
            version = int(payload["version"])
            if version != SIZING_INDEX_VERSION:
                raise SizingIndexError(
                    sidecar,
                    f"sizing index version {version} != "
                    f"{SIZING_INDEX_VERSION}; regenerate the index",
                )
            index = SizingIndex(
                n_rows=int(payload["n_rows"]),
                n_accounts=int(payload["n_accounts"]),
                max_account_id=int(payload["max_account_id"]),
                values_present=bool(payload["values_present"]),
                partials=np.asarray(payload["partials"], dtype=np.float64),
                file_size=int(payload["file_size"]),
                file_mtime_ns=int(payload["file_mtime_ns"]),
            )
    except SizingIndexError:
        raise
    except Exception as exc:  # zip/key/pickle corruption -> typed error
        raise SizingIndexError(
            sidecar, f"unreadable sizing index ({exc}); regenerate it"
        ) from exc
    stat = os.stat(csv_path)
    if stat.st_size != index.file_size or stat.st_mtime_ns != index.file_mtime_ns:
        raise SizingIndexError(
            sidecar,
            "sizing index is stale for "
            f"{csv_path.name} (recorded size={index.file_size} "
            f"mtime_ns={index.file_mtime_ns}, file has size={stat.st_size} "
            f"mtime_ns={stat.st_mtime_ns}); delete or regenerate the index",
        )
    return index
