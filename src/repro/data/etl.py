"""CSV ETL compatible with the ethereum-etl ``transactions`` schema.

The paper collects its dataset with Ethereum ETL. This module reads and
writes the subset of that CSV schema the evaluation needs, so a real
extract can be dropped into the same pipeline as the synthetic traces.
The ``value`` column is carried faithfully into the batch's ``values``
column (a replayed extract settles the volume it recorded, not a
synthetic per-transfer default); an optional ``fee`` column — our
documented extension for traces generated with a fee model — rides
along the same way.

Malformed rows raise :class:`~repro.errors.MalformedRowError` carrying
the file name and 1-based line number, so one bad row in a huge extract
is findable without re-running the decode. The chunked, bounded-memory
decoder lives in :mod:`repro.data.source` (:class:`CsvTraceSource`)
and shares the row parsing defined here.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.chain.account import AccountRegistry, address_from_id
from repro.chain.transaction import TransactionBatch
from repro.data.trace import Trace
from repro.errors import DataError, MalformedRowError

#: Columns written/accepted, a subset of ethereum-etl's transactions.csv.
ETL_COLUMNS = ("hash", "block_number", "from_address", "to_address", "value")

#: Optional per-transfer fee column (our extension; absent from real
#: ethereum-etl extracts, written only for traces that carry fees).
FEE_COLUMN = "fee"


class _RowDecoder:
    """Shared per-row decode for the eager reader and the chunked source.

    Resolves the header once, then turns each raw CSV row into an
    ``(sender, receiver, block, value, fee)`` tuple — or ``None`` for
    rows the paper's account-graph construction skips (contract
    creations, self-transfers). Bad cells raise
    :class:`MalformedRowError` with the file and 1-based line number.
    """

    def __init__(
        self,
        path: Path,
        fieldnames: Optional[List[str]],
        registry: AccountRegistry,
    ) -> None:
        if fieldnames is None:
            raise DataError(f"{path} is empty")
        missing = {"block_number", "from_address", "to_address"} - set(fieldnames)
        if missing:
            raise DataError(f"{path} is missing columns: {sorted(missing)}")
        self.path = path
        self.registry = registry
        self._block_idx = fieldnames.index("block_number")
        self._from_idx = fieldnames.index("from_address")
        self._to_idx = fieldnames.index("to_address")
        self._value_idx = (
            fieldnames.index("value") if "value" in fieldnames else None
        )
        self._fee_idx = (
            fieldnames.index(FEE_COLUMN) if FEE_COLUMN in fieldnames else None
        )
        self._width = max(
            idx
            for idx in (
                self._block_idx,
                self._from_idx,
                self._to_idx,
                self._value_idx,
                self._fee_idx,
            )
            if idx is not None
        ) + 1

    @property
    def has_values(self) -> bool:
        return self._value_idx is not None

    @property
    def has_fees(self) -> bool:
        return self._fee_idx is not None

    # Column positions, exposed for the columnar (arrow) decoder so both
    # paths resolve duplicated headers to the same first occurrence.

    @property
    def block_index(self) -> int:
        return self._block_idx

    @property
    def from_index(self) -> int:
        return self._from_idx

    @property
    def to_index(self) -> int:
        return self._to_idx

    @property
    def value_index(self) -> Optional[int]:
        return self._value_idx

    @property
    def fee_index(self) -> Optional[int]:
        return self._fee_idx

    @property
    def width(self) -> int:
        return self._width

    def decode(
        self, line: int, row: List[str]
    ) -> Optional[Tuple[int, int, int, float, float]]:
        if not row:
            return None  # blank line (csv.DictReader skipped these too)
        if len(row) < self._width:
            raise MalformedRowError(
                self.path, line, f"expected >= {self._width} columns, got {len(row)}"
            )
        from_address = row[self._from_idx].strip()
        to_address = row[self._to_idx].strip()
        if not from_address or not to_address:
            return None  # contract creation / malformed endpoint
        raw_block = row[self._block_idx]
        try:
            block = int(raw_block)
        except (TypeError, ValueError):
            raise MalformedRowError(
                self.path, line, f"bad block_number {raw_block!r}"
            ) from None
        if block < 0:
            raise MalformedRowError(
                self.path, line, f"negative block_number {block}"
            )
        value = 0.0
        if self._value_idx is not None:
            raw_value = row[self._value_idx].strip()
            if raw_value:
                try:
                    value = float(raw_value)
                except ValueError:
                    raise MalformedRowError(
                        self.path, line, f"bad value {raw_value!r}"
                    ) from None
                if value < 0 or value != value:  # negative or NaN
                    raise MalformedRowError(
                        self.path, line, f"bad value {raw_value!r}"
                    )
        fee = 0.0
        if self._fee_idx is not None:
            raw_fee = row[self._fee_idx].strip()
            if raw_fee:
                try:
                    fee = float(raw_fee)
                except ValueError:
                    raise MalformedRowError(
                        self.path, line, f"bad fee {raw_fee!r}"
                    ) from None
                if fee < 0 or fee != fee:
                    raise MalformedRowError(self.path, line, f"bad fee {raw_fee!r}")
        sender = self.registry.register(from_address)
        receiver = self.registry.register(to_address)
        if sender == receiver:
            return None  # self-transfers carry no allocation signal
        return sender, receiver, block, value, fee


def write_transactions_csv(
    path: Union[str, Path],
    trace: Trace,
    registry: Optional[AccountRegistry] = None,
) -> int:
    """Write ``trace`` as an ethereum-etl style CSV; return rows written.

    When no registry is supplied, deterministic synthetic addresses are
    derived from the integer ids. The ``value`` column carries the
    batch's ``values`` (0 for metric-only traces); a ``fee`` column is
    appended only when the trace carries fees, so fee-free files keep
    the exact ethereum-etl column subset.
    """
    path = Path(path)
    batch = trace.batch

    def to_address(account_id: int) -> str:
        if registry is not None:
            return registry.address_of(account_id)
        return address_from_id(account_id)

    values = batch.values
    fees = batch.fees
    columns = ETL_COLUMNS + ((FEE_COLUMN,) if fees is not None else ())
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for i in range(len(batch)):
            row = [
                f"0x{i:064x}",
                int(batch.blocks[i]),
                to_address(int(batch.senders[i])),
                to_address(int(batch.receivers[i])),
                float(values[i]) if values is not None else 0,
            ]
            if fees is not None:
                row.append(float(fees[i]))
            writer.writerow(row)
    return len(batch)


def read_transactions_csv(
    path: Union[str, Path],
    registry: Optional[AccountRegistry] = None,
) -> Tuple[Trace, AccountRegistry]:
    """Read an ethereum-etl style CSV into a :class:`Trace` (eager).

    Unknown addresses are registered on the fly; rows with an empty
    ``to_address`` (contract creations) are skipped, as in the paper's
    account-graph construction. Rows may appear in any block order —
    the whole file is decoded, then stable-sorted by block. For
    bounded-memory ingest of large block-ordered extracts use
    :class:`repro.data.source.CsvTraceSource` instead.

    An **all-zero value column** is treated as absent: that is what
    the writer emits for metric-only traces (and what every pre-value
    file carries), and materialising it would silently turn executed
    replays of those files into zero-amount transfers instead of the
    executor's default amount. Real extracts always carry non-zero
    values somewhere, so genuine value columns are unaffected.
    """
    path = Path(path)
    if registry is None:
        registry = AccountRegistry()

    senders: List[int] = []
    receivers: List[int] = []
    blocks: List[int] = []
    values: List[float] = []
    fees: List[float] = []

    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        fieldnames = next(reader, None)
        decoder = _RowDecoder(path, fieldnames, registry)
        has_values = decoder.has_values
        has_fees = decoder.has_fees
        for line, row in enumerate(reader, start=2):
            decoded = decoder.decode(line, row)
            if decoded is None:
                continue
            sender, receiver, block, value, fee = decoded
            senders.append(sender)
            receivers.append(receiver)
            blocks.append(block)
            if has_values:
                values.append(value)
            if has_fees:
                fees.append(fee)

    order = np.argsort(np.asarray(blocks, dtype=np.int64), kind="stable")
    values_column = None
    if decoder.has_values:
        values_column = np.asarray(values, dtype=np.float64)[order]
        if not values_column.any():
            values_column = None  # all-zero column = no value signal
    batch = TransactionBatch(
        np.asarray(senders, dtype=np.int64)[order],
        np.asarray(receivers, dtype=np.int64)[order],
        np.asarray(blocks, dtype=np.int64)[order],
        values_column,
        np.asarray(fees, dtype=np.float64)[order] if decoder.has_fees else None,
    )
    return Trace(batch, n_accounts=len(registry)), registry
