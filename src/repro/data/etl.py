"""CSV ETL compatible with the ethereum-etl ``transactions`` schema.

The paper collects its dataset with Ethereum ETL. This module reads and
writes the subset of that CSV schema the evaluation needs, so a real
extract can be dropped into the same pipeline as the synthetic traces.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.chain.account import AccountRegistry, address_from_id
from repro.chain.transaction import TransactionBatch
from repro.data.trace import Trace
from repro.errors import DataError

#: Columns written/accepted, a subset of ethereum-etl's transactions.csv.
ETL_COLUMNS = ("hash", "block_number", "from_address", "to_address", "value")


def write_transactions_csv(
    path: Union[str, Path],
    trace: Trace,
    registry: Optional[AccountRegistry] = None,
) -> int:
    """Write ``trace`` as an ethereum-etl style CSV; return rows written.

    When no registry is supplied, deterministic synthetic addresses are
    derived from the integer ids.
    """
    path = Path(path)
    batch = trace.batch

    def to_address(account_id: int) -> str:
        if registry is not None:
            return registry.address_of(account_id)
        return address_from_id(account_id)

    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(ETL_COLUMNS)
        for i in range(len(batch)):
            sender = int(batch.senders[i])
            receiver = int(batch.receivers[i])
            block = int(batch.blocks[i])
            writer.writerow(
                (
                    f"0x{i:064x}",
                    block,
                    to_address(sender),
                    to_address(receiver),
                    0,
                )
            )
    return len(batch)


def read_transactions_csv(
    path: Union[str, Path],
    registry: Optional[AccountRegistry] = None,
) -> Tuple[Trace, AccountRegistry]:
    """Read an ethereum-etl style CSV into a :class:`Trace`.

    Unknown addresses are registered on the fly; rows with an empty
    ``to_address`` (contract creations) are skipped, as in the paper's
    account-graph construction.
    """
    path = Path(path)
    if registry is None:
        registry = AccountRegistry()

    senders: List[int] = []
    receivers: List[int] = []
    blocks: List[int] = []

    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"{path} is empty")
        missing = {"block_number", "from_address", "to_address"} - set(
            reader.fieldnames
        )
        if missing:
            raise DataError(f"{path} is missing columns: {sorted(missing)}")
        for row_number, row in enumerate(reader, start=2):
            to_address = (row.get("to_address") or "").strip()
            from_address = (row.get("from_address") or "").strip()
            if not to_address or not from_address:
                continue  # contract creation / malformed row
            try:
                block = int(row["block_number"])
            except (TypeError, ValueError) as exc:
                raise DataError(
                    f"{path}:{row_number}: bad block_number {row.get('block_number')!r}"
                ) from exc
            sender = registry.register(from_address)
            receiver = registry.register(to_address)
            if sender == receiver:
                continue  # self-transfers carry no allocation signal
            senders.append(sender)
            receivers.append(receiver)
            blocks.append(block)

    order = np.argsort(np.asarray(blocks, dtype=np.int64), kind="stable")
    batch = TransactionBatch(
        np.asarray(senders, dtype=np.int64)[order],
        np.asarray(receivers, dtype=np.int64)[order],
        np.asarray(blocks, dtype=np.int64)[order],
    )
    return Trace(batch, n_accounts=len(registry)), registry
