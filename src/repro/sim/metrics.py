"""Evaluation metrics (Section V-A).

* **Cross-shard transaction ratio** — cross-shard / total transactions.
* **Workload deviation** — the paper's normalised standard deviation::

      ( sum_i (omega_i - mean)^2 / (k * mean) ) ** 0.5

* **System throughput** — transactions completed per epoch under the
  per-shard capacity ``lambda``. We use a fluid (order-independent)
  capacity model: a shard with workload ``omega_i`` processes the
  fraction ``min(1, lambda / omega_i)`` of its work, and a cross-shard
  transaction completes at the rate of its slower shard. The paper
  normalises by ``lambda`` so a non-sharded chain scores 1.0 and a
  perfectly-allocated k-shard system scores k.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.chain.kernels import (
    deviation_kernel,
    epoch_metrics_kernel,
    throughput_kernel,
)
from repro.chain.mapping import ShardMapping
from repro.chain.mempool import classify_transactions, shard_workloads
from repro.chain.transaction import TransactionBatch
from repro.errors import ValidationError


def cross_shard_ratio(batch: TransactionBatch, mapping: ShardMapping) -> float:
    """Fraction of transactions touching two shards (0.0 for empty)."""
    if len(batch) == 0:
        return 0.0
    _, _, is_cross = classify_transactions(batch, mapping)
    return float(is_cross.mean())


def workload_deviation(omega: np.ndarray) -> float:
    """The paper's workload-deviation formula over a workload vector."""
    return deviation_kernel(np.asarray(omega, dtype=np.float64))


def throughput(
    batch: TransactionBatch,
    mapping: ShardMapping,
    eta: float,
    capacity: float,
) -> float:
    """Transactions completed in one epoch under the capacity model.

    Each shard processes at most ``capacity`` workload units. An
    intra-shard transaction completes at its shard's service fraction
    ``min(1, capacity / omega_shard)``; a cross-shard transaction needs
    both shards and completes at the minimum of their fractions.
    """
    if capacity <= 0:
        raise ValidationError(f"capacity must be > 0, got {capacity}")
    if len(batch) == 0:
        return 0.0
    sender_shards, receiver_shards, is_cross = classify_transactions(
        batch, mapping
    )
    omega = shard_workloads(batch, mapping, eta)
    return throughput_kernel(
        sender_shards, receiver_shards, is_cross, omega, capacity
    )


def normalized_throughput(
    batch: TransactionBatch,
    mapping: ShardMapping,
    eta: float,
    capacity: float,
) -> float:
    """``Lambda / lambda``: throughput in units of one shard's capacity.

    A non-sharded chain (k = 1, all transactions intra-shard) scores
    exactly 1.0 under the same ``capacity``, which is the paper's
    normalisation benchmark.
    """
    return throughput(batch, mapping, eta, capacity) / capacity


def staleness_percentiles(
    samples: Sequence[int], qs: Tuple[float, ...] = (50.0, 99.0)
) -> Tuple[float, ...]:
    """Percentiles of receipt-staleness samples (blocks a delivery
    lagged the relay schedule), 0.0s when no receipt settled.

    Linear-interpolated ``np.percentile`` over the epoch's samples —
    the summary the unified engine records as
    ``receipt_staleness_p50/p99`` when receipts ride a simulated
    network.
    """
    if len(samples) == 0:
        return tuple(0.0 for _ in qs)
    arr = np.asarray(samples, dtype=np.float64)
    return tuple(float(np.percentile(arr, q)) for q in qs)


def epoch_metrics(
    batch: TransactionBatch,
    mapping: ShardMapping,
    eta: float,
    capacity: float,
) -> Tuple[float, float, float, np.ndarray]:
    """Convenience bundle: (cross_ratio, deviation, norm_throughput, omega).

    The paper's deviation formula is not scale-free (it grows with the
    absolute workload magnitude for a fixed relative imbalance), so the
    evaluation expresses workloads in units of the shard capacity
    ``lambda`` before applying it; this reproduces the magnitude range
    of Table III independently of trace size.

    The whole bundle is computed by the fused
    :func:`repro.chain.kernels.epoch_metrics_kernel`, which classifies
    the batch once instead of once per metric.
    """
    shard_of = mapping.as_array()
    if len(batch) and batch.max_account_id() >= len(shard_of):
        raise ValidationError(
            f"batch references account {batch.max_account_id()} outside "
            f"the mapping ({len(shard_of)} accounts)"
        )
    return epoch_metrics_kernel(
        batch.senders, batch.receivers, shard_of, mapping.k, eta, capacity
    )
