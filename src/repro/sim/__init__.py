"""Epoch-driven simulation engine reproducing the paper's evaluation."""

from repro.sim.metrics import (
    cross_shard_ratio,
    workload_deviation,
    throughput,
    normalized_throughput,
)
from repro.sim.engine import (
    Simulation,
    SimulationConfig,
    SimulationResult,
    StreamingSimulation,
    EpochRecord,
)
from repro.sim.recorder import ResultRecorder, summarize_results
from repro.sim.scenario import (
    Scenario,
    SCENARIOS,
    DEFAULT_METHODS,
    get_scenario,
    run_comparison,
)
from repro.sim.stats import (
    MetricSummary,
    MultiSeedResult,
    run_multi_seed,
    summarize_metric,
)

__all__ = [
    "cross_shard_ratio",
    "workload_deviation",
    "throughput",
    "normalized_throughput",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "StreamingSimulation",
    "EpochRecord",
    "ResultRecorder",
    "summarize_results",
    "Scenario",
    "SCENARIOS",
    "DEFAULT_METHODS",
    "get_scenario",
    "run_comparison",
    "MetricSummary",
    "MultiSeedResult",
    "run_multi_seed",
    "summarize_metric",
]
