"""Multi-seed statistics: confidence intervals for simulation metrics.

Single runs of the evaluation protocol are deterministic per seed, but
the synthetic trace and the baseline tie-breaking are seed-dependent.
``run_multi_seed`` repeats a scenario across seeds and aggregates each
metric into a mean with a normal-approximation confidence interval, so
comparisons between allocators can be reported with error bars rather
than single points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.allocation.base import Allocator
from repro.data.ethereum import generate_ethereum_like_trace
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.scenario import Scenario

#: Metrics aggregated across seeds (attribute names on SimulationResult).
AGGREGATED_METRICS = (
    "mean_cross_shard_ratio",
    "mean_normalized_throughput",
    "mean_workload_deviation",
    "mean_unit_time",
    "mean_input_bytes",
)

#: z-value for a 95% normal-approximation confidence interval.
_Z_95 = 1.959964


@dataclass(frozen=True)
class MetricSummary:
    """Mean, spread, and 95% CI of one metric across seeds."""

    metric: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def ci_half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "MetricSummary") -> bool:
        """True when the two confidence intervals overlap."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def summarize_metric(metric: str, values: Sequence[float]) -> MetricSummary:
    """Aggregate raw per-seed values into a :class:`MetricSummary`."""
    if not values:
        raise ConfigurationError(f"metric {metric!r} has no values")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
        half_width = _Z_95 * std / math.sqrt(n)
    else:
        std = 0.0
        half_width = 0.0
    return MetricSummary(
        metric=metric,
        mean=mean,
        std=std,
        ci_low=mean - half_width,
        ci_high=mean + half_width,
        n=n,
    )


@dataclass(frozen=True)
class MultiSeedResult:
    """All metric summaries for one allocator across seeds."""

    allocator: str
    seeds: Sequence[int]
    metrics: Dict[str, MetricSummary]
    runs: Sequence[SimulationResult]

    def metric(self, name: str) -> MetricSummary:
        try:
            return self.metrics[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            ) from None


def run_multi_seed(
    scenario: Scenario,
    allocator_factory: Callable[[], Allocator],
    seeds: Sequence[int],
    reseed_trace: bool = True,
) -> MultiSeedResult:
    """Run a scenario across ``seeds`` and aggregate the metrics.

    ``reseed_trace=True`` (default) regenerates the trace per seed —
    variance then covers workload randomness; ``False`` keeps one trace
    and varies only the protocol seed (tie-breaks, reshuffles).
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    runs: List[SimulationResult] = []
    for seed in seeds:
        trace_config = scenario.trace_config
        params = scenario.params.with_updates(seed=int(seed))
        if reseed_trace:
            trace_config = replace(trace_config, seed=int(seed))
        trace = generate_ethereum_like_trace(trace_config)
        config = scenario.simulation_config()
        config = replace(config, params=params)
        runs.append(Simulation(trace, allocator_factory(), config).run())

    metrics = {
        name: summarize_metric(
            name, [getattr(run, name) for run in runs]
        )
        for name in AGGREGATED_METRICS
    }
    return MultiSeedResult(
        allocator=runs[0].allocator_name,
        seeds=tuple(int(s) for s in seeds),
        metrics=metrics,
        runs=tuple(runs),
    )
