"""The epoch-driven simulation engine (evaluation protocol of Section V).

Protocol per evaluation epoch ``t``:

1. Accounts appearing for the first time are placed by the allocator's
   new-account rule (hash methods hash them, graph methods randomise,
   Mosaic clients choose for themselves).
2. The epoch's transactions are processed under the mapping computed at
   the end of epoch ``t - 1``; the effectiveness metrics are recorded
   ("evaluation metrics are calculated using the data from the current
   epoch based on the allocation results computed at the end of the
   preceding epoch").
3. The allocator updates the mapping for epoch ``t + 1``. It sees the
   epoch's committed transactions plus, as its workload oracle, the
   mempool of pending transactions — the next epoch's batch in
   ``lookahead`` mode (the paper's setup) or the current epoch's batch
   in ``trailing`` mode (ablation).

The loop is columnar end to end: every epoch is a
:class:`TransactionBatch` view over the trace's arrays, metrics run
through the fused numpy kernels, and no per-transaction Python object
is ever materialised on this path.

**Unified execution.** With ``execute_values=True`` the same loop also
drives the chain substrate: a :class:`~repro.chain.ledger.Ledger` with
a :class:`~repro.chain.crossshard.CrossShardExecutor` executes every
epoch's value transfers (withdraw/receipt/deposit) between per-shard
state stores, and the allocator's mapping changes become beacon-chain
migration requests whose state movement rides
:class:`~repro.chain.epoch.EpochReconfigurator` — one loop producing
both the effectiveness metrics and the executed-value metrics
(:class:`EpochRecord`'s ``executed_transactions``, ``settled_volume``,
``in_flight_receipts``, ``overdraft_aborts``). The metrics path is
byte-for-byte the code that runs with the flag off, so effectiveness
numbers are bit-identical between the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.allocation.base import Allocator, UpdateContext
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.chain.state import BACKEND_DICT, STATE_BACKENDS
from repro.chain.transaction import TransactionBatch
from repro.data.trace import EpochView, Trace
from repro.errors import SimulationError
from repro.sim.metrics import epoch_metrics
from repro.util.validation import check_in_range

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.source import TraceSource

ORACLE_LOOKAHEAD = "lookahead"
ORACLE_TRAILING = "trailing"

#: Genesis-funding modes for the unified engine. ``uniform`` mints the
#: same ``initial_balance`` to every account (the legacy default that
#: keeps executed goldens untouched); ``observed`` derives per-account
#: balances from the trace's value flow (one vectorised sufficiency
#: pass, see :func:`repro.chain.economics.observed_funding_balances`),
#: so a replayed trace settles its recorded economics with zero
#: overdraft aborts.
FUNDING_UNIFORM = "uniform"
FUNDING_OBSERVED = "observed"
FUNDING_MODES = (FUNDING_UNIFORM, FUNDING_OBSERVED)

#: The null network model: receipts settle on the exact relay schedule,
#: bit-identical to the pre-netsim direct-call path (the default).
NETWORK_IDEAL = "ideal"


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    ``execute_values`` switches on the unified engine: the epoch loop
    additionally executes value transfers through the cross-shard
    executor and moves account state with reconfiguration.
    ``state_backend`` selects the per-shard state store implementation
    (``"dict"`` or ``"dense"``, see :mod:`repro.chain.state`);
    ``funding`` selects the genesis supply (``"uniform"`` — the legacy
    default, every account minted ``initial_balance`` — or
    ``"observed"`` — per-account balances derived from the trace's
    value flow, the value-faithful replay mode); ``relay_delay_blocks``
    is the receipt relay latency; ``beacon_spill_dir`` spills the
    beacon chain's committed-MR log to on-disk segments
    (:class:`~repro.chain.segments.SegmentedCommitLog`) instead of
    holding every committed batch in memory. All of these are ignored
    while ``execute_values`` is off, keeping metrics-only runs (and
    their goldens) untouched.

    The history split is placed either *relatively* —
    ``history_fraction`` of the rows, default 0.9, which needs the
    total row count — or *absolutely* — the first ``history_epochs``
    ``tau``-block epochs, which doesn't, and is therefore what
    unbounded (``--follow``) streaming runs require. Setting both is a
    configuration error.
    """

    params: ProtocolParams
    history_fraction: Optional[float] = None
    history_epochs: Optional[int] = None
    max_epochs: Optional[int] = None
    oracle_mode: str = ORACLE_LOOKAHEAD
    execute_values: bool = False
    state_backend: str = BACKEND_DICT
    initial_balance: float = 100.0
    relay_delay_blocks: int = 1
    funding: str = FUNDING_UNIFORM
    funding_headroom: float = 0.0
    beacon_spill_dir: Optional[str] = None
    #: Which simulated network receipts ride (see
    #: :mod:`repro.chain.netsim`): ``"ideal"`` (default, bit-identical
    #: to the direct path), ``"lan"``, ``"wan"`` or ``"lossy"``. A
    #: non-ideal network requires ``execute_values`` — there is no
    #: message plane to degrade in a metrics-only run.
    network: str = NETWORK_IDEAL
    #: When set, every epoch's reconfiguration ends with a slack-gated
    #: state-store compaction pass (see
    #: :meth:`~repro.chain.state.StateRegistry.compact_stores`): a
    #: store compacts when its free slots exceed ``compact_slack``
    #: times its live population. Requires ``execute_values`` — a
    #: metrics-only run has no state columns to compact.
    compact_slack: Optional[float] = None

    #: Fraction used when neither split knob is set.
    DEFAULT_HISTORY_FRACTION = 0.9

    @property
    def resolved_history_fraction(self) -> float:
        """The effective fraction (0.9 default); unused in epochs mode."""
        if self.history_fraction is None:
            return self.DEFAULT_HISTORY_FRACTION
        return self.history_fraction

    def __post_init__(self) -> None:
        if self.history_fraction is not None and self.history_epochs is not None:
            raise SimulationError(
                "history_fraction and history_epochs are mutually "
                "exclusive ways to place the same split; set at most one"
            )
        if self.history_fraction is not None:
            check_in_range(
                "history_fraction", self.history_fraction, 0.0, 1.0
            )
        if self.history_epochs is not None and self.history_epochs < 0:
            raise SimulationError(
                f"history_epochs must be >= 0, got {self.history_epochs}"
            )
        if self.oracle_mode not in (ORACLE_LOOKAHEAD, ORACLE_TRAILING):
            raise SimulationError(
                f"oracle_mode must be '{ORACLE_LOOKAHEAD}' or "
                f"'{ORACLE_TRAILING}', got {self.oracle_mode!r}"
            )
        if self.max_epochs is not None and self.max_epochs < 1:
            raise SimulationError(
                f"max_epochs must be >= 1, got {self.max_epochs}"
            )
        if self.state_backend not in STATE_BACKENDS:
            raise SimulationError(
                f"state_backend must be one of {STATE_BACKENDS}, "
                f"got {self.state_backend!r}"
            )
        if self.initial_balance < 0:
            raise SimulationError(
                f"initial_balance must be >= 0, got {self.initial_balance}"
            )
        if self.relay_delay_blocks < 0:
            raise SimulationError(
                f"relay_delay_blocks must be >= 0, got {self.relay_delay_blocks}"
            )
        if self.funding not in FUNDING_MODES:
            raise SimulationError(
                f"funding must be one of {FUNDING_MODES}, got {self.funding!r}"
            )
        if self.funding_headroom < 0:
            raise SimulationError(
                f"funding_headroom must be >= 0, got {self.funding_headroom}"
            )
        from repro.chain.netsim import NETWORK_SPEC_NAMES

        if self.network not in NETWORK_SPEC_NAMES:
            raise SimulationError(
                f"network must be one of {NETWORK_SPEC_NAMES}, "
                f"got {self.network!r}"
            )
        if self.network != NETWORK_IDEAL and not self.execute_values:
            raise SimulationError(
                f"network={self.network!r} requires execute_values: "
                "metrics-only runs have no message plane to degrade"
            )
        if self.compact_slack is not None:
            if self.compact_slack < 0:
                raise SimulationError(
                    f"compact_slack must be >= 0, got {self.compact_slack}"
                )
            if not self.execute_values:
                raise SimulationError(
                    "compact_slack requires execute_values: metrics-only "
                    "runs have no state columns to compact"
                )


@dataclass
class EpochRecord:
    """Per-epoch measurements.

    The executed-value fields stay at their zero defaults in
    metrics-only runs; with ``execute_values`` on they carry the
    substrate's view of the same epoch: transfers actually committed,
    value settled by receipt deposits, receipts still in flight at the
    epoch boundary, and transfers aborted on insufficient balance.
    """

    epoch: int
    transactions: int
    cross_shard_ratio: float
    workload_deviation: float
    normalized_throughput: float
    execution_time: float
    unit_time: float
    input_bytes: float
    migrations: int
    proposed_migrations: int
    new_accounts: int
    executed_transactions: int = 0
    settled_volume: float = 0.0
    in_flight_receipts: int = 0
    overdraft_aborts: int = 0
    #: Message-plane observability (zero defaults in metrics-only runs;
    #: populated whenever the unified engine drives a network model —
    #: the ideal model counts traffic too, it just never degrades it).
    delivered_messages: int = 0
    dropped_messages: int = 0
    retransmissions: int = 0
    duplicate_deliveries: int = 0
    timeout_refunds: int = 0
    receipt_staleness_p50: float = 0.0
    receipt_staleness_p99: float = 0.0
    confirmation_latency_blocks: float = 0.0
    #: |total_value - genesis_supply| at the epoch boundary, checked
    #: only under a non-ideal network (the lossy refund/dedup paths are
    #: the ones worth auditing every epoch; the ideal path is pinned by
    #: the conservation property suite instead).
    conservation_drift: float = 0.0
    #: Allocator telemetry (zero defaults in metrics-only runs; with
    #: the arena state backend these carry the registry's post-epoch
    #: fragmentation ratio, arena count, slot occupancy, and the column
    #: bytes reclaimed / stores compacted by this epoch's slack-gated
    #: compaction pass, if any).
    state_fragmentation: float = 0.0
    state_occupancy: float = 0.0
    state_arenas: int = 0
    state_compacted_bytes: float = 0.0
    state_compactions: int = 0


@dataclass
class SimulationResult:
    """Aggregated outcome of one run."""

    allocator_name: str
    params: ProtocolParams
    records: List[EpochRecord] = field(default_factory=list)
    #: True when the run drove the unified engine (value execution).
    execute_values: bool = False
    #: The network spec receipts rode ("ideal" unless configured).
    network: str = NETWORK_IDEAL

    def _mean(self, attribute: str, weighted: bool = False) -> float:
        if not self.records:
            return 0.0
        values = np.array([getattr(r, attribute) for r in self.records])
        if weighted:
            weights = np.array([r.transactions for r in self.records], dtype=float)
            if weights.sum() == 0:
                return 0.0
            return float(np.average(values, weights=weights))
        return float(values.mean())

    @property
    def epochs(self) -> int:
        return len(self.records)

    @property
    def mean_cross_shard_ratio(self) -> float:
        """Transaction-weighted average cross-shard ratio."""
        return self._mean("cross_shard_ratio", weighted=True)

    @property
    def mean_workload_deviation(self) -> float:
        return self._mean("workload_deviation")

    @property
    def mean_normalized_throughput(self) -> float:
        return self._mean("normalized_throughput")

    @property
    def mean_execution_time(self) -> float:
        return self._mean("execution_time")

    @property
    def mean_unit_time(self) -> float:
        return self._mean("unit_time")

    @property
    def mean_input_bytes(self) -> float:
        return self._mean("input_bytes")

    @property
    def total_migrations(self) -> int:
        return int(sum(r.migrations for r in self.records))

    @property
    def total_proposed_migrations(self) -> int:
        return int(sum(r.proposed_migrations for r in self.records))

    @property
    def total_transactions(self) -> int:
        return int(sum(r.transactions for r in self.records))

    # -- executed-value aggregates (zero in metrics-only runs) -----------------

    @property
    def total_executed_transactions(self) -> int:
        return int(sum(r.executed_transactions for r in self.records))

    @property
    def total_settled_volume(self) -> float:
        return fsum(r.settled_volume for r in self.records)

    @property
    def total_overdraft_aborts(self) -> int:
        return int(sum(r.overdraft_aborts for r in self.records))

    @property
    def final_in_flight_receipts(self) -> int:
        """Receipts still pending after the last recorded epoch."""
        if not self.records:
            return 0
        return self.records[-1].in_flight_receipts

    # -- message-plane aggregates (zero without a network model) ---------------

    @property
    def total_delivered_messages(self) -> int:
        return int(sum(r.delivered_messages for r in self.records))

    @property
    def total_dropped_messages(self) -> int:
        return int(sum(r.dropped_messages for r in self.records))

    @property
    def total_retransmissions(self) -> int:
        return int(sum(r.retransmissions for r in self.records))

    @property
    def total_duplicate_deliveries(self) -> int:
        return int(sum(r.duplicate_deliveries for r in self.records))

    @property
    def total_timeout_refunds(self) -> int:
        return int(sum(r.timeout_refunds for r in self.records))

    @property
    def mean_confirmation_latency_blocks(self) -> float:
        return self._mean("confirmation_latency_blocks")

    @property
    def max_receipt_staleness_p99(self) -> float:
        if not self.records:
            return 0.0
        return max(r.receipt_staleness_p99 for r in self.records)

    @property
    def max_conservation_drift(self) -> float:
        if not self.records:
            return 0.0
        return max(r.conservation_drift for r in self.records)


@dataclass
class _EpochExecution:
    """Substrate-side measurements of one executed epoch."""

    executed_transactions: int = 0
    settled_volume: float = 0.0
    in_flight_receipts: int = 0
    overdraft_aborts: int = 0
    delivered_messages: int = 0
    dropped_messages: int = 0
    retransmissions: int = 0
    duplicate_deliveries: int = 0
    timeout_refunds: int = 0
    receipt_staleness_p50: float = 0.0
    receipt_staleness_p99: float = 0.0
    confirmation_latency_blocks: float = 0.0
    conservation_drift: float = 0.0


class ExecutionSubstrate:
    """The chain substrate the unified engine drives per epoch.

    Owns a :class:`~repro.chain.ledger.Ledger` (beacon chain + epoch
    reconfigurator) over a :class:`~repro.chain.crossshard.CrossShardExecutor`
    with per-shard state stores, genesis-funded either with a uniform
    supply (the legacy default) or with caller-supplied per-account
    balances (``funding_balances`` — the engine derives them from the
    trace's observed value flow in ``funding="observed"`` mode, eagerly
    or through the streaming accumulator). The substrate keeps its
    *own* mapping object — synchronised to the engine's
    value-for-value — so the metrics path's object flow (and thus its
    numbers) is untouched by execution. It needs only the universe
    *size*, never a materialised trace, which is what lets the windowed
    streaming engine drive it.
    """

    def __init__(
        self,
        n_accounts: int,
        mapping: ShardMapping,
        config: SimulationConfig,
        funding_balances: Optional[np.ndarray] = None,
    ) -> None:
        # Local imports keep the metrics-only engine free of the chain
        # execution layer (and its import cost) unless the flag is on.
        from repro.chain.crossshard import CrossShardExecutor
        from repro.chain.ledger import Ledger
        from repro.chain.netsim import NetworkModel
        from repro.chain.state import StateRegistry
        from repro.util.rng import derive_seed

        if config.funding == FUNDING_OBSERVED and funding_balances is None:
            raise SimulationError(
                "funding='observed' requires funding_balances (the engine "
                "derives them from the trace before building the substrate)"
            )
        self.config = config
        self.mapping = mapping.copy()
        self.registry = StateRegistry(
            config.params.k,
            backend=config.state_backend,
            n_accounts=n_accounts,
        )
        # Every executed run routes receipts through the message plane;
        # the default ideal model takes the bulk fast path that appends
        # to the ledger with the direct path's exact arguments, so the
        # flag-default behaviour stays byte-identical.
        self.network = NetworkModel(
            config.network, seed=derive_seed(config.params.seed, "netsim")
        )
        self.executor = CrossShardExecutor(
            self.registry,
            self.mapping,
            relay_delay_blocks=config.relay_delay_blocks,
            network=self.network,
        )
        self._bus_mark = self.executor.network_transport.bus.stats.snapshot()
        beacon = None
        if config.beacon_spill_dir is not None:
            from repro.chain.beacon import BeaconChain

            beacon = BeaconChain(spill_dir=config.beacon_spill_dir)
        self.ledger = Ledger(
            config.params,
            self.mapping,
            executor=self.executor,
            beacon=beacon,
            compact_slack=config.compact_slack,
        )
        accounts = np.arange(n_accounts, dtype=np.int64)
        if funding_balances is not None:
            self.executor.fund_many(accounts, funding_balances)
            self.genesis_supply = float(
                np.sum(funding_balances, dtype=np.float64)
            )
        else:
            self.executor.fund_many(accounts, config.initial_balance)
            self.genesis_supply = float(n_accounts) * config.initial_balance

    def total_value(self) -> float:
        """Resident balances + in-flight receipts + collected fees
        (conserved against the genesis supply)."""
        return self.executor.total_value()

    def place_new_accounts(
        self, accounts: np.ndarray, shards: np.ndarray
    ) -> None:
        """Mirror first-seen placements: update phi and move state."""
        self.mapping.assign_many(accounts, shards)
        self.executor.apply_migration_batch(accounts, shards)

    def execute_epoch(self, batch: TransactionBatch) -> _EpochExecution:
        """Run the epoch's transfers; return the executed-value metrics."""
        from repro.chain.netsim import MSG_GOSSIP, OMEGA_ENTRY_BYTES
        from repro.sim.metrics import staleness_percentiles

        stats = _EpochExecution()
        latency_sum = 0
        latency_count = 0
        last_block = 0
        for report in self.ledger.execute_epoch(batch):
            stats.executed_transactions += (
                report.intra_executed + report.withdraws
            )
            stats.settled_volume += report.settled_value
            stats.overdraft_aborts += report.failed
            stats.duplicate_deliveries += report.duplicates_deduped
            stats.timeout_refunds += report.refunds_settled
            latency_sum += sum(report.relay_latencies)
            latency_count += len(report.relay_latencies)
            last_block = report.block
        stats.in_flight_receipts = self.executor.in_flight_count()

        # Workload-vector gossip: each shard floods its Omega entries to
        # every other shard once per epoch (the traffic clients' Omega
        # downloads ride in the paper's model). Under the ideal model
        # these are pure counter bumps.
        transport = self.executor.network_transport
        bus = transport.bus
        k = self.config.params.k
        gossip_bytes = float(OMEGA_ENTRY_BYTES * k)
        at_block = max(last_block, bus.clock)
        for src in range(k):
            for dst in range(k):
                if src != dst:
                    bus.send(
                        MSG_GOSSIP, src, dst, at_block, size_bytes=gossip_bytes
                    )

        sent, delivered, dropped, retrans, dups, expired = bus.stats.snapshot()
        m_sent, m_delivered, m_dropped, m_retrans, m_dups, m_expired = (
            self._bus_mark
        )
        stats.delivered_messages = delivered - m_delivered
        stats.dropped_messages = dropped - m_dropped
        stats.retransmissions = retrans - m_retrans
        self._bus_mark = bus.stats.snapshot()

        if latency_count:
            stats.confirmation_latency_blocks = latency_sum / latency_count
        if not self.network.is_ideal:
            p50, p99 = staleness_percentiles(transport.drain_staleness())
            stats.receipt_staleness_p50 = p50
            stats.receipt_staleness_p99 = p99
            stats.conservation_drift = abs(
                self.total_value() - self.genesis_supply
            )
        return stats

    def reconfigure(self, epoch: int, target: ShardMapping):
        """Commit the allocator's mapping update as beacon MRs.

        Every account whose shard changed becomes one row of a columnar
        :class:`~repro.chain.migration.MigrationRequestBatch` (no
        per-account request objects); the uncapped commitment round
        plus batched reconfiguration applies them to the substrate's
        phi *and* moves the account state between stores as grouped
        gather/scatter in the same pass (Section III-B-2 semantics) —
        after which the substrate's mapping equals ``target`` value for
        value. Returns the
        :class:`~repro.chain.epoch.ReconfigurationReport` (whose
        ``compacted_bytes`` feeds the epoch's allocator telemetry).
        """
        from repro.chain.migration import MigrationRequestBatch

        moved = self.mapping.diff(target)
        batch = MigrationRequestBatch(
            moved,
            self.mapping.as_array()[moved],
            target.as_array()[moved],
            epoch=epoch,
        )
        self.ledger.submit_migration_batch(batch)
        self.ledger.commit_migrations(capacity=None)
        return self.ledger.reconfigure()

    def state_telemetry(self) -> Dict[str, float]:
        """Registry-wide allocator stats (fragmentation/occupancy/arenas)."""
        return self.registry.fragmentation_stats()


@dataclass
class _LoopState:
    """Mutable engine state threaded through the windowed epoch loop."""

    mapping: ShardMapping
    seen: np.ndarray


def _run_epoch_loop(
    views: "Iterable[EpochView]",
    state: _LoopState,
    allocator: Allocator,
    config: SimulationConfig,
    substrate: Optional[ExecutionSubstrate],
    result: SimulationResult,
    on_record: Optional[Callable[[EpochRecord], None]] = None,
    allow_growth: bool = False,
) -> None:
    """The windowed evaluation loop shared by both engine front ends.

    Consumes epoch views from any iterable — a :class:`Trace.epochs`
    generator or an :class:`~repro.data.source.EpochStream` — holding
    exactly two views at a time (current + lookahead), so memory is
    O(window) regardless of horizon. The per-epoch protocol is
    byte-for-byte the historic materialised loop: empty views are
    skipped for processing but still occupy lookahead positions, and
    the lookahead mempool is the *next view's batch object*, empty or
    not, exactly as ``epoch_views[position + 1].batch`` used to be.

    ``allow_growth`` (unbounded follow runs only) extends ``phi`` and
    the seen-set when a window references accounts beyond the current
    universe; gap ids (allocated but never yet transacting) fill to
    shard 0, and their real placement happens through the normal
    new-account rule when they first appear.
    """
    params = config.params
    empty = TransactionBatch.empty()

    iterator = iter(views)
    current = next(iterator, None)
    nxt = next(iterator, None) if current is not None else None

    while current is not None:
        view = current
        batch = view.batch
        if len(batch) == 0:
            current, nxt = nxt, next(iterator, None)
            continue
        if config.oracle_mode == ORACLE_LOOKAHEAD:
            mempool = nxt.batch if nxt is not None else empty
        else:
            mempool = batch

        if allow_growth:
            needed = max(batch.max_account_id(), mempool.max_account_id()) + 1
            have = state.mapping.n_accounts
            if needed > have:
                fill = np.zeros(needed - have, dtype=np.int64)
                state.mapping.grow(needed, fill)
                grown_seen = np.zeros(needed, dtype=bool)
                grown_seen[:have] = state.seen
                state.seen = grown_seen

        capacity = params.derive_capacity(len(batch))
        mapping = state.mapping
        seen = state.seen

        # 1. Place accounts never seen before.
        touched = batch.touched_accounts()
        new_ids = touched[~seen[touched]]
        if len(new_ids):
            placement_context = UpdateContext(
                epoch=view.index,
                params=params,
                committed=empty,
                mempool=batch,
                capacity=capacity,
            )
            placements = allocator.place_new_accounts(
                new_ids, mapping, placement_context
            )
            mapping.assign_many(new_ids, placements)
            seen[new_ids] = True
            if substrate is not None:
                substrate.place_new_accounts(new_ids, placements)

        # 2. Metrics under the previous epoch's allocation.
        ratio, deviation, norm_throughput, _ = epoch_metrics(
            batch, mapping, params.eta, capacity
        )

        # 2b. Value execution under the same allocation (unified
        # engine): the substrate's mapping equals the engine's at
        # this point, so classification matches the metrics above.
        execution = (
            substrate.execute_epoch(batch)
            if substrate is not None
            else _EpochExecution()
        )

        # 3. Allocator update for the next epoch.
        context = UpdateContext(
            epoch=view.index,
            params=params,
            committed=batch,
            mempool=mempool,
            capacity=capacity,
        )
        update = allocator.update(mapping, context)
        if update.mapping.k != params.k:
            raise SimulationError("allocator changed k during update")
        compacted_bytes = 0.0
        compactions = 0
        fragmentation = occupancy = 0.0
        arenas = 0
        if substrate is not None:
            compactions_before = substrate.registry.compaction_count
            reconfig_report = substrate.reconfigure(view.index, update.mapping)
            compacted_bytes = float(reconfig_report.compacted_bytes)
            compactions = (
                substrate.registry.compaction_count - compactions_before
            )
            telemetry = substrate.state_telemetry()
            fragmentation = float(telemetry["fragmentation"])
            occupancy = float(telemetry["occupancy"])
            arenas = int(telemetry["arena_count"])
        state.mapping = update.mapping

        record = EpochRecord(
            epoch=view.index,
            transactions=len(batch),
            cross_shard_ratio=ratio,
            workload_deviation=deviation,
            normalized_throughput=norm_throughput,
            execution_time=update.execution_time,
            unit_time=update.unit_time,
            input_bytes=update.input_bytes,
            migrations=update.migrations,
            proposed_migrations=update.proposed_migrations,
            new_accounts=len(new_ids),
            executed_transactions=execution.executed_transactions,
            settled_volume=execution.settled_volume,
            in_flight_receipts=execution.in_flight_receipts,
            overdraft_aborts=execution.overdraft_aborts,
            delivered_messages=execution.delivered_messages,
            dropped_messages=execution.dropped_messages,
            retransmissions=execution.retransmissions,
            duplicate_deliveries=execution.duplicate_deliveries,
            timeout_refunds=execution.timeout_refunds,
            receipt_staleness_p50=execution.receipt_staleness_p50,
            receipt_staleness_p99=execution.receipt_staleness_p99,
            confirmation_latency_blocks=execution.confirmation_latency_blocks,
            conservation_drift=execution.conservation_drift,
            state_fragmentation=fragmentation,
            state_occupancy=occupancy,
            state_arenas=arenas,
            state_compacted_bytes=compacted_bytes,
            state_compactions=compactions,
        )
        result.records.append(record)
        if on_record is not None:
            on_record(record)
        current, nxt = nxt, next(iterator, None)


def _initial_mapping(
    allocator: Allocator,
    history: Trace,
    params: ProtocolParams,
    n_accounts: int,
) -> ShardMapping:
    """Initialise the allocator over the history and validate the result."""
    mapping = allocator.initialize(history, params)
    if mapping.k != params.k:
        raise SimulationError(
            f"allocator produced k={mapping.k}, expected {params.k}"
        )
    if mapping.n_accounts < n_accounts:
        raise SimulationError(
            "allocator's initial mapping must cover the account universe "
            f"({mapping.n_accounts} < {n_accounts})"
        )
    return mapping


class Simulation:
    """Drives one allocator over one trace under one configuration."""

    def __init__(
        self,
        trace: Trace,
        allocator: Allocator,
        config: SimulationConfig,
    ) -> None:
        self.trace = trace
        self.allocator = allocator
        self.config = config
        #: The chain substrate of the last ``execute_values`` run
        #: (None before run() or in metrics-only mode) — exposed for
        #: conservation checks and state inspection.
        self.substrate: Optional[ExecutionSubstrate] = None

    def run(self) -> SimulationResult:
        """Execute the full evaluation protocol; return the result.

        The evaluation segment feeds the windowed epoch loop straight
        from the :meth:`Trace.epochs` generator — epochs are never
        materialised as a list, so the loop's working set is two epoch
        views even on a materialised trace.
        """
        params = self.config.params
        if self.config.history_epochs is not None:
            history, evaluation = self.trace.split_epochs(
                params.tau, self.config.history_epochs
            )
        else:
            history, evaluation = self.trace.split(
                self.config.resolved_history_fraction
            )

        mapping = _initial_mapping(
            self.allocator, history, params, self.trace.n_accounts
        )

        substrate: Optional[ExecutionSubstrate] = None
        if self.config.execute_values:
            funding = None
            if self.config.funding == FUNDING_OBSERVED:
                from repro.chain.economics import observed_funding_balances

                funding = observed_funding_balances(
                    self.trace.batch,
                    self.trace.n_accounts,
                    headroom=self.config.funding_headroom,
                )
            substrate = ExecutionSubstrate(
                self.trace.n_accounts, mapping, self.config, funding
            )
            self.substrate = substrate

        seen = np.zeros(self.trace.n_accounts, dtype=bool)
        seen[history.active_accounts()] = True

        result = SimulationResult(
            allocator_name=self.allocator.name,
            params=params,
            execute_values=self.config.execute_values,
            network=self.config.network,
        )
        state = _LoopState(mapping=mapping, seen=seen)
        _run_epoch_loop(
            evaluation.epochs(params.tau, self.config.max_epochs),
            state,
            self.allocator,
            self.config,
            substrate,
            result,
        )
        return result


def _normalised_chunks(
    chunks: "Iterator[TransactionBatch]", values_present: bool
) -> "Iterator[TransactionBatch]":
    """Re-materialise lazily-skipped zero values on a chunk stream.

    Streamed CSV decode activates the value column only at the first
    nonzero value, so chunks before that point are valueless even when
    the materialised trace carries the column (with literal zeros).
    When the sizing pass resolved that values exist, this wrapper
    restores the column on every chunk — making the second pass's
    history and epoch batches column-identical to the materialised
    split, which executed replays require (a valueless batch transfers
    the default amount, not 0.0).
    """
    for chunk in chunks:
        if values_present and chunk.values is None and len(chunk):
            chunk = TransactionBatch(
                chunk.senders,
                chunk.receivers,
                chunk.blocks,
                np.zeros(len(chunk), dtype=np.float64),
                chunk.fees,
            )
        yield chunk


def _consume_history_fraction(
    chunks: "Iterator[TransactionBatch]", cut: int
) -> "Tuple[List[TransactionBatch], Optional[TransactionBatch]]":
    """Take ``Trace.split``'s head off a chunk stream, chunk by chunk.

    Returns the history chunks plus the first leftover slice (None when
    the stream was exhausted or nothing was consumed). Replicates the
    materialised split exactly: rows up to ``cut``, then forward to the
    next block boundary — rows equal to the boundary block form a
    sorted prefix of the remainder, consumed via ``searchsorted``.
    """
    history: List[TransactionBatch] = []
    if cut <= 0:
        return history, None
    taken = 0
    for chunk in chunks:
        n = len(chunk)
        if n == 0:
            continue
        if taken + n < cut:
            history.append(chunk)
            taken += n
            continue
        split_at = cut - taken
        boundary = int(chunk.blocks[split_at - 1])
        stop = int(np.searchsorted(chunk.blocks, boundary, side="right"))
        history.append(chunk[:stop])
        if stop < n:
            return history, chunk[stop:]
        for chunk2 in chunks:
            stop2 = int(np.searchsorted(chunk2.blocks, boundary, side="right"))
            if stop2:
                history.append(chunk2[:stop2])
            if stop2 < len(chunk2):
                return history, chunk2[stop2:]
        return history, None
    return history, None


def _consume_history_epochs(
    chunks: "Iterator[TransactionBatch]", tau: int, n_epochs: int
) -> "Tuple[List[TransactionBatch], Optional[TransactionBatch]]":
    """Take ``Trace.split_epochs``'s head off a chunk stream.

    The head is every row with ``block < first_block + n_epochs * tau``
    — an absolute boundary needing no total row count, which is what
    unbounded sources require.
    """
    history: List[TransactionBatch] = []
    boundary: Optional[int] = None
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        if boundary is None:
            boundary = int(chunk.blocks[0]) + n_epochs * tau
        stop = int(np.searchsorted(chunk.blocks, boundary, side="left"))
        if stop:
            history.append(chunk[:stop])
        if stop < len(chunk):
            return history, chunk[stop:]
    return history, None


class StreamingSimulation:
    """The windowed engine front end: runs the protocol off a source.

    Drives the exact evaluation protocol of :class:`Simulation` without
    ever materialising the trace, consuming epochs from
    :class:`~repro.data.source.EpochStream` one window at a time. Three
    ingest protocols, picked automatically:

    * **count-prefixed fast path** — the source knows its length up
      front (:meth:`~repro.data.source.TraceSource.size_hint`): one
      streaming pass, history split placed from the known count;
    * **two-pass** — length unknown (CSV): a sizing pass counts rows,
      resolves the account universe, and (in observed-funding mode)
      accumulates genesis balances bit-identically to the eager
      computation; the second pass re-streams through the history split
      into the epoch loop;
    * **unbounded** — the source never ends
      (:class:`~repro.data.source.FollowCsvTraceSource`): no sizing
      pass is possible, so the run requires the absolute
      ``history_epochs`` split and metrics-only execution; the account
      universe grows as new ids appear.

    Equivalence with ``Simulation(trace.materialise(), ...)`` is
    bit-exact — same epoch records, mapping trajectory, and (executed
    mode) settlement order — and pinned by ``tests/test_streaming_engine.py``.
    ``on_record`` fires after each epoch record (live progress for
    ``--follow``).
    """

    def __init__(
        self,
        source: "TraceSource",
        allocator: Allocator,
        config: SimulationConfig,
        on_record: Optional[Callable[[EpochRecord], None]] = None,
    ) -> None:
        self.source = source
        self.allocator = allocator
        self.config = config
        self.on_record = on_record
        self.substrate: Optional[ExecutionSubstrate] = None

    def run(self) -> SimulationResult:
        """Stream the full evaluation protocol; return the result."""
        if getattr(self.source, "unbounded", False):
            return self._run_unbounded()
        return self._run_bounded()

    # -- bounded sources (fast path / two-pass) ---------------------------------

    def _run_bounded(self) -> SimulationResult:
        from itertools import chain as iter_chain

        from repro.data.source import ChunkIteratorSource, EpochStream

        config = self.config
        params = config.params
        need_funding = (
            config.execute_values and config.funding == FUNDING_OBSERVED
        )
        hint = self.source.size_hint()
        funding: Optional[np.ndarray] = None
        values_present = False

        if hint is not None and not need_funding:
            total_rows, n_accounts = hint
        else:
            # A persisted sizing sidecar (repro generate --sizing-index)
            # answers everything the sizing pass would — row count,
            # universe, canonical funding partials — so an indexed CSV
            # replay is one-pass. Stale sidecars raise SizingIndexError
            # inside sizing_index(); missing ones return None.
            index = self.source.sizing_index()
            if index is not None:
                total_rows = index.n_rows
                n_accounts = index.n_accounts
                values_present = index.values_present
                if need_funding:
                    funding = index.funding_balances(
                        n_accounts, config.funding_headroom
                    )
            else:
                # Sizing pass: count rows, resolve the account universe,
                # and accumulate observed funding in canonical chunk order.
                from repro.chain.economics import ObservedFundingAccumulator

                accumulator = ObservedFundingAccumulator(
                    headroom=config.funding_headroom
                )
                for chunk in self.source.chunks():
                    accumulator.add(chunk)
                    if chunk.values is not None:
                        values_present = True
                total_rows = accumulator.rows
                resolved = self.source.resolved_n_accounts()
                if resolved is None:
                    resolved = accumulator.max_account_id + 1
                n_accounts = max(int(resolved), 0)
                if need_funding:
                    funding = accumulator.finalise(n_accounts)

        chunks = iter(self.source.chunks())
        if values_present:
            chunks = _normalised_chunks(chunks, values_present=True)
        if config.history_epochs is not None:
            history_chunks, leftover = _consume_history_epochs(
                chunks, params.tau, config.history_epochs
            )
        else:
            cut = int(round(total_rows * config.resolved_history_fraction))
            cut = max(0, min(total_rows, cut))
            history_chunks, leftover = _consume_history_fraction(chunks, cut)

        history_batch = (
            TransactionBatch.concat_many(history_chunks)
            if history_chunks
            else TransactionBatch.empty()
        )
        history = Trace(history_batch, n_accounts=n_accounts)
        mapping = _initial_mapping(self.allocator, history, params, n_accounts)

        substrate: Optional[ExecutionSubstrate] = None
        if config.execute_values:
            substrate = ExecutionSubstrate(n_accounts, mapping, config, funding)
            self.substrate = substrate

        seen = np.zeros(n_accounts, dtype=bool)
        seen[history.active_accounts()] = True

        remainder = iter_chain(
            [leftover] if leftover is not None else [], chunks
        )
        evaluation = EpochStream(
            ChunkIteratorSource(
                remainder, n_accounts=n_accounts, name=self.source.name
            ),
            params.tau,
            config.max_epochs,
        )

        result = SimulationResult(
            allocator_name=self.allocator.name,
            params=params,
            execute_values=config.execute_values,
            network=config.network,
        )
        state = _LoopState(mapping=mapping, seen=seen)
        _run_epoch_loop(
            evaluation,
            state,
            self.allocator,
            config,
            substrate,
            result,
            on_record=self.on_record,
        )
        return result

    # -- unbounded sources (follow mode) ----------------------------------------

    def _run_unbounded(self) -> SimulationResult:
        from itertools import chain as iter_chain

        from repro.data.source import ChunkIteratorSource, EpochStream

        config = self.config
        params = config.params
        if config.history_epochs is None:
            raise SimulationError(
                f"source {self.source.name!r} is unbounded: a fractional "
                "history split needs the total row count; set "
                "history_epochs to place the split absolutely"
            )
        if config.execute_values:
            raise SimulationError(
                f"source {self.source.name!r} is unbounded: value "
                "execution needs genesis funding over a closed account "
                "universe; follow runs are metrics-only"
            )

        chunks = iter(self.source.chunks())
        history_chunks, leftover = _consume_history_epochs(
            chunks, params.tau, config.history_epochs
        )
        history_batch = (
            TransactionBatch.concat_many(history_chunks)
            if history_chunks
            else TransactionBatch.empty()
        )
        # The universe is whatever history has shown so far; the loop
        # grows it as later windows reference new ids.
        history = Trace(history_batch)
        n_accounts = history.n_accounts
        mapping = _initial_mapping(self.allocator, history, params, n_accounts)

        seen = np.zeros(mapping.n_accounts, dtype=bool)
        seen[history.active_accounts()] = True

        remainder = iter_chain(
            [leftover] if leftover is not None else [], chunks
        )
        evaluation = EpochStream(
            ChunkIteratorSource(
                remainder, n_accounts=n_accounts, name=self.source.name
            ),
            params.tau,
            config.max_epochs,
        )

        result = SimulationResult(
            allocator_name=self.allocator.name,
            params=params,
            execute_values=False,
        )
        state = _LoopState(mapping=mapping, seen=seen)
        _run_epoch_loop(
            evaluation,
            state,
            self.allocator,
            config,
            None,
            result,
            on_record=self.on_record,
            allow_growth=True,
        )
        return result
