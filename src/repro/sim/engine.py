"""The epoch-driven simulation engine (evaluation protocol of Section V).

Protocol per evaluation epoch ``t``:

1. Accounts appearing for the first time are placed by the allocator's
   new-account rule (hash methods hash them, graph methods randomise,
   Mosaic clients choose for themselves).
2. The epoch's transactions are processed under the mapping computed at
   the end of epoch ``t - 1``; the effectiveness metrics are recorded
   ("evaluation metrics are calculated using the data from the current
   epoch based on the allocation results computed at the end of the
   preceding epoch").
3. The allocator updates the mapping for epoch ``t + 1``. It sees the
   epoch's committed transactions plus, as its workload oracle, the
   mempool of pending transactions — the next epoch's batch in
   ``lookahead`` mode (the paper's setup) or the current epoch's batch
   in ``trailing`` mode (ablation).

The loop is columnar end to end: every epoch is a
:class:`TransactionBatch` view over the trace's arrays, metrics run
through the fused numpy kernels, and no per-transaction Python object
is ever materialised on this path.

**Unified execution.** With ``execute_values=True`` the same loop also
drives the chain substrate: a :class:`~repro.chain.ledger.Ledger` with
a :class:`~repro.chain.crossshard.CrossShardExecutor` executes every
epoch's value transfers (withdraw/receipt/deposit) between per-shard
state stores, and the allocator's mapping changes become beacon-chain
migration requests whose state movement rides
:class:`~repro.chain.epoch.EpochReconfigurator` — one loop producing
both the effectiveness metrics and the executed-value metrics
(:class:`EpochRecord`'s ``executed_transactions``, ``settled_volume``,
``in_flight_receipts``, ``overdraft_aborts``). The metrics path is
byte-for-byte the code that runs with the flag off, so effectiveness
numbers are bit-identical between the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import fsum
from typing import List, Optional

import numpy as np

from repro.allocation.base import Allocator, UpdateContext
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.chain.state import BACKEND_DICT, STATE_BACKENDS
from repro.chain.transaction import TransactionBatch
from repro.data.trace import Trace
from repro.errors import SimulationError
from repro.sim.metrics import epoch_metrics
from repro.util.validation import check_in_range

ORACLE_LOOKAHEAD = "lookahead"
ORACLE_TRAILING = "trailing"

#: Genesis-funding modes for the unified engine. ``uniform`` mints the
#: same ``initial_balance`` to every account (the legacy default that
#: keeps executed goldens untouched); ``observed`` derives per-account
#: balances from the trace's value flow (one vectorised sufficiency
#: pass, see :func:`repro.chain.economics.observed_funding_balances`),
#: so a replayed trace settles its recorded economics with zero
#: overdraft aborts.
FUNDING_UNIFORM = "uniform"
FUNDING_OBSERVED = "observed"
FUNDING_MODES = (FUNDING_UNIFORM, FUNDING_OBSERVED)


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    ``execute_values`` switches on the unified engine: the epoch loop
    additionally executes value transfers through the cross-shard
    executor and moves account state with reconfiguration.
    ``state_backend`` selects the per-shard state store implementation
    (``"dict"`` or ``"dense"``, see :mod:`repro.chain.state`);
    ``funding`` selects the genesis supply (``"uniform"`` — the legacy
    default, every account minted ``initial_balance`` — or
    ``"observed"`` — per-account balances derived from the trace's
    value flow, the value-faithful replay mode); ``relay_delay_blocks``
    is the receipt relay latency. All of these are ignored while
    ``execute_values`` is off, keeping metrics-only runs (and their
    goldens) untouched.
    """

    params: ProtocolParams
    history_fraction: float = 0.9
    max_epochs: Optional[int] = None
    oracle_mode: str = ORACLE_LOOKAHEAD
    execute_values: bool = False
    state_backend: str = BACKEND_DICT
    initial_balance: float = 100.0
    relay_delay_blocks: int = 1
    funding: str = FUNDING_UNIFORM
    funding_headroom: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("history_fraction", self.history_fraction, 0.0, 1.0)
        if self.oracle_mode not in (ORACLE_LOOKAHEAD, ORACLE_TRAILING):
            raise SimulationError(
                f"oracle_mode must be '{ORACLE_LOOKAHEAD}' or "
                f"'{ORACLE_TRAILING}', got {self.oracle_mode!r}"
            )
        if self.max_epochs is not None and self.max_epochs < 1:
            raise SimulationError(
                f"max_epochs must be >= 1, got {self.max_epochs}"
            )
        if self.state_backend not in STATE_BACKENDS:
            raise SimulationError(
                f"state_backend must be one of {STATE_BACKENDS}, "
                f"got {self.state_backend!r}"
            )
        if self.initial_balance < 0:
            raise SimulationError(
                f"initial_balance must be >= 0, got {self.initial_balance}"
            )
        if self.relay_delay_blocks < 0:
            raise SimulationError(
                f"relay_delay_blocks must be >= 0, got {self.relay_delay_blocks}"
            )
        if self.funding not in FUNDING_MODES:
            raise SimulationError(
                f"funding must be one of {FUNDING_MODES}, got {self.funding!r}"
            )
        if self.funding_headroom < 0:
            raise SimulationError(
                f"funding_headroom must be >= 0, got {self.funding_headroom}"
            )


@dataclass
class EpochRecord:
    """Per-epoch measurements.

    The executed-value fields stay at their zero defaults in
    metrics-only runs; with ``execute_values`` on they carry the
    substrate's view of the same epoch: transfers actually committed,
    value settled by receipt deposits, receipts still in flight at the
    epoch boundary, and transfers aborted on insufficient balance.
    """

    epoch: int
    transactions: int
    cross_shard_ratio: float
    workload_deviation: float
    normalized_throughput: float
    execution_time: float
    unit_time: float
    input_bytes: float
    migrations: int
    proposed_migrations: int
    new_accounts: int
    executed_transactions: int = 0
    settled_volume: float = 0.0
    in_flight_receipts: int = 0
    overdraft_aborts: int = 0


@dataclass
class SimulationResult:
    """Aggregated outcome of one run."""

    allocator_name: str
    params: ProtocolParams
    records: List[EpochRecord] = field(default_factory=list)
    #: True when the run drove the unified engine (value execution).
    execute_values: bool = False

    def _mean(self, attribute: str, weighted: bool = False) -> float:
        if not self.records:
            return 0.0
        values = np.array([getattr(r, attribute) for r in self.records])
        if weighted:
            weights = np.array([r.transactions for r in self.records], dtype=float)
            if weights.sum() == 0:
                return 0.0
            return float(np.average(values, weights=weights))
        return float(values.mean())

    @property
    def epochs(self) -> int:
        return len(self.records)

    @property
    def mean_cross_shard_ratio(self) -> float:
        """Transaction-weighted average cross-shard ratio."""
        return self._mean("cross_shard_ratio", weighted=True)

    @property
    def mean_workload_deviation(self) -> float:
        return self._mean("workload_deviation")

    @property
    def mean_normalized_throughput(self) -> float:
        return self._mean("normalized_throughput")

    @property
    def mean_execution_time(self) -> float:
        return self._mean("execution_time")

    @property
    def mean_unit_time(self) -> float:
        return self._mean("unit_time")

    @property
    def mean_input_bytes(self) -> float:
        return self._mean("input_bytes")

    @property
    def total_migrations(self) -> int:
        return int(sum(r.migrations for r in self.records))

    @property
    def total_proposed_migrations(self) -> int:
        return int(sum(r.proposed_migrations for r in self.records))

    @property
    def total_transactions(self) -> int:
        return int(sum(r.transactions for r in self.records))

    # -- executed-value aggregates (zero in metrics-only runs) -----------------

    @property
    def total_executed_transactions(self) -> int:
        return int(sum(r.executed_transactions for r in self.records))

    @property
    def total_settled_volume(self) -> float:
        return fsum(r.settled_volume for r in self.records)

    @property
    def total_overdraft_aborts(self) -> int:
        return int(sum(r.overdraft_aborts for r in self.records))

    @property
    def final_in_flight_receipts(self) -> int:
        """Receipts still pending after the last recorded epoch."""
        if not self.records:
            return 0
        return self.records[-1].in_flight_receipts


@dataclass
class _EpochExecution:
    """Substrate-side measurements of one executed epoch."""

    executed_transactions: int = 0
    settled_volume: float = 0.0
    in_flight_receipts: int = 0
    overdraft_aborts: int = 0


class ExecutionSubstrate:
    """The chain substrate the unified engine drives per epoch.

    Owns a :class:`~repro.chain.ledger.Ledger` (beacon chain + epoch
    reconfigurator) over a :class:`~repro.chain.crossshard.CrossShardExecutor`
    with per-shard state stores, genesis-funded either with a uniform
    supply (the legacy default) or with per-account balances derived
    from the trace's observed value flow (``funding="observed"`` —
    value-faithful replay). The substrate keeps its *own* mapping
    object — synchronised to the engine's value-for-value — so the
    metrics path's object flow (and thus its numbers) is untouched by
    execution.
    """

    def __init__(
        self, trace: Trace, mapping: ShardMapping, config: SimulationConfig
    ) -> None:
        # Local imports keep the metrics-only engine free of the chain
        # execution layer (and its import cost) unless the flag is on.
        from repro.chain.crossshard import CrossShardExecutor
        from repro.chain.economics import observed_funding_balances
        from repro.chain.ledger import Ledger
        from repro.chain.state import StateRegistry

        self.config = config
        self.mapping = mapping.copy()
        self.registry = StateRegistry(
            config.params.k,
            backend=config.state_backend,
            n_accounts=trace.n_accounts,
        )
        self.executor = CrossShardExecutor(
            self.registry,
            self.mapping,
            relay_delay_blocks=config.relay_delay_blocks,
        )
        self.ledger = Ledger(config.params, self.mapping, executor=self.executor)
        accounts = np.arange(trace.n_accounts, dtype=np.int64)
        if config.funding == FUNDING_OBSERVED:
            balances = observed_funding_balances(
                trace.batch, trace.n_accounts, headroom=config.funding_headroom
            )
            self.executor.fund_many(accounts, balances)
            self.genesis_supply = float(np.sum(balances, dtype=np.float64))
        else:
            self.executor.fund_many(accounts, config.initial_balance)
            self.genesis_supply = float(trace.n_accounts) * config.initial_balance

    def total_value(self) -> float:
        """Resident balances + in-flight receipts + collected fees
        (conserved against the genesis supply)."""
        return self.executor.total_value()

    def place_new_accounts(
        self, accounts: np.ndarray, shards: np.ndarray
    ) -> None:
        """Mirror first-seen placements: update phi and move state."""
        self.mapping.assign_many(accounts, shards)
        self.executor.apply_migration_batch(accounts, shards)

    def execute_epoch(self, batch: TransactionBatch) -> _EpochExecution:
        """Run the epoch's transfers; return the executed-value metrics."""
        stats = _EpochExecution()
        for report in self.ledger.execute_epoch(batch):
            stats.executed_transactions += (
                report.intra_executed + report.withdraws
            )
            stats.settled_volume += report.settled_value
            stats.overdraft_aborts += report.failed
        stats.in_flight_receipts = len(self.executor.ledger)
        return stats

    def reconfigure(self, epoch: int, target: ShardMapping) -> None:
        """Commit the allocator's mapping update as beacon MRs.

        Every account whose shard changed becomes one row of a columnar
        :class:`~repro.chain.migration.MigrationRequestBatch` (no
        per-account request objects); the uncapped commitment round
        plus batched reconfiguration applies them to the substrate's
        phi *and* moves the account state between stores as grouped
        gather/scatter in the same pass (Section III-B-2 semantics) —
        after which the substrate's mapping equals ``target`` value for
        value.
        """
        from repro.chain.migration import MigrationRequestBatch

        moved = self.mapping.diff(target)
        batch = MigrationRequestBatch(
            moved,
            self.mapping.as_array()[moved],
            target.as_array()[moved],
            epoch=epoch,
        )
        self.ledger.submit_migration_batch(batch)
        self.ledger.commit_migrations(capacity=None)
        self.ledger.reconfigure()


class Simulation:
    """Drives one allocator over one trace under one configuration."""

    def __init__(
        self,
        trace: Trace,
        allocator: Allocator,
        config: SimulationConfig,
    ) -> None:
        self.trace = trace
        self.allocator = allocator
        self.config = config
        #: The chain substrate of the last ``execute_values`` run
        #: (None before run() or in metrics-only mode) — exposed for
        #: conservation checks and state inspection.
        self.substrate: Optional[ExecutionSubstrate] = None

    def run(self) -> SimulationResult:
        """Execute the full evaluation protocol; return the result."""
        params = self.config.params
        history, evaluation = self.trace.split(self.config.history_fraction)

        mapping = self.allocator.initialize(history, params)
        if mapping.k != params.k:
            raise SimulationError(
                f"allocator produced k={mapping.k}, expected {params.k}"
            )
        if mapping.n_accounts < self.trace.n_accounts:
            raise SimulationError(
                "allocator's initial mapping must cover the account universe "
                f"({mapping.n_accounts} < {self.trace.n_accounts})"
            )

        substrate: Optional[ExecutionSubstrate] = None
        if self.config.execute_values:
            substrate = ExecutionSubstrate(self.trace, mapping, self.config)
            self.substrate = substrate

        seen = np.zeros(self.trace.n_accounts, dtype=bool)
        seen[history.active_accounts()] = True

        result = SimulationResult(
            allocator_name=self.allocator.name,
            params=params,
            execute_values=self.config.execute_values,
        )
        epoch_views = evaluation.epoch_list(params.tau, self.config.max_epochs)
        empty = TransactionBatch.empty()

        for position, view in enumerate(epoch_views):
            batch = view.batch
            if len(batch) == 0:
                continue
            capacity = params.derive_capacity(len(batch))

            # 1. Place accounts never seen before.
            touched = batch.touched_accounts()
            new_ids = touched[~seen[touched]]
            if len(new_ids):
                placement_context = UpdateContext(
                    epoch=view.index,
                    params=params,
                    committed=empty,
                    mempool=batch,
                    capacity=capacity,
                )
                placements = self.allocator.place_new_accounts(
                    new_ids, mapping, placement_context
                )
                mapping.assign_many(new_ids, placements)
                seen[new_ids] = True
                if substrate is not None:
                    substrate.place_new_accounts(new_ids, placements)

            # 2. Metrics under the previous epoch's allocation.
            ratio, deviation, norm_throughput, _ = epoch_metrics(
                batch, mapping, params.eta, capacity
            )

            # 2b. Value execution under the same allocation (unified
            # engine): the substrate's mapping equals the engine's at
            # this point, so classification matches the metrics above.
            execution = (
                substrate.execute_epoch(batch)
                if substrate is not None
                else _EpochExecution()
            )

            # 3. Allocator update for the next epoch.
            if self.config.oracle_mode == ORACLE_LOOKAHEAD:
                mempool = (
                    epoch_views[position + 1].batch
                    if position + 1 < len(epoch_views)
                    else empty
                )
            else:
                mempool = batch
            context = UpdateContext(
                epoch=view.index,
                params=params,
                committed=batch,
                mempool=mempool,
                capacity=capacity,
            )
            update = self.allocator.update(mapping, context)
            if update.mapping.k != params.k:
                raise SimulationError("allocator changed k during update")
            if substrate is not None:
                substrate.reconfigure(view.index, update.mapping)
            mapping = update.mapping

            result.records.append(
                EpochRecord(
                    epoch=view.index,
                    transactions=len(batch),
                    cross_shard_ratio=ratio,
                    workload_deviation=deviation,
                    normalized_throughput=norm_throughput,
                    execution_time=update.execution_time,
                    unit_time=update.unit_time,
                    input_bytes=update.input_bytes,
                    migrations=update.migrations,
                    proposed_migrations=update.proposed_migrations,
                    new_accounts=len(new_ids),
                    executed_transactions=execution.executed_transactions,
                    settled_volume=execution.settled_volume,
                    in_flight_receipts=execution.in_flight_receipts,
                    overdraft_aborts=execution.overdraft_aborts,
                )
            )
        return result
