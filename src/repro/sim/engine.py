"""The epoch-driven simulation engine (evaluation protocol of Section V).

Protocol per evaluation epoch ``t``:

1. Accounts appearing for the first time are placed by the allocator's
   new-account rule (hash methods hash them, graph methods randomise,
   Mosaic clients choose for themselves).
2. The epoch's transactions are processed under the mapping computed at
   the end of epoch ``t - 1``; the effectiveness metrics are recorded
   ("evaluation metrics are calculated using the data from the current
   epoch based on the allocation results computed at the end of the
   preceding epoch").
3. The allocator updates the mapping for epoch ``t + 1``. It sees the
   epoch's committed transactions plus, as its workload oracle, the
   mempool of pending transactions — the next epoch's batch in
   ``lookahead`` mode (the paper's setup) or the current epoch's batch
   in ``trailing`` mode (ablation).

The loop is columnar end to end: every epoch is a
:class:`TransactionBatch` view over the trace's arrays, metrics run
through the fused numpy kernels, and no per-transaction Python object
is ever materialised on this path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.allocation.base import Allocator, UpdateContext
from repro.chain.mapping import ShardMapping
from repro.chain.params import ProtocolParams
from repro.chain.transaction import TransactionBatch
from repro.data.trace import Trace
from repro.errors import SimulationError
from repro.sim.metrics import epoch_metrics
from repro.util.validation import check_in_range

ORACLE_LOOKAHEAD = "lookahead"
ORACLE_TRAILING = "trailing"


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run."""

    params: ProtocolParams
    history_fraction: float = 0.9
    max_epochs: Optional[int] = None
    oracle_mode: str = ORACLE_LOOKAHEAD

    def __post_init__(self) -> None:
        check_in_range("history_fraction", self.history_fraction, 0.0, 1.0)
        if self.oracle_mode not in (ORACLE_LOOKAHEAD, ORACLE_TRAILING):
            raise SimulationError(
                f"oracle_mode must be '{ORACLE_LOOKAHEAD}' or "
                f"'{ORACLE_TRAILING}', got {self.oracle_mode!r}"
            )
        if self.max_epochs is not None and self.max_epochs < 1:
            raise SimulationError(
                f"max_epochs must be >= 1, got {self.max_epochs}"
            )


@dataclass
class EpochRecord:
    """Per-epoch measurements."""

    epoch: int
    transactions: int
    cross_shard_ratio: float
    workload_deviation: float
    normalized_throughput: float
    execution_time: float
    unit_time: float
    input_bytes: float
    migrations: int
    proposed_migrations: int
    new_accounts: int


@dataclass
class SimulationResult:
    """Aggregated outcome of one run."""

    allocator_name: str
    params: ProtocolParams
    records: List[EpochRecord] = field(default_factory=list)

    def _mean(self, attribute: str, weighted: bool = False) -> float:
        if not self.records:
            return 0.0
        values = np.array([getattr(r, attribute) for r in self.records])
        if weighted:
            weights = np.array([r.transactions for r in self.records], dtype=float)
            if weights.sum() == 0:
                return 0.0
            return float(np.average(values, weights=weights))
        return float(values.mean())

    @property
    def epochs(self) -> int:
        return len(self.records)

    @property
    def mean_cross_shard_ratio(self) -> float:
        """Transaction-weighted average cross-shard ratio."""
        return self._mean("cross_shard_ratio", weighted=True)

    @property
    def mean_workload_deviation(self) -> float:
        return self._mean("workload_deviation")

    @property
    def mean_normalized_throughput(self) -> float:
        return self._mean("normalized_throughput")

    @property
    def mean_execution_time(self) -> float:
        return self._mean("execution_time")

    @property
    def mean_unit_time(self) -> float:
        return self._mean("unit_time")

    @property
    def mean_input_bytes(self) -> float:
        return self._mean("input_bytes")

    @property
    def total_migrations(self) -> int:
        return int(sum(r.migrations for r in self.records))

    @property
    def total_proposed_migrations(self) -> int:
        return int(sum(r.proposed_migrations for r in self.records))

    @property
    def total_transactions(self) -> int:
        return int(sum(r.transactions for r in self.records))


class Simulation:
    """Drives one allocator over one trace under one configuration."""

    def __init__(
        self,
        trace: Trace,
        allocator: Allocator,
        config: SimulationConfig,
    ) -> None:
        self.trace = trace
        self.allocator = allocator
        self.config = config

    def run(self) -> SimulationResult:
        """Execute the full evaluation protocol; return the result."""
        params = self.config.params
        history, evaluation = self.trace.split(self.config.history_fraction)

        mapping = self.allocator.initialize(history, params)
        if mapping.k != params.k:
            raise SimulationError(
                f"allocator produced k={mapping.k}, expected {params.k}"
            )
        if mapping.n_accounts < self.trace.n_accounts:
            raise SimulationError(
                "allocator's initial mapping must cover the account universe "
                f"({mapping.n_accounts} < {self.trace.n_accounts})"
            )

        seen = np.zeros(self.trace.n_accounts, dtype=bool)
        seen[history.active_accounts()] = True

        result = SimulationResult(
            allocator_name=self.allocator.name, params=params
        )
        epoch_views = evaluation.epoch_list(params.tau, self.config.max_epochs)
        empty = TransactionBatch.empty()

        for position, view in enumerate(epoch_views):
            batch = view.batch
            if len(batch) == 0:
                continue
            capacity = params.derive_capacity(len(batch))

            # 1. Place accounts never seen before.
            touched = batch.touched_accounts()
            new_ids = touched[~seen[touched]]
            if len(new_ids):
                placement_context = UpdateContext(
                    epoch=view.index,
                    params=params,
                    committed=empty,
                    mempool=batch,
                    capacity=capacity,
                )
                placements = self.allocator.place_new_accounts(
                    new_ids, mapping, placement_context
                )
                mapping.assign_many(new_ids, placements)
                seen[new_ids] = True

            # 2. Metrics under the previous epoch's allocation.
            ratio, deviation, norm_throughput, _ = epoch_metrics(
                batch, mapping, params.eta, capacity
            )

            # 3. Allocator update for the next epoch.
            if self.config.oracle_mode == ORACLE_LOOKAHEAD:
                mempool = (
                    epoch_views[position + 1].batch
                    if position + 1 < len(epoch_views)
                    else empty
                )
            else:
                mempool = batch
            context = UpdateContext(
                epoch=view.index,
                params=params,
                committed=batch,
                mempool=mempool,
                capacity=capacity,
            )
            update = self.allocator.update(mapping, context)
            if update.mapping.k != params.k:
                raise SimulationError("allocator changed k during update")
            mapping = update.mapping

            result.records.append(
                EpochRecord(
                    epoch=view.index,
                    transactions=len(batch),
                    cross_shard_ratio=ratio,
                    workload_deviation=deviation,
                    normalized_throughput=norm_throughput,
                    execution_time=update.execution_time,
                    unit_time=update.unit_time,
                    input_bytes=update.input_bytes,
                    migrations=update.migrations,
                    proposed_migrations=update.proposed_migrations,
                    new_accounts=len(new_ids),
                )
            )
        return result
