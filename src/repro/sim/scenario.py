"""Named scenario presets and the one-call comparison API.

``run_comparison`` is the convenience entry point a downstream user
reaches for first: pick a scenario (or bring your own trace), pick the
methods, get back one summary per method. The presets encode the
workload regimes the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.allocation.base import Allocator
from repro.allocation.hash_based import HashAllocator
from repro.allocation.metis_like import MetisLikeAllocator
from repro.allocation.orbit import OrbitAllocator
from repro.allocation.txallo import TxAlloAllocator
from repro.chain.params import ProtocolParams
from repro.core.mosaic import MosaicAllocator
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.trace import Trace
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation, SimulationConfig, SimulationResult
from repro.sim.recorder import summarize_results

AllocatorFactory = Callable[[], Allocator]


@dataclass(frozen=True)
class Scenario:
    """A named workload + protocol configuration."""

    name: str
    description: str
    trace_config: EthereumTraceConfig
    params: ProtocolParams
    history_fraction: float = 0.9

    def build_trace(self) -> Trace:
        """Generate this scenario's trace (deterministic per seed)."""
        return generate_ethereum_like_trace(self.trace_config)

    def simulation_config(self) -> SimulationConfig:
        return SimulationConfig(
            params=self.params, history_fraction=self.history_fraction
        )


def _scenario(name, description, trace_kwargs, params_kwargs):
    return Scenario(
        name=name,
        description=description,
        trace_config=EthereumTraceConfig(
            hub_fraction=0.01, hub_transaction_share=0.12, **trace_kwargs
        ),
        params=ProtocolParams(**params_kwargs),
    )


#: Built-in scenarios, keyed by name.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        _scenario(
            "paper-default",
            "The paper's default setting scaled to laptop size: "
            "k = 16, eta = 2, community-structured traffic.",
            dict(n_accounts=4_000, n_transactions=50_000, n_blocks=3_000, seed=1),
            dict(k=16, eta=2.0, tau=30, seed=1),
        ),
        _scenario(
            "small-shards",
            "Few shards (k = 4), where allocation is most stable — the "
            "paper's Table V configuration.",
            dict(n_accounts=3_000, n_transactions=40_000, n_blocks=2_400, seed=2),
            dict(k=4, eta=2.0, tau=30, seed=2),
        ),
        _scenario(
            "expensive-cross-shard",
            "High cross-shard difficulty (eta = 10): cross-shard "
            "transactions dominate shard capacity.",
            dict(n_accounts=3_000, n_transactions=40_000, n_blocks=2_400, seed=3),
            dict(k=16, eta=10.0, tau=30, seed=3),
        ),
        _scenario(
            "onboarding-wave",
            "A quarter of the account universe arrives during the "
            "evaluation window — the new-account regime where "
            "client-driven allocation shines.",
            dict(
                n_accounts=3_000,
                n_transactions=40_000,
                n_blocks=2_400,
                new_account_fraction=0.25,
                seed=4,
            ),
            dict(k=8, eta=2.0, tau=30, beta=0.5, seed=4),
        ),
        _scenario(
            "informed-clients",
            "Clients know 75% of their future transactions (beta = 0.75), "
            "the sweet spot of the paper's Table V.",
            dict(n_accounts=3_000, n_transactions=40_000, n_blocks=2_400, seed=5),
            dict(k=4, eta=2.0, tau=30, beta=0.75, seed=5),
        ),
    )
}

#: Default method set, keyed by display name.
DEFAULT_METHODS: Dict[str, AllocatorFactory] = {
    "mosaic-pilot": lambda: MosaicAllocator(initializer=TxAlloAllocator()),
    "txallo": lambda: TxAlloAllocator(mode="full"),
    "orbit": OrbitAllocator,
    "metis": MetisLikeAllocator,
    "hash-random": HashAllocator,
}


def get_scenario(name: str) -> Scenario:
    """Look up a built-in scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def run_comparison(
    scenario: Scenario,
    methods: Optional[Sequence[str]] = None,
    trace: Optional[Trace] = None,
    factories: Optional[Dict[str, AllocatorFactory]] = None,
) -> Dict[str, Dict[str, object]]:
    """Run several allocators on one scenario; return summaries by name.

    Args:
        scenario: the scenario to run (use :func:`get_scenario` or build
            your own).
        methods: subset of method names (default: all of
            ``DEFAULT_METHODS``).
        trace: pre-built trace to reuse across calls (default: generate
            from the scenario).
        factories: custom method-name -> allocator-factory map.
    """
    catalogue = dict(DEFAULT_METHODS)
    if factories:
        catalogue.update(factories)
    chosen = list(methods) if methods is not None else list(catalogue)
    unknown = [m for m in chosen if m not in catalogue]
    if unknown:
        raise ConfigurationError(
            f"unknown methods {unknown}; available: {sorted(catalogue)}"
        )
    if trace is None:
        trace = scenario.build_trace()
    config = scenario.simulation_config()

    summaries: Dict[str, Dict[str, object]] = {}
    for name in chosen:
        result = Simulation(trace, catalogue[name](), config).run()
        result.allocator_name = name
        summary = summarize_results(result)
        summary["scenario"] = scenario.name
        summaries[name] = summary
    return summaries
