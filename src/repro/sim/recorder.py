"""Result recording and aggregation for the benchmark harness."""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.sim.engine import SimulationResult


def summarize_results(result: SimulationResult) -> Dict[str, object]:
    """Flatten a :class:`SimulationResult` into a JSON-friendly summary.

    Executed-value aggregates are only present for unified-engine runs
    (``execute_values=True``), so metrics-only summaries — and every
    digest or golden built from them — are unchanged by the flag's
    existence.
    """
    summary: Dict[str, object] = {
        "allocator": result.allocator_name,
        "k": result.params.k,
        "eta": result.params.eta,
        "tau": result.params.tau,
        "beta": result.params.beta,
        "epochs": result.epochs,
        "total_transactions": result.total_transactions,
        "mean_cross_shard_ratio": result.mean_cross_shard_ratio,
        "mean_workload_deviation": result.mean_workload_deviation,
        "mean_normalized_throughput": result.mean_normalized_throughput,
        "mean_execution_time": result.mean_execution_time,
        "mean_unit_time": result.mean_unit_time,
        "mean_input_bytes": result.mean_input_bytes,
        "total_migrations": result.total_migrations,
        "total_proposed_migrations": result.total_proposed_migrations,
    }
    if result.execute_values:
        summary["total_executed_transactions"] = (
            result.total_executed_transactions
        )
        summary["total_settled_volume"] = result.total_settled_volume
        summary["total_overdraft_aborts"] = result.total_overdraft_aborts
        summary["final_in_flight_receipts"] = result.final_in_flight_receipts
    # Network aggregates appear only for non-ideal networks, so every
    # pre-network summary — and every digest built from one — stays
    # byte-identical under the default ideal model.
    if result.execute_values and result.network != "ideal":
        summary["network"] = result.network
        summary["total_delivered_messages"] = result.total_delivered_messages
        summary["total_dropped_messages"] = result.total_dropped_messages
        summary["total_retransmissions"] = result.total_retransmissions
        summary["total_duplicate_deliveries"] = (
            result.total_duplicate_deliveries
        )
        summary["total_timeout_refunds"] = result.total_timeout_refunds
        summary["mean_confirmation_latency_blocks"] = (
            result.mean_confirmation_latency_blocks
        )
        summary["max_receipt_staleness_p99"] = (
            result.max_receipt_staleness_p99
        )
        summary["max_conservation_drift"] = result.max_conservation_drift
    return summary


class ResultRecorder:
    """Collects run summaries and persists them as JSON.

    The benchmark harness records every configuration it runs so
    EXPERIMENTS.md can be regenerated from one artefact.
    """

    def __init__(self) -> None:
        self._entries: List[Dict[str, object]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Sequence[Dict[str, object]]:
        return tuple(self._entries)

    def record(
        self,
        result: SimulationResult,
        experiment: str,
        extra: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Summarise and store one run under an experiment label."""
        summary = summarize_results(result)
        summary["experiment"] = experiment
        if extra:
            summary.update(extra)
        self._entries.append(summary)
        return summary

    def by_experiment(self, experiment: str) -> List[Dict[str, object]]:
        """All summaries recorded under the given experiment label."""
        return [e for e in self._entries if e.get("experiment") == experiment]

    def save(self, path: Union[str, Path]) -> Path:
        """Write all entries to ``path`` as a JSON array."""
        path = Path(path)
        path.write_text(json.dumps(self._entries, indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultRecorder":
        """Load a recorder previously saved with :meth:`save`."""
        recorder = cls()
        recorder._entries = json.loads(Path(path).read_text())
        return recorder
