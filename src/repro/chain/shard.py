"""A single shard chain ``S_i``: an append-only chain of blocks."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chain.block import GENESIS_HASH, Block
from repro.errors import BlockLinkError, ValidationError


class ShardChain:
    """One shard's block chain.

    The chain enforces hash linkage on append: every block must extend the
    current tip. Payloads are opaque; the ledger stores per-block
    transaction-count summaries rather than full transaction objects to
    keep long simulations memory-friendly (the columnar trace retains the
    full data).
    """

    def __init__(self, shard_id: int) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        self.shard_id = shard_id
        self.chain_id = f"shard-{shard_id}"
        self._blocks: List[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def blocks(self) -> Sequence[Block]:
        """Read-only view of the block list."""
        return tuple(self._blocks)

    @property
    def tip(self) -> Optional[Block]:
        """The latest block, or None for an empty chain."""
        return self._blocks[-1] if self._blocks else None

    @property
    def tip_hash(self) -> str:
        """Hash the next block must reference as its parent."""
        return self._blocks[-1].block_hash if self._blocks else GENESIS_HASH

    @property
    def height(self) -> int:
        """Height of the tip (genesis = 0); -1 when empty."""
        return len(self._blocks) - 1

    def append_block(self, payload: Sequence[object], epoch: int = 0) -> Block:
        """Produce and append the next block carrying ``payload``."""
        block = Block.build(
            chain_id=self.chain_id,
            height=len(self._blocks),
            parent_hash=self.tip_hash,
            payload=payload,
            epoch=epoch,
        )
        self._blocks.append(block)
        return block

    def append_existing(self, block: Block) -> None:
        """Append an externally built block after verifying linkage."""
        if block.header.chain_id != self.chain_id:
            raise BlockLinkError(
                f"block for {block.header.chain_id!r} appended to {self.chain_id!r}"
            )
        if block.header.height != len(self._blocks):
            raise BlockLinkError(
                f"expected height {len(self._blocks)}, got {block.header.height}"
            )
        if block.header.parent_hash != self.tip_hash:
            raise BlockLinkError("block parent hash does not match chain tip")
        self._blocks.append(block)

    def verify(self) -> None:
        """Re-verify the full hash chain; raises on corruption."""
        parent = GENESIS_HASH
        for height, block in enumerate(self._blocks):
            if block.header.height != height:
                raise BlockLinkError(f"height mismatch at {height}")
            if block.header.parent_hash != parent:
                raise BlockLinkError(f"broken parent link at height {height}")
            parent = block.block_hash

    def blocks_in_epoch(self, epoch: int) -> List[Block]:
        """All blocks tagged with the given epoch index."""
        return [b for b in self._blocks if b.header.epoch == epoch]
