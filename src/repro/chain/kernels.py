"""Vectorised epoch kernels: the shared numpy hot path.

Every per-epoch inner loop of the evaluation protocol funnels through
the pure-ndarray kernels in this module:

* **Classification** — sender/receiver shard lookup and the cross-shard
  mask, computed exactly once per (batch, mapping) pair and reused by
  the workload, throughput and ratio computations
  (:func:`classify_kernel`, consumed by ``chain/mempool.py``,
  ``sim/metrics.py`` and ``chain/crossshard.py``).
* **Workload accounting** — the per-shard workload vector ``omega``
  (:func:`workload_kernel`).
* **Epoch metrics** — the fused cross-ratio / deviation / throughput
  bundle the simulation engine records per epoch
  (:func:`epoch_metrics_kernel`, consumed by ``sim/engine.py`` via
  ``sim/metrics.py``).
* **Migration accounting** — stale-filtering, per-account dedup and
  gain-prioritised capacity capping of one epoch's migration requests
  over columnar arrays (:func:`select_migrations_kernel`, consumed by
  ``core/migration.py`` / ``chain/migration.py``).

Each kernel is element-for-element equivalent to the scalar reference
path it replaces; ``tests/test_kernels_equivalence.py`` property-tests
that equivalence across randomized batches and edge cases (empty
epochs, a single shard, all-new accounts).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "classify_kernel",
    "workload_kernel",
    "deviation_kernel",
    "throughput_kernel",
    "epoch_metrics_kernel",
    "select_migrations_kernel",
]


def classify_kernel(
    senders: np.ndarray,
    receivers: np.ndarray,
    shard_of: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify transactions under a dense account->shard array.

    Returns ``(sender_shards, receiver_shards, is_cross)``; a
    transaction is cross-shard when its two shards differ
    (self-transfers are intra-shard by definition).
    """
    sender_shards = shard_of[senders]
    receiver_shards = shard_of[receivers]
    return sender_shards, receiver_shards, sender_shards != receiver_shards


def workload_kernel(
    sender_shards: np.ndarray,
    receiver_shards: np.ndarray,
    is_cross: np.ndarray,
    k: int,
    eta: float,
) -> np.ndarray:
    """Per-shard workload ``omega_i = |T_i^I| + eta * |T_i^C|``.

    A cross-shard transaction contributes ``eta`` units to *both* shards
    it touches; an intra-shard transaction one unit to its single shard.
    """
    if eta < 1:
        raise ValidationError(f"eta must be >= 1, got {eta}")
    intra = ~is_cross
    workloads = np.bincount(sender_shards[intra], minlength=k).astype(np.float64)
    workloads += eta * np.bincount(sender_shards[is_cross], minlength=k)
    workloads += eta * np.bincount(receiver_shards[is_cross], minlength=k)
    return workloads


def deviation_kernel(omega: np.ndarray) -> float:
    """The paper's workload deviation over a workload vector."""
    if omega.ndim != 1 or len(omega) == 0:
        raise ValidationError("omega must be a non-empty 1-D vector")
    if omega.min() < 0:
        raise ValidationError("workloads must be >= 0")
    mean = omega.mean()
    if mean == 0:
        return 0.0
    return float(np.sqrt(np.square(omega - mean).sum() / (len(omega) * mean)))


def throughput_kernel(
    sender_shards: np.ndarray,
    receiver_shards: np.ndarray,
    is_cross: np.ndarray,
    omega: np.ndarray,
    capacity: float,
) -> float:
    """Transactions completed in one epoch under the fluid capacity model.

    Each shard serves the fraction ``min(1, capacity / omega_i)`` of its
    work; a cross-shard transaction completes at the rate of its slower
    shard.
    """
    if capacity <= 0:
        raise ValidationError(f"capacity must be > 0, got {capacity}")
    if len(sender_shards) == 0:
        return 0.0
    with np.errstate(divide="ignore"):
        fraction = np.where(omega > 0, np.minimum(1.0, capacity / omega), 1.0)
    per_tx = np.where(
        is_cross,
        np.minimum(fraction[sender_shards], fraction[receiver_shards]),
        fraction[sender_shards],
    )
    return float(per_tx.sum())


def epoch_metrics_kernel(
    senders: np.ndarray,
    receivers: np.ndarray,
    shard_of: np.ndarray,
    k: int,
    eta: float,
    capacity: float,
) -> Tuple[float, float, float, np.ndarray]:
    """Fused per-epoch metric bundle from a single classification pass.

    Returns ``(cross_ratio, deviation, normalized_throughput, omega)``.
    Equivalent to calling the individual metric functions, which each
    re-classify the batch; this kernel classifies once and shares the
    result, the main per-epoch saving of the vectorised pipeline.

    The deviation is evaluated over ``omega / capacity`` (workloads in
    units of the shard capacity ``lambda``), matching
    ``sim/metrics.epoch_metrics``.
    """
    if capacity <= 0:
        raise ValidationError(f"capacity must be > 0, got {capacity}")
    sender_shards, receiver_shards, is_cross = classify_kernel(
        senders, receivers, shard_of
    )
    omega = workload_kernel(sender_shards, receiver_shards, is_cross, k, eta)
    ratio = float(is_cross.mean()) if len(is_cross) else 0.0
    deviation = deviation_kernel(omega / capacity)
    completed = throughput_kernel(
        sender_shards, receiver_shards, is_cross, omega, capacity
    )
    return ratio, deviation, completed / capacity, omega


def select_migrations_kernel(
    accounts: np.ndarray,
    from_shards: np.ndarray,
    to_shards: np.ndarray,
    gains: np.ndarray,
    shard_of: Optional[np.ndarray],
    k: Optional[int],
    capacity: Optional[int],
    fifo: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised migration-request accounting for one epoch.

    Implements the beacon-chain commitment policy over columnar request
    arrays (indices refer to positions in the input arrays):

    1. **Stale filter** (only when ``shard_of``/``k`` are given): drop
       requests whose account is outside the mapping, whose target shard
       is out of range, or whose ``from_shard`` no longer matches the
       mapping.
    2. **Dedup** per account — FIFO keeps the first submission, the
       gain-prioritised mode keeps the highest-gain request (earliest
       submission wins gain ties, matching the scalar reference).
    3. **Capacity cap** — FIFO commits in submission order; otherwise
       requests commit by descending gain, ties broken by account id.

    Returns ``(committed_idx, rejected_idx)``. ``committed_idx`` is in
    commitment order; ``rejected_idx`` is in no particular order.
    """
    n = len(accounts)
    if not (len(from_shards) == len(to_shards) == len(gains) == n):
        raise ValidationError("request arrays must have equal length")
    if capacity is not None and capacity < 0:
        raise ValidationError(f"capacity must be >= 0, got {capacity}")
    indices = np.arange(n)
    if n == 0:
        return indices, indices.copy()

    valid = np.ones(n, dtype=bool)
    if shard_of is not None:
        if k is None:
            raise ValidationError("k is required when shard_of is given")
        in_universe = accounts < len(shard_of)
        valid = in_universe & (to_shards < k)
        safe_accounts = np.where(in_universe, accounts, 0)
        valid &= np.where(in_universe, shard_of[safe_accounts] == from_shards, False)
    valid_idx = indices[valid]
    stale_idx = indices[~valid]
    if len(valid_idx) == 0:
        return valid_idx, stale_idx

    if fifo:
        # Keep the first submission per account, in submission order.
        _, first_pos = np.unique(accounts[valid_idx], return_index=True)
        keep = valid_idx[np.sort(first_pos)]
    else:
        # Highest gain per account; earliest submission wins exact ties
        # (stable mergesort on (account, -gain) keys).
        sub = valid_idx
        order = np.lexsort((sub, -gains[sub]))
        ranked = sub[order]
        _, first_pos = np.unique(accounts[ranked], return_index=True)
        survivors = ranked[np.sort(first_pos)]
        # Commitment order: descending gain, ties by account id.
        commit_order = np.lexsort((accounts[survivors], -gains[survivors]))
        keep = survivors[commit_order]

    if capacity is not None and capacity < len(keep):
        committed = keep[:capacity]
        over = keep[capacity:]
    else:
        committed = keep
        over = keep[:0]
    committed_mask = np.zeros(n, dtype=bool)
    committed_mask[committed] = True
    rejected = indices[~committed_mask]
    # Preserve the committed order; rejected indices carry no order
    # guarantee but include duplicates, over-capacity and stale entries.
    _ = over, stale_idx
    return committed, rejected
