"""Mempool: the repository of pending transactions.

The mempool plays two roles in the paper:

1. It is what public platforms (Etherscan-like services) analyse to
   publish the per-shard workload distribution ``Omega`` that clients
   download (Section III-C-2).
2. In the simulation, the paper sets the mempool for an epoch to the
   transactions that will commit in the *next* epoch ("it is from
   analyzing transactions in the next epoch in this simulation").

:class:`Mempool` therefore wraps a pending :class:`TransactionBatch` and
can compute the per-shard workload vector under a given mapping. The
pool is columnar end to end: batches flow mempool -> miner -> executor
-> epoch metrics as parallel numpy arrays, and per-transaction
:class:`Transaction` objects exist only as lazy views (``batch.at(i)``,
iteration) for tests and error messages.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.chain.kernels import classify_kernel, workload_kernel
from repro.chain.mapping import ShardMapping
from repro.chain.transaction import Transaction, TransactionBatch
from repro.errors import UnknownAccountError


def classify_transactions(
    batch: TransactionBatch, mapping: ShardMapping
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify each transaction under ``mapping``.

    Returns ``(sender_shards, receiver_shards, is_cross)`` where
    ``is_cross[i]`` is True when the transaction touches two shards.
    Self-transfers (sender == receiver) are intra-shard by definition.
    """
    shard_of = mapping.as_array()
    if len(batch) and batch.max_account_id() >= len(shard_of):
        raise UnknownAccountError(batch.max_account_id())
    return classify_kernel(batch.senders, batch.receivers, shard_of)


def shard_workloads(
    batch: TransactionBatch, mapping: ShardMapping, eta: float
) -> np.ndarray:
    """Per-shard workload vector ``omega`` for a batch of transactions.

    Following Section V: ``omega_i = |T_i^I| + eta * |T_i^C|`` where a
    cross-shard transaction contributes ``eta`` units to *both* shards it
    touches and an intra-shard transaction contributes 1 unit to its one
    shard.
    """
    sender_shards, receiver_shards, is_cross = classify_transactions(batch, mapping)
    return workload_kernel(sender_shards, receiver_shards, is_cross, mapping.k, eta)


class Mempool:
    """A pool of pending transactions plus workload analytics."""

    def __init__(self, pending: Optional[TransactionBatch] = None) -> None:
        self._pending = pending if pending is not None else TransactionBatch.empty()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> TransactionBatch:
        """The pending transactions currently in the pool."""
        return self._pending

    def add(self, transaction: Transaction) -> None:
        """Append a single pending transaction."""
        single = TransactionBatch.from_transactions([transaction])
        self._pending = self._pending.concat(single)

    def add_batch(self, batch: TransactionBatch) -> None:
        """Append a batch of pending transactions."""
        self._pending = self._pending.concat(batch)

    def replace(self, batch: TransactionBatch) -> None:
        """Replace the entire pool (simulation epoch roll-over)."""
        self._pending = batch

    def drain(self) -> TransactionBatch:
        """Remove and return everything currently pending."""
        drained = self._pending
        self._pending = TransactionBatch.empty()
        return drained

    def workload_distribution(self, mapping: ShardMapping, eta: float) -> np.ndarray:
        """``Omega`` over the pending transactions, under ``mapping``."""
        return shard_workloads(self._pending, mapping, eta)
