"""Height-indexed on-disk segments for the beacon's committed log.

An unbounded run commits migration batches forever; keeping every one
in memory makes the beacon O(trace). :class:`SegmentedCommitLog` spills
committed :class:`~repro.chain.migration.MigrationRequestBatch` rows to
append-only columnar segment files and keeps only a height -> record
index in memory, so ``batches_since(height)`` reads exactly the height
window a caller asks for.

Segment format (version 1, little-endian, byte-stable — identical
appends produce identical bytes):

* file header: magic ``MRSG`` + ``u32`` version;
* one record per committed batch:
  ``u64 height | u64 epoch | u64 n_rows`` followed by the four row
  columns (``accounts``/``from_shards``/``to_shards`` as ``int64``,
  ``gains`` as ``float64``, each ``n_rows`` long) and a ``u32`` CRC-32
  over the record's header+column bytes.

The length-prefixed layout makes a crash mid-append detectable: a
truncated tail (or a CRC mismatch) raises the typed
:class:`~repro.errors.SegmentIntegrityError` on open, naming the file
and the last intact byte offset; reopening with ``recover=True``
truncates the partial record and the log resumes appending after it.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.chain.migration import MigrationRequestBatch
from repro.errors import SegmentIntegrityError, ValidationError

#: File header: magic + format version.
_MAGIC = b"MRSG"
_VERSION = 1
_FILE_HEADER = struct.Struct("<4sI")
#: Per-record header: height, epoch, row count.
_RECORD_HEADER = struct.Struct("<QQQ")
_CRC = struct.Struct("<I")
#: Bytes per row across the four columns (3 x int64 + 1 x float64).
_ROW_BYTES = 32
#: Row counts beyond this are treated as corruption, not allocation
#: requests (a single segment never holds 2^40 rows).
_MAX_RECORD_ROWS = 1 << 40

#: Default rows per segment before rotating to a new file.
DEFAULT_SEGMENT_ROWS = 262_144

_SEGMENT_GLOB = "seg-*.mrlog"


def _segment_name(sequence: int) -> str:
    return f"seg-{sequence:06d}.mrlog"


class _Record:
    """Index entry for one on-disk record."""

    __slots__ = ("height", "epoch", "rows", "segment", "offset")

    def __init__(
        self, height: int, epoch: int, rows: int, segment: int, offset: int
    ) -> None:
        self.height = height
        self.epoch = epoch
        self.rows = rows
        self.segment = segment
        self.offset = offset


class SegmentedCommitLog:
    """Append-only, height-indexed segment store for committed batches.

    ``directory`` is created if missing; an existing directory is
    scanned and validated on open, rebuilding the in-memory height
    index from the segment files (which is how a restarted process
    resumes an earlier log). ``segment_rows`` bounds rows per segment
    file before rotation. ``recover=True`` repairs a crash-truncated
    tail by dropping the partial record instead of raising.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        recover: bool = False,
    ) -> None:
        if segment_rows < 1:
            raise ValidationError(
                f"segment_rows must be >= 1, got {segment_rows}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_rows = int(segment_rows)
        self._paths: List[Path] = sorted(self.directory.glob(_SEGMENT_GLOB))
        self._records: List[_Record] = []
        #: Rows currently in the tail segment (rotation accounting).
        self._tail_rows = 0
        self._append_handle = None
        self._scan(recover=recover)

    # -- open/scan ----------------------------------------------------------

    def _scan(self, recover: bool) -> None:
        for position, path in enumerate(self._paths):
            is_last = position == len(self._paths) - 1
            segment_rows = self._scan_segment(
                path, position, repair=recover and is_last
            )
            if is_last:
                self._tail_rows = segment_rows

    def _scan_segment(self, path: Path, segment: int, repair: bool) -> int:
        """Validate one segment, indexing its records; return its rows."""
        data = path.read_bytes()
        offset = 0
        rows_seen = 0

        def damaged(at: int, reason: str) -> None:
            if repair:
                with path.open("r+b") as handle:
                    handle.truncate(at)
                return
            raise SegmentIntegrityError(path, at, reason)

        if len(data) < _FILE_HEADER.size:
            damaged(0, "missing or truncated file header")
            return rows_seen
        magic, version = _FILE_HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise SegmentIntegrityError(path, 0, "bad magic (not a segment)")
        if version != _VERSION:
            raise SegmentIntegrityError(
                path, 0, f"unsupported segment version {version}"
            )
        offset = _FILE_HEADER.size
        while offset < len(data):
            record_start = offset
            if len(data) - offset < _RECORD_HEADER.size:
                damaged(record_start, "truncated record header")
                return rows_seen
            height, epoch, rows = _RECORD_HEADER.unpack_from(data, offset)
            if rows > _MAX_RECORD_ROWS:
                raise SegmentIntegrityError(
                    path, record_start, f"implausible row count {rows}"
                )
            body = _RECORD_HEADER.size + rows * _ROW_BYTES
            if len(data) - record_start < body + _CRC.size:
                damaged(record_start, "truncated record body")
                return rows_seen
            (stored_crc,) = _CRC.unpack_from(data, record_start + body)
            actual_crc = zlib.crc32(data[record_start : record_start + body])
            if stored_crc != actual_crc:
                raise SegmentIntegrityError(
                    path, record_start, "record CRC mismatch"
                )
            if self._records and height <= self._records[-1].height:
                raise SegmentIntegrityError(
                    path,
                    record_start,
                    f"non-monotone height {height} after "
                    f"{self._records[-1].height}",
                )
            self._records.append(
                _Record(int(height), int(epoch), int(rows), segment, record_start)
            )
            rows_seen += int(rows)
            offset = record_start + body + _CRC.size
        return rows_seen

    # -- append -------------------------------------------------------------

    def append(self, height: int, batch: MigrationRequestBatch) -> None:
        """Append one committed batch at ``height`` (strictly increasing)."""
        if len(batch) == 0:
            raise ValidationError("cannot append an empty batch")
        if self._records and height <= self._records[-1].height:
            raise ValidationError(
                f"height {height} not above last logged height "
                f"{self._records[-1].height}"
            )
        if not self._paths or self._tail_rows >= self.segment_rows:
            self._rotate()
        header = _RECORD_HEADER.pack(int(height), int(batch.epoch), len(batch))
        columns = b"".join(
            np.ascontiguousarray(column).tobytes()
            for column in (
                batch.accounts,
                batch.from_shards,
                batch.to_shards,
                batch.gains,
            )
        )
        body = header + columns
        record = body + _CRC.pack(zlib.crc32(body))
        handle = self._tail_handle()
        offset = handle.tell()
        handle.write(record)
        handle.flush()
        self._records.append(
            _Record(
                int(height),
                int(batch.epoch),
                len(batch),
                len(self._paths) - 1,
                offset,
            )
        )
        self._tail_rows += len(batch)

    def _rotate(self) -> None:
        if self._append_handle is not None:
            self._append_handle.close()
            self._append_handle = None
        path = self.directory / _segment_name(len(self._paths))
        with path.open("wb") as handle:
            handle.write(_FILE_HEADER.pack(_MAGIC, _VERSION))
        self._paths.append(path)
        self._tail_rows = 0

    def _tail_handle(self):
        if self._append_handle is None:
            self._append_handle = self._paths[-1].open("ab")
        return self._append_handle

    def close(self) -> None:
        if self._append_handle is not None:
            self._append_handle.close()
            self._append_handle = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # -- read ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of logged records (committed batches)."""
        return len(self._records)

    @property
    def total_rows(self) -> int:
        """Total committed migration rows across every segment."""
        return sum(record.rows for record in self._records)

    @property
    def last_height(self) -> Optional[int]:
        return self._records[-1].height if self._records else None

    @property
    def segment_paths(self) -> Tuple[Path, ...]:
        return tuple(self._paths)

    def _load(self, record: _Record) -> MigrationRequestBatch:
        with self._paths[record.segment].open("rb") as handle:
            handle.seek(record.offset + _RECORD_HEADER.size)
            raw = handle.read(record.rows * _ROW_BYTES)
        if len(raw) != record.rows * _ROW_BYTES:
            raise SegmentIntegrityError(
                self._paths[record.segment],
                record.offset,
                "record shrank after indexing",
            )
        n = record.rows
        span = n * 8
        return MigrationRequestBatch(
            np.frombuffer(raw, dtype=np.int64, count=n, offset=0),
            np.frombuffer(raw, dtype=np.int64, count=n, offset=span),
            np.frombuffer(raw, dtype=np.int64, count=n, offset=2 * span),
            np.frombuffer(raw, dtype=np.float64, count=n, offset=3 * span),
            epoch=record.epoch,
        )

    def _first_at_or_above(self, height: int) -> int:
        """Index of the first record with ``record.height >= height``."""
        lo, hi = 0, len(self._records)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._records[mid].height < height:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def batch_at(self, height: int) -> Optional[MigrationRequestBatch]:
        """The batch logged at exactly ``height``, or None (empty commit)."""
        position = self._first_at_or_above(height)
        if (
            position < len(self._records)
            and self._records[position].height == height
        ):
            return self._load(self._records[position])
        return None

    def iter_batches(
        self, start_height: int = 0
    ) -> Iterator[Tuple[int, MigrationRequestBatch]]:
        """Yield ``(height, batch)`` for records at height >= ``start_height``.

        Reads one record at a time, so iterating a height window holds
        one batch in memory, never the log.
        """
        for position in range(self._first_at_or_above(start_height), len(self._records)):
            record = self._records[position]
            yield record.height, self._load(record)

    def batches_since(
        self, height: int
    ) -> List[Tuple[int, MigrationRequestBatch]]:
        """Materialise :meth:`iter_batches` for a height window."""
        return list(self.iter_batches(height))
