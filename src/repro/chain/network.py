"""Storage / communication / computation overhead model (Table VI).

The paper's Section VI compares three frameworks analytically:

====================  =======================  =============================
quantity              graph-based (miner)      Mosaic (miner)
====================  =======================  =============================
replication storage   ``|T|``                  ``|T|/k + |MR|``
replication comm.     ``|T_window|``           ``|T_window|/k + |MR_window|``
computation input     ``O(|T|)``               ``O(|T_nu|) ~ 2|T|/|A|``
====================  =======================  =============================

with hash-based miners storing/communicating ``|T|/k`` / ``|T_window|/k``
and computing over only the new-transaction window. ``OverheadModel``
turns those formulas into concrete byte counts for a measured trace so
the Table VI / Fig. 1 benches can print real numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.chain.transaction import TX_RECORD_BYTES
from repro.errors import ConfigurationError

#: Bytes charged per migration request stored on the beacon chain
#: (account address 20 B + two shard ids + gain + epoch + signature ~ 97 B).
MR_RECORD_BYTES = 97

#: Bytes per entry of the workload vector Omega a client downloads.
OMEGA_ENTRY_BYTES = 8

FRAMEWORK_GRAPH = "graph-based"
FRAMEWORK_MOSAIC = "mosaic"
FRAMEWORK_HASH = "hash-based"

FRAMEWORKS = (FRAMEWORK_GRAPH, FRAMEWORK_MOSAIC, FRAMEWORK_HASH)


@dataclass(frozen=True)
class OverheadEstimate:
    """Concrete per-participant overheads for one framework."""

    framework: str
    storage_bytes: float
    communication_bytes: float
    computation_input_bytes: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "storage_bytes": self.storage_bytes,
            "communication_bytes": self.communication_bytes,
            "computation_input_bytes": self.computation_input_bytes,
        }


class OverheadModel:
    """Evaluates the Table VI formulas for a concrete trace.

    Args:
        total_transactions: ``|T|``, all transactions ever committed.
        total_accounts: ``|A|``, all accounts.
        k: number of shards.
        window_transactions: ``|T_window|``, transactions in the recent
            synchronisation window (one epoch, ``tau`` blocks).
        committed_migrations: ``|MR|``, migration requests ever committed.
        window_migrations: ``|MR_window|``, MRs committed in the window.
    """

    def __init__(
        self,
        total_transactions: int,
        total_accounts: int,
        k: int,
        window_transactions: int,
        committed_migrations: int = 0,
        window_migrations: int = 0,
    ) -> None:
        for name, value in (
            ("total_transactions", total_transactions),
            ("total_accounts", total_accounts),
            ("window_transactions", window_transactions),
            ("committed_migrations", committed_migrations),
            ("window_migrations", window_migrations),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if total_accounts == 0:
            raise ConfigurationError("total_accounts must be >= 1")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.total_transactions = total_transactions
        self.total_accounts = total_accounts
        self.k = k
        self.window_transactions = window_transactions
        self.committed_migrations = committed_migrations
        self.window_migrations = window_migrations

    # -- per-framework estimates ------------------------------------------------

    def graph_based(self) -> OverheadEstimate:
        """Miner overhead under graph-based (Metis/TxAllo-style) allocation."""
        ledger = self.total_transactions * TX_RECORD_BYTES
        window = self.window_transactions * TX_RECORD_BYTES
        return OverheadEstimate(
            framework=FRAMEWORK_GRAPH,
            storage_bytes=ledger,
            communication_bytes=window,
            computation_input_bytes=ledger,
        )

    def mosaic(self) -> OverheadEstimate:
        """Miner overhead under Mosaic (clients run the allocator)."""
        shard_share = self.total_transactions * TX_RECORD_BYTES / self.k
        mr_storage = self.committed_migrations * MR_RECORD_BYTES
        window_share = self.window_transactions * TX_RECORD_BYTES / self.k
        mr_window = self.window_migrations * MR_RECORD_BYTES
        return OverheadEstimate(
            framework=FRAMEWORK_MOSAIC,
            storage_bytes=shard_share + mr_storage,
            communication_bytes=window_share + mr_window,
            computation_input_bytes=self.client_input_bytes(),
        )

    def hash_based(self) -> OverheadEstimate:
        """Miner overhead under hash-based static allocation."""
        shard_share = self.total_transactions * TX_RECORD_BYTES / self.k
        window_share = self.window_transactions * TX_RECORD_BYTES / self.k
        return OverheadEstimate(
            framework=FRAMEWORK_HASH,
            storage_bytes=shard_share,
            communication_bytes=window_share,
            computation_input_bytes=self.window_transactions * TX_RECORD_BYTES,
        )

    def all_frameworks(self) -> Dict[str, OverheadEstimate]:
        """Estimates for all three frameworks, keyed by framework name."""
        return {
            FRAMEWORK_GRAPH: self.graph_based(),
            FRAMEWORK_MOSAIC: self.mosaic(),
            FRAMEWORK_HASH: self.hash_based(),
        }

    # -- client-side quantities ---------------------------------------------------

    def average_client_transactions(self) -> float:
        """``|T_nu|`` on average: every tx touches two accounts -> 2|T|/|A|."""
        return 2.0 * self.total_transactions / self.total_accounts

    def client_input_bytes(self) -> float:
        """Average bytes a Mosaic client feeds Pilot: its T_nu plus Omega."""
        return (
            self.average_client_transactions() * TX_RECORD_BYTES
            + self.k * OMEGA_ENTRY_BYTES
        )
