"""Migration-fee economics and the DoS argument (Section VII-B).

The paper argues flooding attacks against Mosaic are economically
irrational: every migration request pays a fee, so sustaining a flood
costs the attacker linearly while the beacon chain's gain-prioritised,
capacity-capped commitment keeps honest high-gain requests flowing.
This module makes that argument executable:

* :class:`MigrationFeeSchedule` — a congestion-priced MR fee (flat base
  plus a surge component when the beacon mempool runs hot);
* :func:`flooding_attack_cost` — what an attacker pays to keep the
  beacon chain saturated for a number of epochs;
* :func:`simulate_flooding` — runs the commitment policy under attack
  and reports how many honest requests still commit.

It also owns the **value-faithful genesis funding** used by the unified
engine's observed-funding mode: :func:`observed_funding_balances`
derives per-account genesis balances from the value flow a trace
actually records, so an executed replay settles the trace's economics
instead of a uniform synthetic supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.chain.beacon import prioritize_requests
from repro.chain.migration import MigrationRequest
from repro.chain.transaction import TransactionBatch
from repro.errors import ConfigurationError, ValidationError


#: Canonical accumulation granularity for observed funding. Float
#: addition is non-associative, so the *order* partial sums combine in
#: is part of the funding contract: both the eager function and the
#: streaming accumulator sum fixed 65 536-row slice partials in row
#: order, which is what makes a streamed sizing pass bit-identical to
#: the materialised computation regardless of source chunk sizes.
FUNDING_CHUNK_ROWS = 65_536


def _funding_chunk_partial(chunk: TransactionBatch) -> np.ndarray:
    """Outflow-per-sender partial for one canonical chunk."""
    outflow = chunk.amounts(default=1.0)
    if chunk.fees is not None:
        outflow = outflow + chunk.fees
    return np.bincount(chunk.senders, weights=outflow)


def observed_funding_balances(
    batch: TransactionBatch,
    n_accounts: int,
    headroom: float = 0.0,
) -> np.ndarray:
    """Per-account genesis balances sufficient to replay ``batch``.

    One vectorised sufficiency pass: every account is funded with its
    total observed outflow — the sum of the values (plus fees) it sends
    anywhere in the trace. That bound is *relay-safe*: cross-shard
    credits arrive a relay delay late, so an exact prefix-min schedule
    that counts incoming credits would under-fund receivers whose
    spending rides in-flight deposits; total outflow covers every debit
    regardless of settlement timing, which is what makes replayed
    traces settle with zero overdraft aborts. Accounts that never send
    get zero. ``headroom`` scales the result (0.1 = +10%) for scenarios
    that add synthetic traffic on top of the replay.

    Batches without a ``values`` column fund each send at the
    executor's default transfer amount of 1.0, so metric traces stay
    replayable under observed funding.

    Accumulation is canonically chunked (:data:`FUNDING_CHUNK_ROWS`):
    partial sums are combined in fixed 65 536-row slices so
    :class:`ObservedFundingAccumulator` — fed the same rows in any
    chunking — produces the same bits.
    """
    if n_accounts < 0:
        raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
    if headroom < 0:
        raise ValidationError(f"headroom must be >= 0, got {headroom}")
    if len(batch) and batch.max_account_id() >= n_accounts:
        raise ValidationError(
            f"batch references account {batch.max_account_id()} but the "
            f"universe only covers {n_accounts} accounts"
        )
    balances = np.zeros(n_accounts, dtype=np.float64)
    for start in range(0, len(batch), FUNDING_CHUNK_ROWS):
        partial = _funding_chunk_partial(
            batch[start : start + FUNDING_CHUNK_ROWS]
        )
        balances[: len(partial)] += partial
    if headroom:
        balances *= 1.0 + headroom
    return balances


class ObservedFundingAccumulator:
    """Streaming twin of :func:`observed_funding_balances`.

    Feed it source chunks in row order (:meth:`add`), then
    :meth:`finalise` with the resolved universe size — the result is
    bit-identical to the eager function over the materialised
    concatenation of those chunks, for *any* incoming chunk sizes.
    Two mechanisms make that hold:

    * rows buffer to exact :data:`FUNDING_CHUNK_ROWS` boundaries before
      a partial is computed, reproducing the eager function's canonical
      partial-sum order;
    * the value column activates lazily in streamed CSV decode (chunks
      are valueless until the first nonzero value), and whether a row's
      weight is ``1.0 + fee`` (no value column in the final trace) or
      ``value-or-0.0 + fee`` (column present) is unknowable until the
      stream resolves it — so *two* hypothesis accumulators run until
      the first valued chunk kills the no-values one. Activation is
      monotone, so the surviving hypothesis matches what
      ``TransactionBatch.concat_many`` materialises.
    """

    def __init__(self, headroom: float = 0.0) -> None:
        if headroom < 0:
            raise ValidationError(f"headroom must be >= 0, got {headroom}")
        self.headroom = float(headroom)
        self._pending: List[TransactionBatch] = []
        self._pending_rows = 0
        self._activated = False
        # H1: the trace never carries values (weight = 1.0 + fee).
        self._h1: "np.ndarray | None" = np.zeros(0, dtype=np.float64)
        # H2: the trace carries values (weight = value-or-0.0 + fee).
        self._h2 = np.zeros(0, dtype=np.float64)
        self._max_id = -1
        self._rows = 0
        self._finalised = False

    @property
    def rows(self) -> int:
        """Total rows fed so far (the sizing pass's row count)."""
        return self._rows

    @property
    def max_account_id(self) -> int:
        """Largest account id seen so far (-1 when none)."""
        return self._max_id

    def add(self, chunk: TransactionBatch) -> None:
        """Feed the next chunk of the row stream."""
        if self._finalised:
            raise ValidationError("funding accumulator already finalised")
        if len(chunk) == 0:
            return
        self._rows += len(chunk)
        self._max_id = max(self._max_id, chunk.max_account_id())
        if chunk.values is not None and not self._activated:
            self._activated = True
            self._h1 = None
        self._pending.append(chunk)
        self._pending_rows += len(chunk)
        while self._pending_rows >= FUNDING_CHUNK_ROWS:
            buffered = TransactionBatch.concat_many(self._pending)
            self._consume(buffered[:FUNDING_CHUNK_ROWS])
            rest = buffered[FUNDING_CHUNK_ROWS:]
            self._pending = [rest] if len(rest) else []
            self._pending_rows = len(rest)

    def _consume(self, chunk: TransactionBatch) -> None:
        fees = chunk.fees
        if self._h1 is not None:
            self._h1 = self._accumulate(self._h1, _funding_chunk_partial(chunk))
        values = (
            chunk.values
            if chunk.values is not None
            else np.zeros(len(chunk), dtype=np.float64)
        )
        weights = values + fees if fees is not None else values
        partial = np.bincount(chunk.senders, weights=weights)
        self._h2 = self._accumulate(self._h2, partial)

    @staticmethod
    def _accumulate(acc: np.ndarray, partial: np.ndarray) -> np.ndarray:
        if len(partial) > len(acc):
            grown = np.zeros(len(partial), dtype=np.float64)
            grown[: len(acc)] = acc
            acc = grown
        acc[: len(partial)] += partial
        return acc

    def finalise(self, n_accounts: int) -> np.ndarray:
        """Flush the buffer and return the length-``n_accounts`` balances."""
        if self._finalised:
            raise ValidationError("funding accumulator already finalised")
        if n_accounts < 0:
            raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
        if self._max_id >= n_accounts:
            raise ValidationError(
                f"batch references account {self._max_id} but the "
                f"universe only covers {n_accounts} accounts"
            )
        if self._pending:
            self._consume(TransactionBatch.concat_many(self._pending))
            self._pending = []
            self._pending_rows = 0
        self._finalised = True
        acc = self._h2 if self._activated else self._h1
        assert acc is not None
        balances = np.zeros(n_accounts, dtype=np.float64)
        balances[: len(acc)] += acc
        if self.headroom:
            balances *= 1.0 + self.headroom
        return balances


@dataclass(frozen=True)
class MigrationFeeSchedule:
    """Congestion-priced fees for beacon-chain migration requests.

    ``fee = base_fee * (1 + surge_factor * max(0, demand/capacity - 1))``

    — flat while the beacon chain has headroom, rising linearly with
    over-subscription, which is the standard blockchain fee response
    the paper's DoS argument relies on.
    """

    base_fee: float = 1.0
    surge_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.base_fee <= 0:
            raise ConfigurationError(
                f"base_fee must be > 0, got {self.base_fee}"
            )
        if self.surge_factor < 0:
            raise ConfigurationError(
                f"surge_factor must be >= 0, got {self.surge_factor}"
            )

    def fee(self, demand: int, capacity: int) -> float:
        """Per-request fee when ``demand`` requests chase ``capacity`` slots."""
        if demand < 0:
            raise ValidationError(f"demand must be >= 0, got {demand}")
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        over_subscription = max(0.0, demand / capacity - 1.0)
        return self.base_fee * (1.0 + self.surge_factor * over_subscription)


def flooding_attack_cost(
    schedule: MigrationFeeSchedule,
    attack_requests_per_epoch: int,
    honest_requests_per_epoch: int,
    capacity: int,
    epochs: int,
) -> float:
    """Total fee an attacker pays to sustain a flood for ``epochs``.

    The attacker pays the congestion-priced fee for every submitted
    request (submission is paid whether or not the request commits —
    the anti-spam property the paper's argument needs).
    """
    if attack_requests_per_epoch < 0 or honest_requests_per_epoch < 0:
        raise ValidationError("request counts must be >= 0")
    if epochs < 0:
        raise ValidationError(f"epochs must be >= 0, got {epochs}")
    total = 0.0
    for _ in range(epochs):
        demand = attack_requests_per_epoch + honest_requests_per_epoch
        total += attack_requests_per_epoch * schedule.fee(demand, capacity)
    return total


@dataclass
class FloodingOutcome:
    """Result of one simulated flooding epoch."""

    honest_committed: int
    attacker_committed: int
    attacker_cost: float
    honest_cost: float

    @property
    def honest_commit_ratio(self) -> float:
        """Committed fraction of honest requests (0 when none proposed)."""
        total = self.honest_committed + self.attacker_committed
        if total == 0:
            return 0.0
        return self.honest_committed / total


def simulate_flooding(
    honest_requests: Sequence[MigrationRequest],
    attacker_accounts: Sequence[int],
    capacity: int,
    schedule: MigrationFeeSchedule,
    attacker_gain: float = 0.0,
) -> FloodingOutcome:
    """Run one gain-prioritised commitment round under a flood.

    Attacker requests carry ``attacker_gain`` (a rational attacker has
    no genuine potential improvement to claim, so its default is 0 —
    inflating it does not help: the gain field is client-computed but
    the *fee* is what scarcity prices, and honest clients with real
    gains outbid squatters in any fee auction; here we model the
    paper's simpler gain-prioritised rule).
    """
    attack_requests = [
        MigrationRequest(
            account=int(account),
            from_shard=0,
            to_shard=1,
            gain=attacker_gain,
        )
        for account in attacker_accounts
    ]
    all_requests: List[MigrationRequest] = list(honest_requests) + attack_requests
    committed, _rejected = prioritize_requests(all_requests, capacity)

    honest_accounts = {r.account for r in honest_requests}
    honest_committed = sum(1 for r in committed if r.account in honest_accounts)
    attacker_committed = len(committed) - honest_committed

    demand = len(all_requests)
    fee = schedule.fee(demand, capacity)
    return FloodingOutcome(
        honest_committed=honest_committed,
        attacker_committed=attacker_committed,
        attacker_cost=len(attack_requests) * fee,
        honest_cost=len(honest_requests) * fee,
    )
