"""Migration-fee economics and the DoS argument (Section VII-B).

The paper argues flooding attacks against Mosaic are economically
irrational: every migration request pays a fee, so sustaining a flood
costs the attacker linearly while the beacon chain's gain-prioritised,
capacity-capped commitment keeps honest high-gain requests flowing.
This module makes that argument executable:

* :class:`MigrationFeeSchedule` — a congestion-priced MR fee (flat base
  plus a surge component when the beacon mempool runs hot);
* :func:`flooding_attack_cost` — what an attacker pays to keep the
  beacon chain saturated for a number of epochs;
* :func:`simulate_flooding` — runs the commitment policy under attack
  and reports how many honest requests still commit.

It also owns the **value-faithful genesis funding** used by the unified
engine's observed-funding mode: :func:`observed_funding_balances`
derives per-account genesis balances from the value flow a trace
actually records, so an executed replay settles the trace's economics
instead of a uniform synthetic supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.chain.beacon import prioritize_requests
from repro.chain.migration import MigrationRequest
from repro.chain.transaction import TransactionBatch
from repro.errors import ConfigurationError, ValidationError


def observed_funding_balances(
    batch: TransactionBatch,
    n_accounts: int,
    headroom: float = 0.0,
) -> np.ndarray:
    """Per-account genesis balances sufficient to replay ``batch``.

    One vectorised sufficiency pass: every account is funded with its
    total observed outflow — the sum of the values (plus fees) it sends
    anywhere in the trace. That bound is *relay-safe*: cross-shard
    credits arrive a relay delay late, so an exact prefix-min schedule
    that counts incoming credits would under-fund receivers whose
    spending rides in-flight deposits; total outflow covers every debit
    regardless of settlement timing, which is what makes replayed
    traces settle with zero overdraft aborts. Accounts that never send
    get zero. ``headroom`` scales the result (0.1 = +10%) for scenarios
    that add synthetic traffic on top of the replay.

    Batches without a ``values`` column fund each send at the
    executor's default transfer amount of 1.0, so metric traces stay
    replayable under observed funding.
    """
    if n_accounts < 0:
        raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
    if headroom < 0:
        raise ValidationError(f"headroom must be >= 0, got {headroom}")
    if len(batch) and batch.max_account_id() >= n_accounts:
        raise ValidationError(
            f"batch references account {batch.max_account_id()} but the "
            f"universe only covers {n_accounts} accounts"
        )
    outflow = batch.amounts(default=1.0)
    if batch.fees is not None:
        outflow = outflow + batch.fees
    balances = np.bincount(
        batch.senders, weights=outflow, minlength=n_accounts
    ).astype(np.float64)
    if headroom:
        balances *= 1.0 + headroom
    return balances


@dataclass(frozen=True)
class MigrationFeeSchedule:
    """Congestion-priced fees for beacon-chain migration requests.

    ``fee = base_fee * (1 + surge_factor * max(0, demand/capacity - 1))``

    — flat while the beacon chain has headroom, rising linearly with
    over-subscription, which is the standard blockchain fee response
    the paper's DoS argument relies on.
    """

    base_fee: float = 1.0
    surge_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.base_fee <= 0:
            raise ConfigurationError(
                f"base_fee must be > 0, got {self.base_fee}"
            )
        if self.surge_factor < 0:
            raise ConfigurationError(
                f"surge_factor must be >= 0, got {self.surge_factor}"
            )

    def fee(self, demand: int, capacity: int) -> float:
        """Per-request fee when ``demand`` requests chase ``capacity`` slots."""
        if demand < 0:
            raise ValidationError(f"demand must be >= 0, got {demand}")
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        over_subscription = max(0.0, demand / capacity - 1.0)
        return self.base_fee * (1.0 + self.surge_factor * over_subscription)


def flooding_attack_cost(
    schedule: MigrationFeeSchedule,
    attack_requests_per_epoch: int,
    honest_requests_per_epoch: int,
    capacity: int,
    epochs: int,
) -> float:
    """Total fee an attacker pays to sustain a flood for ``epochs``.

    The attacker pays the congestion-priced fee for every submitted
    request (submission is paid whether or not the request commits —
    the anti-spam property the paper's argument needs).
    """
    if attack_requests_per_epoch < 0 or honest_requests_per_epoch < 0:
        raise ValidationError("request counts must be >= 0")
    if epochs < 0:
        raise ValidationError(f"epochs must be >= 0, got {epochs}")
    total = 0.0
    for _ in range(epochs):
        demand = attack_requests_per_epoch + honest_requests_per_epoch
        total += attack_requests_per_epoch * schedule.fee(demand, capacity)
    return total


@dataclass
class FloodingOutcome:
    """Result of one simulated flooding epoch."""

    honest_committed: int
    attacker_committed: int
    attacker_cost: float
    honest_cost: float

    @property
    def honest_commit_ratio(self) -> float:
        """Committed fraction of honest requests (0 when none proposed)."""
        total = self.honest_committed + self.attacker_committed
        if total == 0:
            return 0.0
        return self.honest_committed / total


def simulate_flooding(
    honest_requests: Sequence[MigrationRequest],
    attacker_accounts: Sequence[int],
    capacity: int,
    schedule: MigrationFeeSchedule,
    attacker_gain: float = 0.0,
) -> FloodingOutcome:
    """Run one gain-prioritised commitment round under a flood.

    Attacker requests carry ``attacker_gain`` (a rational attacker has
    no genuine potential improvement to claim, so its default is 0 —
    inflating it does not help: the gain field is client-computed but
    the *fee* is what scarcity prices, and honest clients with real
    gains outbid squatters in any fee auction; here we model the
    paper's simpler gain-prioritised rule).
    """
    attack_requests = [
        MigrationRequest(
            account=int(account),
            from_shard=0,
            to_shard=1,
            gain=attacker_gain,
        )
        for account in attacker_accounts
    ]
    all_requests: List[MigrationRequest] = list(honest_requests) + attack_requests
    committed, _rejected = prioritize_requests(all_requests, capacity)

    honest_accounts = {r.account for r in honest_requests}
    honest_committed = sum(1 for r in committed if r.account in honest_accounts)
    attacker_committed = len(committed) - honest_committed

    demand = len(all_requests)
    fee = schedule.fee(demand, capacity)
    return FloodingOutcome(
        honest_committed=honest_committed,
        attacker_committed=attacker_committed,
        attacker_cost=len(attack_requests) * fee,
        honest_cost=len(honest_requests) * fee,
    )
