"""Migration-fee economics and the DoS argument (Section VII-B).

The paper argues flooding attacks against Mosaic are economically
irrational: every migration request pays a fee, so sustaining a flood
costs the attacker linearly while the beacon chain's gain-prioritised,
capacity-capped commitment keeps honest high-gain requests flowing.
This module makes that argument executable:

* :class:`MigrationFeeSchedule` — a congestion-priced MR fee (flat base
  plus a surge component when the beacon mempool runs hot);
* :func:`flooding_attack_cost` — what an attacker pays to keep the
  beacon chain saturated for a number of epochs;
* :func:`simulate_flooding` — runs the commitment policy under attack
  and reports how many honest requests still commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.chain.beacon import prioritize_requests
from repro.chain.migration import MigrationRequest
from repro.errors import ConfigurationError, ValidationError


@dataclass(frozen=True)
class MigrationFeeSchedule:
    """Congestion-priced fees for beacon-chain migration requests.

    ``fee = base_fee * (1 + surge_factor * max(0, demand/capacity - 1))``

    — flat while the beacon chain has headroom, rising linearly with
    over-subscription, which is the standard blockchain fee response
    the paper's DoS argument relies on.
    """

    base_fee: float = 1.0
    surge_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.base_fee <= 0:
            raise ConfigurationError(
                f"base_fee must be > 0, got {self.base_fee}"
            )
        if self.surge_factor < 0:
            raise ConfigurationError(
                f"surge_factor must be >= 0, got {self.surge_factor}"
            )

    def fee(self, demand: int, capacity: int) -> float:
        """Per-request fee when ``demand`` requests chase ``capacity`` slots."""
        if demand < 0:
            raise ValidationError(f"demand must be >= 0, got {demand}")
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        over_subscription = max(0.0, demand / capacity - 1.0)
        return self.base_fee * (1.0 + self.surge_factor * over_subscription)


def flooding_attack_cost(
    schedule: MigrationFeeSchedule,
    attack_requests_per_epoch: int,
    honest_requests_per_epoch: int,
    capacity: int,
    epochs: int,
) -> float:
    """Total fee an attacker pays to sustain a flood for ``epochs``.

    The attacker pays the congestion-priced fee for every submitted
    request (submission is paid whether or not the request commits —
    the anti-spam property the paper's argument needs).
    """
    if attack_requests_per_epoch < 0 or honest_requests_per_epoch < 0:
        raise ValidationError("request counts must be >= 0")
    if epochs < 0:
        raise ValidationError(f"epochs must be >= 0, got {epochs}")
    total = 0.0
    for _ in range(epochs):
        demand = attack_requests_per_epoch + honest_requests_per_epoch
        total += attack_requests_per_epoch * schedule.fee(demand, capacity)
    return total


@dataclass
class FloodingOutcome:
    """Result of one simulated flooding epoch."""

    honest_committed: int
    attacker_committed: int
    attacker_cost: float
    honest_cost: float

    @property
    def honest_commit_ratio(self) -> float:
        """Committed fraction of honest requests (0 when none proposed)."""
        total = self.honest_committed + self.attacker_committed
        if total == 0:
            return 0.0
        return self.honest_committed / total


def simulate_flooding(
    honest_requests: Sequence[MigrationRequest],
    attacker_accounts: Sequence[int],
    capacity: int,
    schedule: MigrationFeeSchedule,
    attacker_gain: float = 0.0,
) -> FloodingOutcome:
    """Run one gain-prioritised commitment round under a flood.

    Attacker requests carry ``attacker_gain`` (a rational attacker has
    no genuine potential improvement to claim, so its default is 0 —
    inflating it does not help: the gain field is client-computed but
    the *fee* is what scarcity prices, and honest clients with real
    gains outbid squatters in any fee auction; here we model the
    paper's simpler gain-prioritised rule).
    """
    attack_requests = [
        MigrationRequest(
            account=int(account),
            from_shard=0,
            to_shard=1,
            gain=attacker_gain,
        )
        for account in attacker_accounts
    ]
    all_requests: List[MigrationRequest] = list(honest_requests) + attack_requests
    committed, _rejected = prioritize_requests(all_requests, capacity)

    honest_accounts = {r.account for r in honest_requests}
    honest_committed = sum(1 for r in committed if r.account in honest_accounts)
    attacker_committed = len(committed) - honest_committed

    demand = len(all_requests)
    fee = schedule.fee(demand, capacity)
    return FloodingOutcome(
        honest_committed=honest_committed,
        attacker_committed=attacker_committed,
        attacker_cost=len(attack_requests) * fee,
        honest_cost=len(honest_requests) * fee,
    )
