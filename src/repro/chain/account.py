"""Accounts and the address registry.

Externally, accounts are Ethereum-style hex addresses. Internally, every
hot path (allocation, metrics, graph building) works on dense integer
account ids. :class:`AccountRegistry` provides the bidirectional mapping
and guarantees ids are assigned densely in registration order, which lets
the rest of the library index numpy arrays by account id.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.errors import UnknownAccountError, ValidationError

Address = str

_ADDRESS_BYTES = 20


def _normalize(address: str) -> str:
    if not isinstance(address, str):
        raise ValidationError(f"address must be str, got {type(address).__name__}")
    addr = address.lower()
    if addr.startswith("0x"):
        body = addr[2:]
    else:
        body = addr
        addr = "0x" + body
    if len(body) != _ADDRESS_BYTES * 2:
        raise ValidationError(
            f"address must be {_ADDRESS_BYTES} bytes ({_ADDRESS_BYTES * 2} hex chars), "
            f"got {address!r}"
        )
    try:
        int(body, 16)
    except ValueError as exc:
        raise ValidationError(f"address is not valid hex: {address!r}") from exc
    return addr


def address_from_id(account_id: int) -> Address:
    """Deterministically derive a synthetic 20-byte address for an id.

    Used by the trace generator so synthetic accounts have realistic
    addresses while remaining reproducible.
    """
    if account_id < 0:
        raise ValidationError(f"account_id must be >= 0, got {account_id}")
    digest = hashlib.sha256(f"repro-account-{account_id}".encode()).digest()
    return "0x" + digest[:_ADDRESS_BYTES].hex()


def random_address(rng: np.random.Generator) -> Address:
    """Sample a uniformly random 20-byte address."""
    raw = rng.integers(0, 256, size=_ADDRESS_BYTES, dtype=np.uint8)
    return "0x" + bytes(raw.tolist()).hex()


class AccountRegistry:
    """Bidirectional address <-> dense integer id mapping.

    Ids are assigned in first-registration order starting at 0, so a
    registry with ``n`` accounts always covers exactly ``range(n)``.
    """

    def __init__(self, addresses: Optional[Iterable[Address]] = None) -> None:
        self._id_of: Dict[Address, int] = {}
        self._address_of: List[Address] = []
        if addresses is not None:
            for address in addresses:
                self.register(address)

    def __len__(self) -> int:
        return len(self._address_of)

    def __contains__(self, address: Address) -> bool:
        try:
            return _normalize(address) in self._id_of
        except ValidationError:
            return False

    def __iter__(self) -> Iterator[Address]:
        return iter(self._address_of)

    def register(self, address: Address) -> int:
        """Register ``address`` (idempotent) and return its id."""
        addr = _normalize(address)
        existing = self._id_of.get(addr)
        if existing is not None:
            return existing
        account_id = len(self._address_of)
        self._id_of[addr] = account_id
        self._address_of.append(addr)
        return account_id

    def id_of(self, address: Address) -> int:
        """Return the id of ``address``; raise if unregistered."""
        addr = _normalize(address)
        account_id = self._id_of.get(addr)
        if account_id is None:
            raise UnknownAccountError(address)
        return account_id

    def address_of(self, account_id: int) -> Address:
        """Return the address registered under ``account_id``."""
        if not 0 <= account_id < len(self._address_of):
            raise UnknownAccountError(account_id)
        return self._address_of[account_id]

    def ensure_size(self, n_accounts: int) -> None:
        """Register synthetic addresses until at least ``n_accounts`` exist."""
        while len(self._address_of) < n_accounts:
            self.register(address_from_id(len(self._address_of)))

    @classmethod
    def synthetic(cls, n_accounts: int) -> "AccountRegistry":
        """Build a registry of ``n_accounts`` deterministic addresses."""
        registry = cls()
        registry.ensure_size(n_accounts)
        return registry
