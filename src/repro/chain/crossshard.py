"""Cross-shard transaction execution: the relay/receipt protocol.

This is the mechanism that makes cross-shard transactions cost
``eta > 1``: a transfer between shards cannot commit atomically in one
block, so it executes in two phases (Monoxide's relay transactions;
OmniLedger's lock/unlock is equivalent for value transfers):

1. **Withdraw** — the source shard debits the sender and emits a
   *receipt* committing to the transfer;
2. **Deposit** — the receipt is relayed to the target shard, which
   credits the receiver in a later block.

Both shards therefore spend consensus work on the same transfer, and
the receiver's funds arrive one (or more) relay latencies later — the
two costs the paper's difficulty parameter ``eta`` abstracts.

:class:`CrossShardExecutor` executes transaction batches against the
per-shard state stores and tracks in-flight receipts in a columnar
:class:`~repro.chain.receipts.ReceiptLedger`. The hot path is batched:

* the withdraw/intra phase classifies a whole block at once, splits
  senders into a *fast* set (opening balance covers their total debits
  — every transfer succeeds regardless of in-block ordering) and a
  *slow* remainder (potential overdrafts, or senders funded by in-block
  credits), resolves the slow set with an exact sequential scan over
  only the transfers that touch it, and then applies all balance
  effects with one ordered scatter (``np.add.at`` over the per-block
  delta stream, preserving the scalar per-account operation order);
* settlement pops the due prefix of the receipt ledger via its
  due-block index and credits each target shard with one columnar
  scatter, in pinned ``(due_block, tx_id)`` order.

The batched committer is element-for-element equivalent to the scalar
reference loop (kept as ``batched=False`` for the property tests); the
equivalence is bit-exact whenever transfer amounts are integer-valued
(every trace, test and example in this repository — with arbitrary
floats, fast/slow classification can differ from the sequential
reference by one ulp on adversarial amounts). Conservation of total
balance — no value created or destroyed, in-flight receipts included —
is the key invariant, property-tested in
``tests/test_chain_crossshard.py``.

Receipt relay optionally routes through the simulated message plane
(:mod:`repro.chain.netsim`): with ``network=None`` receipts append to
the ledger directly with ``due_block = block + relay_delay_blocks``
(the reference path above); with a
:class:`~repro.chain.netsim.NetworkModel` they ride a
:class:`~repro.chain.netsim.MessageBus`, settlement keys off
*delivered* blocks, redelivered copies settle idempotently (receipt-id
dedup), and receipts whose delivery deadline passes are aborted with a
sender refund — all still conservation-exact (undelivered value counts
as in-flight). The ``ideal`` model is bit-identical to the direct path
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.chain.kernels import classify_kernel
from repro.chain.mapping import ShardMapping
from repro.chain.netsim import NetworkModel, ReceiptTransport
from repro.chain.receipts import ReceiptBatch, ReceiptLedger
from repro.chain.state import StateRegistry
from repro.chain.transaction import Transaction, TransactionBatch
from repro.errors import ChainError, UnknownAccountError, ValidationError

#: Below this many transfers the scalar committer beats the batched
#: one (fixed numpy overhead per block); both produce identical state.
_BATCH_MIN_BLOCK = 96


@dataclass(frozen=True)
class Receipt:
    """A withdraw-phase commitment awaiting deposit on the target shard."""

    tx_id: int
    sender: int
    receiver: int
    amount: float
    source_shard: int
    target_shard: int
    issued_block: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValidationError(f"amount must be >= 0, got {self.amount}")
        if self.source_shard == self.target_shard:
            raise ValidationError("receipts are for cross-shard transfers only")


@dataclass
class ExecutionReport:
    """Statistics of one executed block of transactions."""

    block: int
    intra_executed: int = 0
    withdraws: int = 0
    deposits_settled: int = 0
    failed: int = 0
    #: Value credited by receipt settlement in this block.
    settled_value: float = 0.0
    #: Fees collected from successful transfers in this block.
    fees_collected: float = 0.0
    #: Expired receipts aborted in this block (value returned to the
    #: sender) and the value refunded — only ever nonzero when receipts
    #: ride a lossy simulated network.
    refunds_settled: int = 0
    refunded_value: float = 0.0
    #: Redelivered receipt copies discarded by the idempotent settle.
    duplicates_deduped: int = 0
    relay_latencies: List[int] = field(default_factory=list)

    @property
    def mean_relay_latency(self) -> float:
        """Mean blocks between withdraw and deposit (0 when none settled)."""
        if not self.relay_latencies:
            return 0.0
        return sum(self.relay_latencies) / len(self.relay_latencies)


class CrossShardExecutor:
    """Executes transfers against per-shard state under a mapping.

    ``batched=False`` selects the scalar per-transfer reference
    committer — same observable behaviour, used by the equivalence
    property tests and available for debugging.
    """

    def __init__(
        self,
        registry: StateRegistry,
        mapping: ShardMapping,
        relay_delay_blocks: int = 1,
        batched: bool = True,
        network: Optional[NetworkModel] = None,
    ) -> None:
        if registry.k != mapping.k:
            raise ValidationError(
                f"registry has k={registry.k}, mapping has k={mapping.k}"
            )
        if relay_delay_blocks < 0:
            raise ValidationError(
                f"relay_delay_blocks must be >= 0, got {relay_delay_blocks}"
            )
        self.registry = registry
        self.mapping = mapping
        self.relay_delay_blocks = relay_delay_blocks
        self.batched = batched
        self._ledger = ReceiptLedger()
        #: Receipts ride the simulated message plane when a network
        #: model is attached; ``None`` keeps the direct-append path.
        self._transport = (
            ReceiptTransport(network, relay_delay_blocks)
            if network is not None
            else None
        )
        self._next_tx_id = 0
        #: Fees debited from senders on successful transfers. Fees
        #: leave circulating balances but not the system: they count
        #: toward :meth:`total_value`, keeping conservation exact for
        #: fee-carrying traces.
        self.collected_fees = 0.0

    # -- funding -----------------------------------------------------------------

    def fund(self, account: int, amount: float) -> None:
        """Mint ``amount`` to ``account`` on its resident shard (genesis)."""
        shard = self.mapping.shard_of(account)
        self.registry.store_of(shard).credit(account, amount)

    def fund_many(
        self, accounts: np.ndarray, amounts: Union[np.ndarray, float]
    ) -> None:
        """Mint to many accounts at once (columnar genesis funding).

        ``amounts`` may be a scalar (uniform supply) or a per-account
        array. Credits scatter per shard in one pass — the bulk path
        the unified engine and the 1M-account microbench use instead of
        a per-account :meth:`fund` loop.
        """
        accounts = np.asarray(accounts, dtype=np.int64)
        if np.isscalar(amounts) or getattr(amounts, "ndim", 1) == 0:
            amounts = np.full(len(accounts), float(amounts), dtype=np.float64)
        else:
            amounts = np.asarray(amounts, dtype=np.float64)
        if amounts.shape != accounts.shape:
            raise ValidationError("accounts/amounts length mismatch")
        if len(amounts) and float(amounts.min()) < 0:
            raise ValidationError("funding amounts must be >= 0")
        shards = self.mapping.shards_of(accounts)
        for shard in np.unique(shards).tolist():
            on_shard = shards == shard
            self.registry.store_of(int(shard)).credit_many(
                accounts[on_shard], amounts[on_shard]
            )

    @property
    def ledger(self) -> ReceiptLedger:
        """The columnar pending-receipt ledger."""
        return self._ledger

    @property
    def network_transport(self) -> Optional[ReceiptTransport]:
        """The receipt transport, when receipts ride a simulated network."""
        return self._transport

    @property
    def pending_receipts(self) -> Tuple[Receipt, ...]:
        """Receipts issued but not yet deposited, in settlement order.

        Materialised lazily from the columnar ledger — the hot path
        never builds these objects.
        """
        view = self._ledger.view()
        return tuple(
            Receipt(
                tx_id=int(view.tx_ids[i]),
                sender=int(view.senders[i]),
                receiver=int(view.receivers[i]),
                amount=float(view.amounts[i]),
                source_shard=int(view.source_shards[i]),
                target_shard=int(view.target_shards[i]),
                issued_block=int(view.issued_blocks[i]),
            )
            for i in range(len(view))
        )

    def in_flight_value(self) -> float:
        """Value locked in receipts — ledger total plus value still on
        the wire (undelivered, unexpired messages) when receipts ride a
        simulated network."""
        total = self._ledger.total_amount
        if self._transport is not None:
            total += self._transport.pending_value()
        return total

    def in_flight_count(self) -> int:
        """Pending receipts: awaiting settlement or still on the wire."""
        count = len(self._ledger)
        if self._transport is not None:
            count += self._transport.pending_count()
        return count

    def total_value(self) -> float:
        """Resident balances + in-flight receipts + fees — conserved."""
        return (
            self.registry.total_balance()
            + self.in_flight_value()
            + self.collected_fees
        )

    # -- execution -----------------------------------------------------------------

    def execute_block(
        self,
        block: int,
        transactions: Union[Sequence[Transaction], TransactionBatch],
    ) -> ExecutionReport:
        """Execute one block: settle due receipts, then apply transfers.

        Deposits for receipts issued at block ``b`` become due at block
        ``b + relay_delay_blocks``. Transfers whose sender cannot cover
        the amount (plus fee) fail without side effects. ``transactions``
        may be a columnar :class:`TransactionBatch` (its ``values`` /
        ``fees`` columns, when present, supply per-transfer amounts and
        fees) or a sequence of :class:`Transaction` objects.
        """
        report = ExecutionReport(block=block)
        self._settle_due(block, report)
        if isinstance(transactions, TransactionBatch):
            senders = transactions.senders
            receivers = transactions.receivers
            amounts = transactions.amounts()
            fees = transactions.fees
        else:
            senders = np.array(
                [tx.sender for tx in transactions], dtype=np.int64
            )
            receivers = np.array(
                [tx.receiver for tx in transactions], dtype=np.int64
            )
            amounts = np.array(
                [tx.value for tx in transactions], dtype=np.float64
            )
            fees = np.array([tx.fee for tx in transactions], dtype=np.float64)
            if not fees.any():
                fees = None
        self._check_universe(senders, receivers)
        sender_shards, receiver_shards, _ = classify_kernel(
            senders, receivers, self.mapping.as_array()
        )
        self._apply_transfers(
            block, senders, receivers, amounts, sender_shards, receiver_shards,
            report, fees=fees,
        )
        return report

    def _check_universe(self, senders: np.ndarray, receivers: np.ndarray) -> None:
        if len(senders) == 0:
            return
        top = max(int(senders.max()), int(receivers.max()))
        if top >= self.mapping.n_accounts:
            raise UnknownAccountError(top)

    def _settle_due(self, block: int, report: ExecutionReport) -> None:
        """Settle receipts that have aged past the relay delay.

        The relayed deposit rides a later target-shard block. Deposits
        are credited in ``(due_block, tx_id)`` order — receipts of one
        target shard apply as one ordered columnar scatter.

        Deposits route through the *current* mapping (receipt
        forwarding): a receipt commits to the target shard computed at
        issue time, but if the receiver migrated while the receipt was
        in flight, the deposit follows it to the shard now holding the
        account instead of stranding value on the stale shard.

        With a network transport attached, the bus is drained first:
        newly *delivered* receipts join the ledger keyed by their
        delivery block (so they settle in this pass), and expired ones
        abort with a refund to the sender — also via the current
        mapping, since the sender may have migrated since the withdraw.
        """
        if self._transport is not None and not self._transport.is_ideal:
            before_dups = self._transport.duplicates_deduped
            refunds = self._transport.poll(block, self._ledger)
            report.duplicates_deduped += (
                self._transport.duplicates_deduped - before_dups
            )
            for _tx_id, sender, amount in refunds:
                shard = self.mapping.shard_of(sender)
                self.registry.store_of(shard).credit(sender, amount)
                report.refunds_settled += 1
                report.refunded_value += amount
        due = self._ledger.pop_due(block)
        if len(due) == 0:
            return
        current_targets = self.mapping.shards_of(due.receivers)
        for shard in np.unique(current_targets).tolist():
            on_shard = current_targets == shard
            self.registry.store_of(int(shard)).credit_many(
                due.receivers[on_shard], due.amounts[on_shard]
            )
        report.deposits_settled += len(due)
        report.settled_value += float(due.amounts.sum())
        report.relay_latencies.extend(
            (block - due.issued_blocks).tolist()
        )

    def _issue_receipts(
        self,
        block: int,
        tx_ids: np.ndarray,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        source_shards: np.ndarray,
        target_shards: np.ndarray,
    ) -> None:
        """Emit one block's withdraw receipts — ledger or message bus."""
        if self._transport is None:
            self._ledger.append_batch(
                tx_ids=tx_ids,
                senders=senders,
                receivers=receivers,
                amounts=amounts,
                source_shards=source_shards,
                target_shards=target_shards,
                issued_block=block,
                due_block=block + self.relay_delay_blocks,
            )
        else:
            self._transport.issue(
                self._ledger, block, tx_ids, senders, receivers, amounts,
                source_shards, target_shards,
            )

    # -- the block committer --------------------------------------------------------

    def _apply_transfers(
        self,
        block: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        sender_shards: np.ndarray,
        receiver_shards: np.ndarray,
        report: ExecutionReport,
        fees: Optional[np.ndarray] = None,
    ) -> None:
        if len(senders) == 0:
            return
        if self.batched and len(senders) >= _BATCH_MIN_BLOCK:
            self._apply_transfers_batched(
                block, senders, receivers, amounts, sender_shards,
                receiver_shards, report, fees,
            )
        else:
            self._apply_transfers_scalar(
                block, senders, receivers, amounts, sender_shards,
                receiver_shards, report, fees,
            )

    def _apply_transfers_batched(
        self,
        block: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        sender_shards: np.ndarray,
        receiver_shards: np.ndarray,
        report: ExecutionReport,
        fees: Optional[np.ndarray] = None,
    ) -> None:
        """Vectorised withdraw/intra phase over one block.

        Every account participating in the transfer phase lives on its
        mapped shard (intra credits go to the sender's shard, which for
        an intra transfer *is* the receiver's mapped shard), so the
        block gathers each unique account's balance once, resolves
        outcomes, applies one ordered delta stream, and scatters the
        results back per shard. A fee, when present, debits with its
        transfer (sender pays ``value + fee``) and accrues to the
        executor's collected-fees pool.
        """
        n = len(senders)
        debits = amounts if fees is None else amounts + fees
        intra = sender_shards == receiver_shards
        unique_accounts, inverse = np.unique(
            np.concatenate([senders, receivers]), return_inverse=True
        )
        sender_idx = inverse[:n]
        receiver_idx = inverse[n:]
        n_unique = len(unique_accounts)
        account_shard = np.empty(n_unique, dtype=np.int64)
        account_shard[sender_idx] = sender_shards
        account_shard[receiver_idx] = receiver_shards

        shard_groups = [
            (shard, account_shard == shard)
            for shard in np.unique(account_shard).tolist()
        ]
        opening = np.empty(n_unique, dtype=np.float64)
        for shard, group in shard_groups:
            opening[group] = self.registry.store_of(shard).balances_of(
                unique_accounts[group]
            )

        # Fast senders: opening balance covers their total debits, so
        # every transfer succeeds regardless of in-block credit order.
        # The rest — potential overdrafts — are resolved by an exact
        # sequential scan over the transfers that touch them (their own
        # debits plus any intra credit that could fund them).
        totals = np.bincount(sender_idx, weights=debits, minlength=n_unique)
        is_sender = np.zeros(n_unique, dtype=bool)
        is_sender[sender_idx] = True
        slow = is_sender & (opening < totals)
        success = np.ones(n, dtype=bool)
        if slow.any():
            relevant = np.flatnonzero(
                slow[sender_idx] | (intra & slow[receiver_idx])
            )
            balances = dict(
                zip(
                    np.flatnonzero(slow).tolist(),
                    opening[slow].tolist(),
                )
            )
            slow_l = slow.tolist()
            sender_idx_l = sender_idx.tolist()
            receiver_idx_l = receiver_idx.tolist()
            amounts_l = amounts.tolist()
            debits_l = debits.tolist() if fees is not None else amounts_l
            intra_l = intra.tolist()
            for i in relevant.tolist():
                s = sender_idx_l[i]
                debit = debits_l[i]
                if slow_l[s]:
                    balance = balances[s]
                    if debit > balance:
                        success[i] = False
                        continue
                    balances[s] = balance - debit
                if intra_l[i]:
                    r = receiver_idx_l[i]
                    if slow_l[r]:
                        balances[r] += amounts_l[i]

        # Ordered delta stream: (debit, intra-credit) per successful
        # transfer, in transaction order — np.add.at applies elements
        # sequentially, so each account's balance evolves through the
        # exact float operation sequence of the scalar reference.
        ok_senders = sender_idx[success]
        ok_amounts = amounts[success]
        ok_receivers = receiver_idx[success]
        ok_intra = intra[success]
        m = len(ok_senders)
        stream_idx = np.empty(2 * m, dtype=np.int64)
        stream_amt = np.empty(2 * m, dtype=np.float64)
        stream_idx[0::2] = ok_senders
        stream_amt[0::2] = -debits[success]
        stream_idx[1::2] = ok_receivers
        stream_amt[1::2] = ok_amounts
        keep = np.ones(2 * m, dtype=bool)
        keep[1::2] = ok_intra  # cross-shard credits ride receipts instead
        closing = opening.copy()
        np.add.at(closing, stream_idx[keep], stream_amt[keep])

        nonce_bumps = np.bincount(ok_senders, minlength=n_unique)
        touched = np.zeros(n_unique, dtype=bool)
        touched[ok_senders] = True
        touched[ok_receivers[ok_intra]] = True
        for shard, group in shard_groups:
            write = group & touched
            if write.any():
                self.registry.store_of(shard).write_back(
                    unique_accounts[write],
                    closing[write],
                    nonce_bumps[write],
                )

        # Withdraw-phase receipts, with tx ids assigned in transaction
        # order over the successful transfers (failed ones consume no id).
        ordinal = np.cumsum(success) - 1
        cross_ok = success & ~intra
        if cross_ok.any():
            self._issue_receipts(
                block,
                tx_ids=self._next_tx_id + ordinal[cross_ok],
                senders=senders[cross_ok],
                receivers=receivers[cross_ok],
                amounts=amounts[cross_ok],
                source_shards=sender_shards[cross_ok],
                target_shards=receiver_shards[cross_ok],
            )
        self._next_tx_id += m
        if fees is not None and m:
            collected = float(fees[success].sum())
            self.collected_fees += collected
            report.fees_collected += collected
        report.intra_executed += int(ok_intra.sum())
        report.withdraws += int(cross_ok.sum())
        report.failed += int(n - m)

    def _apply_transfers_scalar(
        self,
        block: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        sender_shards: np.ndarray,
        receiver_shards: np.ndarray,
        report: ExecutionReport,
        fees: Optional[np.ndarray] = None,
    ) -> None:
        """Per-transfer reference committer (equivalence baseline)."""
        stores = [self.registry.store_of(i) for i in range(self.registry.k)]
        receipt_rows: List[Tuple[int, int, int, float, int, int]] = []
        for i in range(len(senders)):
            sender_shard = int(sender_shards[i])
            amount = float(amounts[i])
            fee = float(fees[i]) if fees is not None else 0.0
            source = stores[sender_shard]
            try:
                source.debit(int(senders[i]), amount + fee)
            except ChainError:
                report.failed += 1
                continue
            if fee:
                self.collected_fees += fee
                report.fees_collected += fee
            receiver_shard = int(receiver_shards[i])
            if sender_shard == receiver_shard:
                source.credit(int(receivers[i]), amount)
                report.intra_executed += 1
            else:
                receipt_rows.append(
                    (
                        self._next_tx_id,
                        int(senders[i]),
                        int(receivers[i]),
                        amount,
                        sender_shard,
                        receiver_shard,
                    )
                )
                report.withdraws += 1
            self._next_tx_id += 1
        if receipt_rows:
            columns = list(zip(*receipt_rows))
            self._issue_receipts(
                block,
                tx_ids=np.asarray(columns[0], dtype=np.int64),
                senders=np.asarray(columns[1], dtype=np.int64),
                receivers=np.asarray(columns[2], dtype=np.int64),
                amounts=np.asarray(columns[3], dtype=np.float64),
                source_shards=np.asarray(columns[4], dtype=np.int64),
                target_shards=np.asarray(columns[5], dtype=np.int64),
            )

    def execute_batch(
        self, batch: TransactionBatch, amount_per_tx: float = 1.0
    ) -> List[ExecutionReport]:
        """Execute a batch block by block.

        Amounts come from the batch's ``values`` column when present,
        else every transfer moves ``amount_per_tx`` units; a ``fees``
        column, when present, debits alongside (sender pays
        ``value + fee``). Shard classification runs once over the whole
        batch through the shared :func:`classify_kernel`; blocks are
        delimited by change points in the (already block-ordered)
        ``blocks`` column, exactly as the scalar bucketing loop did.
        """
        if amount_per_tx < 0:
            raise ValidationError(
                f"amount_per_tx must be >= 0, got {amount_per_tx}"
            )
        reports: List[ExecutionReport] = []
        if len(batch) == 0:
            return reports
        self._check_universe(batch.senders, batch.receivers)
        sender_shards, receiver_shards, _ = classify_kernel(
            batch.senders, batch.receivers, self.mapping.as_array()
        )
        if batch.values is not None:
            amounts = batch.values
        else:
            amounts = np.full(len(batch), amount_per_tx, dtype=np.float64)
        fees = batch.fees
        boundaries = np.flatnonzero(np.diff(batch.blocks) != 0) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(batch)]))
        for start, stop in zip(starts, stops):
            block = int(batch.blocks[start])
            report = ExecutionReport(block=block)
            self._settle_due(block, report)
            self._apply_transfers(
                block,
                batch.senders[start:stop],
                batch.receivers[start:stop],
                amounts[start:stop],
                sender_shards[start:stop],
                receiver_shards[start:stop],
                report,
                fees=fees[start:stop] if fees is not None else None,
            )
            reports.append(report)
        return reports

    def settle_all(self, from_block: int) -> ExecutionReport:
        """Force-settle every pending receipt (end-of-epoch flush).

        With a network transport the horizon extends to the last block
        at which the bus can still deliver or expire a message, so the
        flush also resolves everything on the wire (delivering what it
        can, refunding the rest).
        """
        horizon = from_block + self.relay_delay_blocks
        if self._transport is not None:
            horizon = max(horizon, self._transport.horizon())
        return self.execute_block(horizon, [])

    # -- migration interaction -------------------------------------------------------

    def apply_migration(self, account: int, to_shard: int) -> int:
        """Move an account's state when its allocation changes.

        Returns the bytes of state moved. The caller is responsible for
        updating ``self.mapping`` (they share the object in the ledger).
        """
        current = self.registry.locate(account)
        if current is None or current == to_shard:
            return 0
        return self.registry.migrate(account, current, to_shard)

    def apply_migrations(
        self, accounts: np.ndarray, to_shards: np.ndarray
    ) -> int:
        """Apply committed migrations one by one; returns bytes moved.

        The per-account reference loop — the batched reconfiguration
        path uses :meth:`apply_migration_batch` instead, and the
        equivalence suite pins the two to identical outcomes.
        """
        if len(accounts) != len(to_shards):
            raise ValidationError("accounts/to_shards length mismatch")
        moved = 0
        for account, shard in zip(accounts.tolist(), to_shards.tolist()):
            moved += self.apply_migration(int(account), int(shard))
        return moved

    def apply_migration_batch(
        self, accounts: np.ndarray, to_shards: np.ndarray
    ) -> int:
        """Columnar :meth:`apply_migrations`; returns bytes moved.

        Residency resolves through the registry's index in one
        vectorised lookup and state moves as grouped per-shard
        gather/scatter (see :meth:`StateRegistry.migrate_batch`).
        Accounts must be unique within one batch — beacon commitment
        rounds guarantee it.
        """
        return self.registry.migrate_batch(accounts, to_shards)
