"""Cross-shard transaction execution: the relay/receipt protocol.

This is the mechanism that makes cross-shard transactions cost
``eta > 1``: a transfer between shards cannot commit atomically in one
block, so it executes in two phases (Monoxide's relay transactions;
OmniLedger's lock/unlock is equivalent for value transfers):

1. **Withdraw** — the source shard debits the sender and emits a
   *receipt* committing to the transfer;
2. **Deposit** — the receipt is relayed to the target shard, which
   credits the receiver in a later block.

Both shards therefore spend consensus work on the same transfer, and
the receiver's funds arrive one (or more) relay latencies later — the
two costs the paper's difficulty parameter ``eta`` abstracts.

:class:`CrossShardExecutor` executes transaction batches against the
per-shard state stores, tracks in-flight receipts, and reports the
statistics (receipts issued/settled, relay latency, failed transfers)
the substrate tests and examples assert on. Conservation of total
balance — no value created or destroyed, in-flight receipts included —
is the key invariant, property-tested in
``tests/test_chain_crossshard.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.chain.kernels import classify_kernel
from repro.chain.mapping import ShardMapping
from repro.chain.state import StateRegistry
from repro.chain.transaction import Transaction, TransactionBatch
from repro.errors import ChainError, UnknownAccountError, ValidationError


@dataclass(frozen=True)
class Receipt:
    """A withdraw-phase commitment awaiting deposit on the target shard."""

    tx_id: int
    sender: int
    receiver: int
    amount: float
    source_shard: int
    target_shard: int
    issued_block: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValidationError(f"amount must be >= 0, got {self.amount}")
        if self.source_shard == self.target_shard:
            raise ValidationError("receipts are for cross-shard transfers only")


@dataclass
class ExecutionReport:
    """Statistics of one executed block of transactions."""

    block: int
    intra_executed: int = 0
    withdraws: int = 0
    deposits_settled: int = 0
    failed: int = 0
    relay_latencies: List[int] = field(default_factory=list)

    @property
    def mean_relay_latency(self) -> float:
        """Mean blocks between withdraw and deposit (0 when none settled)."""
        if not self.relay_latencies:
            return 0.0
        return sum(self.relay_latencies) / len(self.relay_latencies)


class CrossShardExecutor:
    """Executes transfers against per-shard state under a mapping."""

    def __init__(
        self,
        registry: StateRegistry,
        mapping: ShardMapping,
        relay_delay_blocks: int = 1,
    ) -> None:
        if registry.k != mapping.k:
            raise ValidationError(
                f"registry has k={registry.k}, mapping has k={mapping.k}"
            )
        if relay_delay_blocks < 0:
            raise ValidationError(
                f"relay_delay_blocks must be >= 0, got {relay_delay_blocks}"
            )
        self.registry = registry
        self.mapping = mapping
        self.relay_delay_blocks = relay_delay_blocks
        self._pending: List[Receipt] = []
        self._next_tx_id = 0

    # -- funding -----------------------------------------------------------------

    def fund(self, account: int, amount: float) -> None:
        """Mint ``amount`` to ``account`` on its resident shard (genesis)."""
        shard = self.mapping.shard_of(account)
        self.registry.store_of(shard).credit(account, amount)

    @property
    def pending_receipts(self) -> Sequence[Receipt]:
        """Receipts issued but not yet deposited."""
        return tuple(self._pending)

    def in_flight_value(self) -> float:
        """Value locked in receipts (withdrawn, not yet deposited)."""
        return sum(receipt.amount for receipt in self._pending)

    def total_value(self) -> float:
        """Resident balances plus in-flight receipts — conserved."""
        return self.registry.total_balance() + self.in_flight_value()

    # -- execution -----------------------------------------------------------------

    def execute_block(
        self,
        block: int,
        transactions: Sequence[Transaction],
    ) -> ExecutionReport:
        """Execute one block: settle due receipts, then apply transfers.

        Deposits for receipts issued at block ``b`` become due at block
        ``b + relay_delay_blocks``. Transfers whose sender cannot cover
        the amount fail without side effects.
        """
        report = ExecutionReport(block=block)
        self._settle_due(block, report)
        senders = np.array([tx.sender for tx in transactions], dtype=np.int64)
        receivers = np.array([tx.receiver for tx in transactions], dtype=np.int64)
        amounts = np.array([tx.value for tx in transactions], dtype=np.float64)
        self._check_universe(senders, receivers)
        sender_shards, receiver_shards, _ = classify_kernel(
            senders, receivers, self.mapping.as_array()
        )
        self._apply_transfers(
            block, senders, receivers, amounts, sender_shards, receiver_shards,
            report,
        )
        return report

    def _check_universe(self, senders: np.ndarray, receivers: np.ndarray) -> None:
        if len(senders) == 0:
            return
        top = max(int(senders.max()), int(receivers.max()))
        if top >= self.mapping.n_accounts:
            raise UnknownAccountError(top)

    def _settle_due(self, block: int, report: ExecutionReport) -> None:
        """Settle receipts that have aged past the relay delay.

        The relayed deposit rides a later target-shard block.
        """
        still_pending: List[Receipt] = []
        for receipt in self._pending:
            if block - receipt.issued_block >= self.relay_delay_blocks:
                self.registry.store_of(receipt.target_shard).credit(
                    receipt.receiver, receipt.amount
                )
                report.deposits_settled += 1
                report.relay_latencies.append(block - receipt.issued_block)
            else:
                still_pending.append(receipt)
        self._pending = still_pending

    def _apply_transfers(
        self,
        block: int,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        sender_shards: np.ndarray,
        receiver_shards: np.ndarray,
        report: ExecutionReport,
    ) -> None:
        """Withdraw-phase / intra execution over pre-classified arrays.

        Balance mutation is inherently sequential (a sender may fund a
        later transfer with an earlier deposit in the same block), so the
        commit loop stays per-transfer; the shard classification is done
        once, vectorised, by the shared kernel.
        """
        stores = [self.registry.store_of(i) for i in range(self.registry.k)]
        for i in range(len(senders)):
            sender_shard = int(sender_shards[i])
            amount = float(amounts[i])
            source = stores[sender_shard]
            try:
                source.debit(int(senders[i]), amount)
            except ChainError:
                report.failed += 1
                continue
            receiver_shard = int(receiver_shards[i])
            if sender_shard == receiver_shard:
                source.credit(int(receivers[i]), amount)
                report.intra_executed += 1
            else:
                self._pending.append(
                    Receipt(
                        tx_id=self._next_tx_id,
                        sender=int(senders[i]),
                        receiver=int(receivers[i]),
                        amount=amount,
                        source_shard=sender_shard,
                        target_shard=receiver_shard,
                        issued_block=block,
                    )
                )
                report.withdraws += 1
            self._next_tx_id += 1

    def execute_batch(
        self, batch: TransactionBatch, amount_per_tx: float = 1.0
    ) -> List[ExecutionReport]:
        """Execute a batch block by block (amounts default to 1 unit).

        Shard classification runs once over the whole batch through the
        shared :func:`classify_kernel`; blocks are delimited by change
        points in the (already block-ordered) ``blocks`` column, exactly
        as the scalar bucketing loop did.
        """
        if amount_per_tx < 0:
            raise ValidationError(
                f"amount_per_tx must be >= 0, got {amount_per_tx}"
            )
        reports: List[ExecutionReport] = []
        if len(batch) == 0:
            return reports
        self._check_universe(batch.senders, batch.receivers)
        sender_shards, receiver_shards, _ = classify_kernel(
            batch.senders, batch.receivers, self.mapping.as_array()
        )
        amounts = np.full(len(batch), amount_per_tx, dtype=np.float64)
        boundaries = np.flatnonzero(np.diff(batch.blocks) != 0) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(batch)]))
        for start, stop in zip(starts, stops):
            block = int(batch.blocks[start])
            report = ExecutionReport(block=block)
            self._settle_due(block, report)
            self._apply_transfers(
                block,
                batch.senders[start:stop],
                batch.receivers[start:stop],
                amounts[start:stop],
                sender_shards[start:stop],
                receiver_shards[start:stop],
                report,
            )
            reports.append(report)
        return reports

    def settle_all(self, from_block: int) -> ExecutionReport:
        """Force-settle every pending receipt (end-of-epoch flush)."""
        horizon = from_block + self.relay_delay_blocks
        return self.execute_block(horizon, [])

    # -- migration interaction -------------------------------------------------------

    def apply_migration(self, account: int, to_shard: int) -> int:
        """Move an account's state when its allocation changes.

        Returns the bytes of state moved. The caller is responsible for
        updating ``self.mapping`` (they share the object in the ledger).
        """
        current = self.registry.locate(account)
        if current is None or current == to_shard:
            return 0
        return self.registry.migrate(account, current, to_shard)
