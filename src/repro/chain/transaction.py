"""Transactions: a per-object view and a columnar batch view.

The paper's model (Section III-A) treats a transaction as the set of
accounts it modifies, ``A_Tx``. Ethereum value transfers touch exactly two
accounts (sender, receiver), which is what both the real dataset and our
synthetic traces contain, so the columnar hot path stores sender/receiver
arrays. :class:`Transaction` is the friendly single-object API used in
examples, wallets, and block bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError

#: On-disk size we charge per committed transaction record when accounting
#: storage/communication (Table VI).  Roughly an Ethereum ETL CSV row.
TX_RECORD_BYTES = 109


@dataclass(frozen=True)
class Transaction:
    """A single committed transaction.

    ``sender`` and ``receiver`` are integer account ids (see
    :class:`repro.chain.account.AccountRegistry`).
    """

    sender: int
    receiver: int
    block: int = 0
    value: float = 0.0
    fee: float = 0.0
    tx_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sender < 0 or self.receiver < 0:
            raise ValidationError(
                f"account ids must be >= 0, got ({self.sender}, {self.receiver})"
            )
        if self.block < 0:
            raise ValidationError(f"block must be >= 0, got {self.block}")
        if self.value < 0 or self.fee < 0:
            raise ValidationError("value and fee must be >= 0")

    @property
    def accounts(self) -> FrozenSet[int]:
        """The set ``A_Tx`` of accounts this transaction modifies."""
        return frozenset((self.sender, self.receiver))

    def involves(self, account_id: int) -> bool:
        """True when ``account_id`` is modified by this transaction."""
        return account_id == self.sender or account_id == self.receiver

    def counterparty(self, account_id: int) -> int:
        """Return the other account, from ``account_id``'s point of view."""
        if account_id == self.sender:
            return self.receiver
        if account_id == self.receiver:
            return self.sender
        raise ValidationError(
            f"account {account_id} is not part of transaction {self!r}"
        )


class TransactionBatch:
    """Columnar batch of transactions (struct-of-arrays).

    All metric, allocation and execution hot paths operate on batches:
    numpy arrays ``senders``, ``receivers`` and ``blocks`` of equal
    length, plus optional ``values``/``fees`` columns carrying
    per-transfer amounts and fees for the cross-shard executor (``None``
    when the batch only feeds metrics/allocation, which keeps those
    paths allocation-free). Batches are immutable; slicing returns
    views wherever numpy allows.
    """

    __slots__ = ("senders", "receivers", "blocks", "values", "fees")

    def __init__(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        blocks: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
        fees: Optional[np.ndarray] = None,
    ) -> None:
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.ndim != 1 or receivers.ndim != 1:
            raise ValidationError("senders/receivers must be 1-D arrays")
        if len(senders) != len(receivers):
            raise ValidationError(
                f"length mismatch: {len(senders)} senders vs {len(receivers)} receivers"
            )
        if blocks is None:
            blocks = np.zeros(len(senders), dtype=np.int64)
        else:
            blocks = np.asarray(blocks, dtype=np.int64)
            if blocks.shape != senders.shape:
                raise ValidationError("blocks must match senders in shape")
        if values is not None:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != senders.shape:
                raise ValidationError("values must match senders in shape")
            if len(values) and values.min() < 0:
                raise ValidationError("transaction values must be >= 0")
        if fees is not None:
            fees = np.asarray(fees, dtype=np.float64)
            if fees.shape != senders.shape:
                raise ValidationError("fees must match senders in shape")
            if len(fees) and fees.min() < 0:
                raise ValidationError("transaction fees must be >= 0")
        if len(senders) and (senders.min() < 0 or receivers.min() < 0):
            raise ValidationError("account ids must be >= 0")
        self.senders = senders
        self.receivers = receivers
        self.blocks = blocks
        self.values = values
        self.fees = fees

    def __len__(self) -> int:
        return len(self.senders)

    def _value_at(self, index: int) -> float:
        return float(self.values[index]) if self.values is not None else 0.0

    def _fee_at(self, index: int) -> float:
        return float(self.fees[index]) if self.fees is not None else 0.0

    def __iter__(self) -> Iterator[Transaction]:
        for i in range(len(self)):
            yield Transaction(
                sender=int(self.senders[i]),
                receiver=int(self.receivers[i]),
                block=int(self.blocks[i]),
                value=self._value_at(i),
                fee=self._fee_at(i),
                tx_id=i,
            )

    def __getitem__(self, index: slice) -> "TransactionBatch":
        if not isinstance(index, slice):
            raise TypeError("use .at(i) for single transactions; indexing is by slice")
        return TransactionBatch(
            self.senders[index],
            self.receivers[index],
            self.blocks[index],
            self.values[index] if self.values is not None else None,
            self.fees[index] if self.fees is not None else None,
        )

    def at(self, index: int) -> Transaction:
        """Return the ``index``-th transaction as an object."""
        return Transaction(
            sender=int(self.senders[index]),
            receiver=int(self.receivers[index]),
            block=int(self.blocks[index]),
            value=self._value_at(index),
            fee=self._fee_at(index),
            tx_id=index,
        )

    def amounts(self, default: float = 0.0) -> np.ndarray:
        """Per-transfer amounts: the ``values`` column, or ``default``."""
        if self.values is not None:
            return self.values
        return np.full(len(self), default, dtype=np.float64)

    def fee_amounts(self, default: float = 0.0) -> np.ndarray:
        """Per-transfer fees: the ``fees`` column, or ``default``."""
        if self.fees is not None:
            return self.fees
        return np.full(len(self), default, dtype=np.float64)

    @classmethod
    def empty(cls) -> "TransactionBatch":
        """An empty batch."""
        zero = np.zeros(0, dtype=np.int64)
        return cls(zero, zero.copy(), zero.copy())

    @classmethod
    def from_transactions(cls, transactions: Sequence[Transaction]) -> "TransactionBatch":
        """Build a batch from transaction objects (test/example helper).

        The ``values`` column is always materialised so the executor
        sees exactly the objects' values — including explicit zeros —
        rather than falling back to a default amount. The ``fees``
        column is materialised only when some object carries a fee,
        keeping fee-free batches identical to their pre-fee layout.
        """
        if not transactions:
            return cls.empty()
        fees = np.array([t.fee for t in transactions], dtype=np.float64)
        return cls(
            np.array([t.sender for t in transactions], dtype=np.int64),
            np.array([t.receiver for t in transactions], dtype=np.int64),
            np.array([t.block for t in transactions], dtype=np.int64),
            np.array([t.value for t in transactions], dtype=np.float64),
            fees if fees.any() else None,
        )

    def select(self, mask: np.ndarray) -> "TransactionBatch":
        """Return the sub-batch where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.senders.shape:
            raise ValidationError("mask shape must match batch length")
        return TransactionBatch(
            self.senders[mask],
            self.receivers[mask],
            self.blocks[mask],
            self.values[mask] if self.values is not None else None,
            self.fees[mask] if self.fees is not None else None,
        )

    def concat(self, other: "TransactionBatch") -> "TransactionBatch":
        """Concatenate two batches (order preserved: self then other)."""
        if self.values is None and other.values is None:
            values = None
        else:
            values = np.concatenate(
                [self.amounts(), other.amounts()]
            )
        if self.fees is None and other.fees is None:
            fees = None
        else:
            fees = np.concatenate([self.fee_amounts(), other.fee_amounts()])
        return TransactionBatch(
            np.concatenate([self.senders, other.senders]),
            np.concatenate([self.receivers, other.receivers]),
            np.concatenate([self.blocks, other.blocks]),
            values,
            fees,
        )

    @classmethod
    def concat_many(
        cls, batches: Sequence["TransactionBatch"]
    ) -> "TransactionBatch":
        """Concatenate many batches in one pass (order preserved).

        The single-allocation twin of folding :meth:`concat` — this is
        what trace-source materialisation uses so assembling a trace
        from chunks stays O(total rows). Optional columns materialise
        whenever any input batch carries them.
        """
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        has_values = any(b.values is not None for b in batches)
        has_fees = any(b.fees is not None for b in batches)
        return cls(
            np.concatenate([b.senders for b in batches]),
            np.concatenate([b.receivers for b in batches]),
            np.concatenate([b.blocks for b in batches]),
            np.concatenate([b.amounts() for b in batches]) if has_values else None,
            np.concatenate([b.fee_amounts() for b in batches]) if has_fees else None,
        )

    def involving(self, account_id: int) -> "TransactionBatch":
        """Sub-batch of transactions touching ``account_id`` (a client's T_nu)."""
        mask = (self.senders == account_id) | (self.receivers == account_id)
        return self.select(mask)

    def touched_accounts(self) -> np.ndarray:
        """Sorted unique account ids appearing in this batch."""
        return np.unique(np.concatenate([self.senders, self.receivers]))

    def max_account_id(self) -> int:
        """Largest account id present, or -1 for an empty batch."""
        if len(self) == 0:
            return -1
        return int(max(self.senders.max(), self.receivers.max()))

    def record_bytes(self) -> int:
        """Storage footprint charged for these transactions (Table VI)."""
        return len(self) * TX_RECORD_BYTES

    def split_by_block(self, boundary: int) -> Tuple["TransactionBatch", "TransactionBatch"]:
        """Split into (blocks < boundary, blocks >= boundary)."""
        mask = self.blocks < boundary
        return self.select(mask), self.select(~mask)
