"""Deterministic discrete-event message network for the chain substrate.

`chain/network.py` answers "how many bytes cross the wire" (the paper's
Table VI analytic model); this module answers "when — and whether — each
message arrives". It simulates the cross-shard message plane as a
discrete-event system in *block* time:

- :class:`NetworkSpec` — a named, frozen fault/latency plan: per-link
  extra latency and jitter, iid drop probability, duplicate and reorder
  injection, a bandwidth term (serialization delay per message size),
  periodic link outages, periodic partitions, and per-message-class
  :class:`RetryPolicy` overrides. Presets: ``ideal``, ``lan``, ``wan``
  and ``lossy`` (degraded WAN).
- :class:`NetworkModel` — a spec plus a seeded RNG. All randomness flows
  through one ``numpy`` Generator consumed in event order, so a run is a
  pure function of ``(spec, seed, send sequence)``.
- :class:`MessageBus` — the event loop. A heap ordered by
  ``(block, seq, event_no)`` carries typed messages (relay receipts,
  beacon MR-batch announcements, workload-vector gossip). Dropped
  transmissions retransmit with bounded exponential backoff in blocks;
  a message whose deadline passes undelivered is reported as a typed
  :class:`~repro.errors.DeliveryExpired` record.
- :class:`ReceiptTransport` — the bridge between the
  :class:`~repro.chain.crossshard.CrossShardExecutor` and the bus.
  Withdraw-phase receipts ride the bus; settlement keys off *delivered*
  blocks, duplicate deliveries are deduplicated by receipt id
  (idempotent settle), and expired receipts turn into sender refunds so
  value is conserved under every fault plan.

Ideal-model bit-identity
------------------------
The ``ideal`` spec is a *null model*: :meth:`MessageBus.send` only bumps
counters (no events, no RNG draws), and
:meth:`ReceiptTransport.issue` appends receipts to the
:class:`~repro.chain.receipts.ReceiptLedger` with exactly the direct
path's arguments (``due_block = block + relay_delay_blocks``). The ideal
path therefore produces byte-identical ledgers, settlement order, state
roots and digests to an executor built with ``network=None`` — enforced
by equivalence tests and a perf-gated overhead budget, not by sampling
a distribution whose parameters happen to be zero.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from math import fsum
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DeliveryExpired
from repro.chain.network import MR_RECORD_BYTES, OMEGA_ENTRY_BYTES

__all__ = [
    "MSG_RECEIPT",
    "MSG_BEACON_ANNOUNCE",
    "MSG_GOSSIP",
    "MESSAGE_CLASSES",
    "NETWORK_IDEAL",
    "NETWORK_SPEC_NAMES",
    "RECEIPT_MESSAGE_BYTES",
    "BEACON_SHARD",
    "RetryPolicy",
    "LinkOutage",
    "Partition",
    "NetworkSpec",
    "network_spec",
    "NetworkModel",
    "BusStats",
    "Delivery",
    "MessageBus",
    "ReceiptTransport",
]

#: Typed message classes carried by the bus.
MSG_RECEIPT = "receipt"
MSG_BEACON_ANNOUNCE = "beacon-announce"
MSG_GOSSIP = "workload-gossip"
MESSAGE_CLASSES = (MSG_RECEIPT, MSG_BEACON_ANNOUNCE, MSG_GOSSIP)

#: Wire size of one relay receipt: the beacon MR record (Table VI) plus
#: amount, fee and shard-routing fields.
RECEIPT_MESSAGE_BYTES = MR_RECORD_BYTES + 23

#: Pseudo shard id for messages originating at the beacon chain. Beacon
#: announcements into a partitioned group still cross the cut (the
#: beacon sits outside every group), so partitions delay them too.
BEACON_SHARD = -1

NETWORK_IDEAL = "ideal"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmit schedule for one message class.

    A message is transmitted up to ``max_attempts`` times; attempt
    ``n`` (1-based) retransmits ``backoff_blocks * 2**(n-1)`` blocks
    after attempt ``n`` fails. If no copy is delivered by
    ``send_block + deadline_blocks`` the message expires (a
    :class:`~repro.errors.DeliveryExpired` record at the deadline
    block); transmissions that would land past the deadline are not
    delivered — the sender has already timed out.
    """

    max_attempts: int = 3
    backoff_blocks: int = 2
    deadline_blocks: int = 24

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_blocks < 1:
            raise ConfigurationError(
                f"backoff_blocks must be >= 1, got {self.backoff_blocks}"
            )
        if self.deadline_blocks < 1:
            raise ConfigurationError(
                f"deadline_blocks must be >= 1, got {self.deadline_blocks}"
            )

    def backoff(self, failed_attempts: int) -> int:
        """Blocks to wait after ``failed_attempts`` failures (>= 1)."""
        return self.backoff_blocks << (failed_attempts - 1)


@dataclass(frozen=True)
class LinkOutage:
    """Periodic outage of every link touching ``shard``.

    The link is down when ``(block - phase) % period_blocks <
    down_blocks``. Periodic (rather than absolute-block) schedules keep
    fault plans trace-agnostic: any workload, any block range.
    """

    shard: int
    period_blocks: int
    down_blocks: int
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period_blocks < 1:
            raise ConfigurationError(
                f"period_blocks must be >= 1, got {self.period_blocks}"
            )
        if not 0 <= self.down_blocks <= self.period_blocks:
            raise ConfigurationError(
                "down_blocks must lie in [0, period_blocks], got "
                f"{self.down_blocks}"
            )

    def down(self, src: int, dst: int, block: int) -> bool:
        if src != self.shard and dst != self.shard:
            return False
        return (block - self.phase) % self.period_blocks < self.down_blocks


@dataclass(frozen=True)
class Partition:
    """Periodic partition cutting ``group`` off from the rest.

    A message is blocked while the partition is active iff exactly one
    endpoint lies inside ``group`` (intra-group and outside-group
    traffic is unaffected). The beacon (:data:`BEACON_SHARD`) is outside
    every group, so announcements into a partitioned group are blocked.
    """

    group: Tuple[int, ...]
    period_blocks: int
    down_blocks: int
    phase: int = 0

    def __post_init__(self) -> None:
        if not self.group:
            raise ConfigurationError("partition group must be non-empty")
        if self.period_blocks < 1:
            raise ConfigurationError(
                f"period_blocks must be >= 1, got {self.period_blocks}"
            )
        if not 0 <= self.down_blocks <= self.period_blocks:
            raise ConfigurationError(
                "down_blocks must lie in [0, period_blocks], got "
                f"{self.down_blocks}"
            )

    def down(self, src: int, dst: int, block: int) -> bool:
        if (src in self.group) == (dst in self.group):
            return False
        return (block - self.phase) % self.period_blocks < self.down_blocks


_DEFAULT_RETRIES: Tuple[Tuple[str, RetryPolicy], ...] = (
    (MSG_RECEIPT, RetryPolicy(max_attempts=4, backoff_blocks=2, deadline_blocks=24)),
    (MSG_BEACON_ANNOUNCE, RetryPolicy(max_attempts=3, backoff_blocks=1, deadline_blocks=12)),
    (MSG_GOSSIP, RetryPolicy(max_attempts=2, backoff_blocks=1, deadline_blocks=8)),
)


@dataclass(frozen=True)
class NetworkSpec:
    """A named, frozen latency/fault plan for the message plane.

    All latencies are integers in block units and *additional* to the
    protocol's relay delay — the spec models network degradation on top
    of the consensus schedule, so receipt staleness is
    ``delivered - issued - relay_delay_blocks`` and the ideal spec adds
    exactly zero.
    """

    name: str
    extra_latency_blocks: int = 0
    jitter_blocks: int = 0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_jitter_blocks: int = 0
    #: Serialization delay: ``size_bytes // bandwidth`` extra blocks
    #: per message. 0 means unconstrained.
    bandwidth_bytes_per_block: float = 0.0
    outages: Tuple[LinkOutage, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    retries: Tuple[Tuple[str, RetryPolicy], ...] = _DEFAULT_RETRIES

    def __post_init__(self) -> None:
        for label, p in (
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{label} must lie in [0, 1], got {p}")
        for label, n in (
            ("extra_latency_blocks", self.extra_latency_blocks),
            ("jitter_blocks", self.jitter_blocks),
            ("reorder_jitter_blocks", self.reorder_jitter_blocks),
        ):
            if n < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {n}")
        if self.bandwidth_bytes_per_block < 0:
            raise ConfigurationError(
                "bandwidth_bytes_per_block must be >= 0, got "
                f"{self.bandwidth_bytes_per_block}"
            )
        known = {cls for cls, _ in self.retries}
        for cls in known:
            if cls not in MESSAGE_CLASSES:
                raise ConfigurationError(f"unknown message class in retries: {cls!r}")

    @property
    def is_ideal(self) -> bool:
        """True when the spec cannot delay, drop, or duplicate anything."""
        return (
            self.extra_latency_blocks == 0
            and self.jitter_blocks == 0
            and self.drop_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.reorder_prob == 0.0
            and self.bandwidth_bytes_per_block == 0.0
            and not self.outages
            and not self.partitions
        )

    def retry_for(self, message_class: str) -> RetryPolicy:
        for cls, policy in self.retries:
            if cls == message_class:
                return policy
        return RetryPolicy()


_SPECS: Dict[str, NetworkSpec] = {
    spec.name: spec
    for spec in (
        # Null model: counters only, no events. Bit-identical to the
        # direct-call path by construction (see module docstring).
        NetworkSpec(name=NETWORK_IDEAL),
        # Same-datacenter links: sub-block jitter only.
        NetworkSpec(name="lan", jitter_blocks=1, drop_prob=0.001),
        # Healthy wide-area links: steady extra latency, light loss,
        # occasional reordering, finite serialization bandwidth.
        NetworkSpec(
            name="wan",
            extra_latency_blocks=2,
            jitter_blocks=2,
            drop_prob=0.01,
            duplicate_prob=0.002,
            reorder_prob=0.05,
            reorder_jitter_blocks=3,
            bandwidth_bytes_per_block=64_000.0,
        ),
        # Degraded WAN: heavy loss, frequent reordering, duplicate
        # echo, periodic outage of shard 0's links and a periodic
        # partition isolating shard 1. The scenario cell the
        # --network-smoke CI step runs.
        NetworkSpec(
            name="lossy",
            extra_latency_blocks=3,
            jitter_blocks=4,
            drop_prob=0.12,
            duplicate_prob=0.02,
            reorder_prob=0.10,
            reorder_jitter_blocks=6,
            bandwidth_bytes_per_block=16_000.0,
            outages=(LinkOutage(shard=0, period_blocks=97, down_blocks=6),),
            partitions=(Partition(group=(1,), period_blocks=149, down_blocks=5),),
        ),
    )
}

NETWORK_SPEC_NAMES: Tuple[str, ...] = tuple(_SPECS)


def network_spec(name: str) -> NetworkSpec:
    """Look up a preset :class:`NetworkSpec` by name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network spec {name!r}; expected one of "
            f"{', '.join(NETWORK_SPEC_NAMES)}"
        ) from None


class NetworkModel:
    """A :class:`NetworkSpec` plus a seeded RNG stream.

    One ``numpy`` Generator serves every sample, consumed in event
    order, so two models built from the same ``(spec, seed)`` replay
    identical fault sequences for identical send sequences.
    """

    def __init__(self, spec: Union[str, NetworkSpec], seed: int = 0) -> None:
        self.spec = spec if isinstance(spec, NetworkSpec) else network_spec(spec)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    @property
    def is_ideal(self) -> bool:
        return self.spec.is_ideal

    @property
    def name(self) -> str:
        return self.spec.name

    def retry_for(self, message_class: str) -> RetryPolicy:
        return self.spec.retry_for(message_class)

    def link_down(self, src: int, dst: int, block: int) -> bool:
        spec = self.spec
        for outage in spec.outages:
            if outage.down(src, dst, block):
                return True
        for partition in spec.partitions:
            if partition.down(src, dst, block):
                return True
        return False

    def sample_drop(self) -> bool:
        p = self.spec.drop_prob
        return p > 0.0 and self._rng.random() < p

    def sample_duplicate(self) -> bool:
        p = self.spec.duplicate_prob
        return p > 0.0 and self._rng.random() < p

    def sample_latency(self, size_bytes: float) -> int:
        """Extra delivery latency (blocks) beyond the relay delay."""
        spec = self.spec
        extra = spec.extra_latency_blocks
        if spec.jitter_blocks:
            extra += int(self._rng.integers(0, spec.jitter_blocks + 1))
        if spec.reorder_prob and self._rng.random() < spec.reorder_prob:
            extra += spec.reorder_jitter_blocks
        if spec.bandwidth_bytes_per_block:
            extra += int(size_bytes // spec.bandwidth_bytes_per_block)
        return extra


@dataclass
class BusStats:
    """Cumulative bus counters (monotone; consumers diff snapshots)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    expired: int = 0

    def snapshot(self) -> Tuple[int, int, int, int, int, int]:
        return (
            self.sent,
            self.delivered,
            self.dropped,
            self.retransmissions,
            self.duplicates,
            self.expired,
        )


@dataclass(frozen=True)
class Delivery:
    """One delivered message copy, emitted in ``(block, seq)`` order."""

    block: int
    seq: int
    message_class: str
    src: int
    dst: int
    issued_block: int
    attempts: int
    duplicate: bool
    payload: object


class _Pending:
    """Mutable in-flight message state (bus-internal)."""

    __slots__ = (
        "seq",
        "message_class",
        "src",
        "dst",
        "issued_block",
        "deadline_block",
        "base_delay",
        "size_bytes",
        "payload",
        "attempts",
        "delivered_copies",
        "resolved",
    )

    def __init__(
        self,
        seq: int,
        message_class: str,
        src: int,
        dst: int,
        issued_block: int,
        deadline_block: int,
        base_delay: int,
        size_bytes: float,
        payload: object,
    ) -> None:
        self.seq = seq
        self.message_class = message_class
        self.src = src
        self.dst = dst
        self.issued_block = issued_block
        self.deadline_block = deadline_block
        self.base_delay = base_delay
        self.size_bytes = size_bytes
        self.payload = payload
        self.attempts = 0
        self.delivered_copies = 0
        self.resolved = False


_EVT_ATTEMPT = 0
_EVT_DELIVER = 1
_EVT_EXPIRE = 2


class MessageBus:
    """Heap-ordered discrete-event loop over a :class:`NetworkModel`.

    Events are keyed ``(block, seq, event_no)``: delivery order within a
    block is the deterministic send order, and the monotone event
    counter breaks residual ties, so the pop sequence — and therefore
    the RNG consumption order — is a pure function of the send sequence.

    Under the ideal model :meth:`send` is a counter bump: no heap entry,
    no RNG draw, nothing for :meth:`advance` to do.
    """

    def __init__(self, model: NetworkModel) -> None:
        self.model = model
        self.stats = BusStats()
        #: Highest block this bus has been advanced to.
        self.clock = 0
        self._heap: List[Tuple[int, int, int, int, _Pending]] = []
        self._next_seq = 0
        self._event_no = 0
        self._max_event_block = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def horizon(self) -> int:
        """Latest block at which this bus can still produce an event."""
        return max(self._max_event_block, self.clock)

    def record_bulk(self, message_class: str, count: int) -> None:
        """Ideal-model bulk accounting: ``count`` messages sent and
        (deterministically) delivered, no per-message event objects."""
        self.stats.sent += count
        self.stats.delivered += count

    def send(
        self,
        message_class: str,
        src: int,
        dst: int,
        block: int,
        base_delay: int = 0,
        size_bytes: float = 0.0,
        payload: object = None,
    ) -> int:
        """Enqueue one message; returns its bus sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self.stats.sent += 1
        if self.model.is_ideal:
            # Null model: instant, reliable, unobserved by the heap.
            self.stats.delivered += 1
            return seq
        policy = self.model.retry_for(message_class)
        entry = _Pending(
            seq=seq,
            message_class=message_class,
            src=int(src),
            dst=int(dst),
            issued_block=int(block),
            deadline_block=int(block) + policy.deadline_blocks,
            base_delay=int(base_delay),
            size_bytes=float(size_bytes),
            payload=payload,
        )
        # Every event chain for this message (retries, delivery, expiry)
        # resolves by the deadline, so the horizon covers it even though
        # the later events are scheduled lazily.
        if entry.deadline_block > self._max_event_block:
            self._max_event_block = entry.deadline_block
        self._push(int(block), entry.seq, _EVT_ATTEMPT, entry)
        return seq

    def advance(
        self, block: int
    ) -> Tuple[List[Delivery], List[DeliveryExpired]]:
        """Process every event scheduled at or before ``block``.

        Returns ``(deliveries, expiries)``. Deliveries come out sorted
        by ``(delivery block, seq)``; expiries by ``(deadline, seq)``.
        """
        block = int(block)
        if block > self.clock:
            self.clock = block
        deliveries: List[Delivery] = []
        expiries: List[DeliveryExpired] = []
        heap = self._heap
        while heap and heap[0][0] <= block:
            event_block, _seq, _no, kind, entry = heapq.heappop(heap)
            if kind == _EVT_ATTEMPT:
                self._process_attempt(event_block, entry)
            elif kind == _EVT_DELIVER:
                first = entry.delivered_copies == 0
                entry.delivered_copies += 1
                self.stats.delivered += 1
                if not first:
                    self.stats.duplicates += 1
                deliveries.append(
                    Delivery(
                        block=event_block,
                        seq=entry.seq,
                        message_class=entry.message_class,
                        src=entry.src,
                        dst=entry.dst,
                        issued_block=entry.issued_block,
                        attempts=entry.attempts,
                        duplicate=not first,
                        payload=entry.payload,
                    )
                )
            else:  # _EVT_EXPIRE
                if entry.delivered_copies == 0 and not entry.resolved:
                    entry.resolved = True
                    self.stats.expired += 1
                    expiries.append(
                        DeliveryExpired(
                            entry.message_class,
                            entry.seq,
                            entry.src,
                            entry.dst,
                            entry.issued_block,
                            entry.deadline_block,
                            entry.payload,
                        )
                    )
        return deliveries, expiries

    # -- internals ----------------------------------------------------

    def _push(self, block: int, seq: int, kind: int, entry: _Pending) -> None:
        self._event_no += 1
        if block > self._max_event_block:
            self._max_event_block = block
        heapq.heappush(self._heap, (block, seq, self._event_no, kind, entry))

    def _process_attempt(self, block: int, entry: _Pending) -> None:
        model = self.model
        policy = model.retry_for(entry.message_class)
        entry.attempts += 1
        dropped = model.link_down(entry.src, entry.dst, block) or model.sample_drop()
        if dropped:
            self.stats.dropped += 1
            if entry.attempts < policy.max_attempts:
                retry_at = block + policy.backoff(entry.attempts)
                if retry_at <= entry.deadline_block:
                    self.stats.retransmissions += 1
                    self._push(retry_at, entry.seq, _EVT_ATTEMPT, entry)
                    return
            # Out of attempts (or the backoff overshoots): the timeout
            # fires at the protocol deadline, not at the last failure.
            self._push(entry.deadline_block, entry.seq, _EVT_EXPIRE, entry)
            return
        latency = entry.base_delay + model.sample_latency(entry.size_bytes)
        deliver_at = block + max(latency, 0)
        if deliver_at > entry.deadline_block:
            # Arrived too late to matter: the sender already timed out,
            # so the copy is discarded in flight.
            self._push(entry.deadline_block, entry.seq, _EVT_EXPIRE, entry)
            return
        self._push(deliver_at, entry.seq, _EVT_DELIVER, entry)
        if model.sample_duplicate():
            echo_at = deliver_at + 1
            if echo_at <= entry.deadline_block:
                self._push(echo_at, entry.seq, _EVT_DELIVER, entry)


_NO_REFUNDS: Tuple[Tuple[int, int, float], ...] = ()


class ReceiptTransport:
    """Routes withdraw-phase receipts through a :class:`MessageBus`.

    The executor issues receipts here instead of appending them to the
    ledger directly; :meth:`poll` (called at the top of every settle
    pass) drains the bus, appends delivered receipts to the ledger
    keyed by their *delivered* block, deduplicates redelivered copies by
    receipt id, and returns ``(tx_id, sender, amount)`` refund rows for
    expired receipts. Undelivered value is tracked per message (exact
    ``fsum``, no incremental float drift) so
    ``ledger total + pending_value`` keeps conservation checks tight at
    every block boundary.
    """

    def __init__(self, model: NetworkModel, relay_delay_blocks: int) -> None:
        self.model = model
        self.bus = MessageBus(model)
        self.relay_delay_blocks = int(relay_delay_blocks)
        self._live_amounts: Dict[int, float] = {}
        self._delivered_ids: set = set()
        # (prune_block, tx_id): a delivered id can only echo again up to
        # its deadline (+1 for the duplicate offset), after which it is
        # dropped from the dedup set to bound memory.
        self._dedup_window: Deque[Tuple[int, int]] = deque()
        self.duplicates_deduped = 0
        self.expired_receipts = 0
        self.refunded_value = 0.0
        self._staleness: List[int] = []

    @property
    def is_ideal(self) -> bool:
        return self.model.is_ideal

    def pending_count(self) -> int:
        """Receipts issued but neither delivered nor expired."""
        return len(self._live_amounts)

    def pending_value(self) -> float:
        """Exact value carried by undelivered, unexpired receipts."""
        if not self._live_amounts:
            return 0.0
        return fsum(self._live_amounts.values())

    def horizon(self) -> int:
        """A block by which every in-flight message has resolved."""
        return self.bus.horizon + 1

    def drain_staleness(self) -> List[int]:
        """Per-receipt staleness (blocks late vs the relay schedule)
        accumulated since the last drain."""
        samples = self._staleness
        self._staleness = []
        return samples

    def issue(
        self,
        ledger,
        block: int,
        tx_ids: np.ndarray,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        source_shards: np.ndarray,
        target_shards: np.ndarray,
    ) -> None:
        """Put one block's withdraw receipts on the wire."""
        count = len(tx_ids)
        if count == 0:
            return
        if self.model.is_ideal:
            # Bit-identical to the direct path: same append, same
            # arguments, same ledger bytes. Only the counters move.
            self.bus.record_bulk(MSG_RECEIPT, count)
            ledger.append_batch(
                tx_ids=tx_ids,
                senders=senders,
                receivers=receivers,
                amounts=amounts,
                source_shards=source_shards,
                target_shards=target_shards,
                issued_block=block,
                due_block=block + self.relay_delay_blocks,
            )
            return
        bus = self.bus
        live = self._live_amounts
        for i in range(count):
            amount = float(amounts[i])
            payload = (
                int(tx_ids[i]),
                int(senders[i]),
                int(receivers[i]),
                amount,
                int(source_shards[i]),
                int(target_shards[i]),
            )
            seq = bus.send(
                MSG_RECEIPT,
                src=payload[4],
                dst=payload[5],
                block=block,
                base_delay=self.relay_delay_blocks,
                size_bytes=RECEIPT_MESSAGE_BYTES,
                payload=payload,
            )
            live[seq] = amount

    def poll(
        self, block: int, ledger
    ) -> Sequence[Tuple[int, int, float]]:
        """Drain the bus up to ``block``.

        Appends delivered receipts to ``ledger`` grouped by delivered
        block (which becomes their ``due_block``, so the unchanged
        ``pop_due`` settles them this pass) and returns refund rows
        ``(tx_id, sender, amount)`` for receipts that expired.
        """
        if self.model.is_ideal:
            return _NO_REFUNDS
        deliveries, expiries = self.bus.advance(block)
        if deliveries:
            self._append_deliveries(deliveries, ledger)
        refunds: List[Tuple[int, int, float]] = []
        for expiry in expiries:
            if expiry.message_class != MSG_RECEIPT:
                continue
            tx_id, sender, _receiver, amount, _src, _dst = expiry.payload
            self._live_amounts.pop(expiry.seq, None)
            self.expired_receipts += 1
            self.refunded_value += amount
            refunds.append((tx_id, sender, amount))
        window = self._dedup_window
        delivered_ids = self._delivered_ids
        while window and window[0][0] < block:
            delivered_ids.discard(window.popleft()[1])
        return refunds

    # -- internals ----------------------------------------------------

    def _append_deliveries(self, deliveries: List[Delivery], ledger) -> None:
        relay = self.relay_delay_blocks
        deadline = self.model.retry_for(MSG_RECEIPT).deadline_blocks
        delivered_ids = self._delivered_ids
        live = self._live_amounts
        rows: List[Tuple[int, int, int, float, int, int, int]] = []
        group_block: Optional[int] = None

        def flush() -> None:
            if not rows:
                return
            ledger.append_batch(
                tx_ids=np.array([r[0] for r in rows], dtype=np.int64),
                senders=np.array([r[1] for r in rows], dtype=np.int64),
                receivers=np.array([r[2] for r in rows], dtype=np.int64),
                amounts=np.array([r[3] for r in rows], dtype=np.float64),
                source_shards=np.array([r[4] for r in rows], dtype=np.int64),
                target_shards=np.array([r[5] for r in rows], dtype=np.int64),
                issued_block=np.array([r[6] for r in rows], dtype=np.int64),
                due_block=group_block,
            )
            rows.clear()

        for d in deliveries:
            if d.message_class != MSG_RECEIPT:
                continue
            tx_id, sender, receiver, amount, src, dst = d.payload
            if tx_id in delivered_ids:
                # Redelivered copy: settle is idempotent by receipt id.
                self.duplicates_deduped += 1
                continue
            if d.block != group_block:
                flush()
                group_block = d.block
            delivered_ids.add(tx_id)
            self._dedup_window.append((d.issued_block + deadline + 2, tx_id))
            live.pop(d.seq, None)
            self._staleness.append(d.block - d.issued_block - relay)
            rows.append((tx_id, sender, receiver, amount, src, dst, d.issued_block))
        flush()
