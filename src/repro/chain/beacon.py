"""The beacon chain: validates and stores account-migration requests.

Mosaic reuses the Ethereum-2.0-style beacon chain as the coordination
layer (Section II-A / III-B). Clients submit migration requests (MRs) to
the beacon chain; miners of the beacon chain run ordinary consensus to
commit them. Per epoch, at most ``capacity`` MRs can commit — the paper
bounds this by the shard capacity ``lambda`` — and when over-subscribed,
requests with the largest potential improvement win (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from pathlib import Path

from repro.chain.block import GENESIS_HASH, Block, BlockHeader
from repro.chain.kernels import select_migrations_kernel
from repro.chain.mapping import ShardMapping
from repro.chain.migration import MigrationRequest, MigrationRequestBatch
from repro.chain.segments import DEFAULT_SEGMENT_ROWS, SegmentedCommitLog
from repro.errors import BlockLinkError, MigrationError, ValidationError


@dataclass
class CommitReport:
    """Outcome of one epoch's migration-request commitment round."""

    epoch: int
    proposed: int
    committed: List[MigrationRequest] = field(default_factory=list)
    rejected: List[MigrationRequest] = field(default_factory=list)

    @property
    def committed_count(self) -> int:
        return len(self.committed)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)


@dataclass
class BatchCommitReport:
    """Columnar commitment outcome (the batch path's :class:`CommitReport`).

    ``committed_batch`` is the committed rows in commitment order; the
    object views (``committed`` / ``rejected``) materialise lazily so
    million-row rounds never build per-request objects unless a caller
    actually inspects them.
    """

    epoch: int
    proposed: int
    committed_batch: MigrationRequestBatch
    rejected_batch: MigrationRequestBatch

    @property
    def committed_count(self) -> int:
        return len(self.committed_batch)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected_batch)

    @property
    def committed(self) -> List[MigrationRequest]:
        batch = self.committed_batch
        return batch.take(np.arange(len(batch)))

    @property
    def rejected(self) -> List[MigrationRequest]:
        batch = self.rejected_batch
        return batch.take(np.arange(len(batch)))


def apply_batch_to_mapping(
    batch: MigrationRequestBatch, mapping: ShardMapping
) -> int:
    """Bulk-apply one block's committed batch to ``mapping``.

    In-universe rows assign through ``assign_many`` (deduplicated
    keep-last within the block, preserving sequential last-write-wins
    semantics; commitment rounds dedup per account anyway). Returns the
    number of applied rows, duplicates included, matching the scalar
    per-request loop.
    """
    in_universe = batch.accounts < mapping.n_accounts
    accounts = batch.accounts[in_universe]
    targets = batch.to_shards[in_universe]
    if len(accounts) == 0:
        return 0
    # Keep-last dedup: reverse, keep first occurrence.
    _, first_pos = np.unique(accounts[::-1], return_index=True)
    keep = len(accounts) - 1 - first_pos
    mapping.assign_many(accounts[keep], targets[keep])
    return len(accounts)


def mr_announcement_bytes(request_count: int) -> float:
    """Wire size of one beacon MR-batch announcement to one shard.

    Miners learn committed migrations by syncing the beacon chain; on
    the simulated message plane that sync is modelled as one
    announcement per shard per reconfiguration, carrying the epoch's
    committed MR records (the same ``MR_RECORD_BYTES`` unit the Table VI
    overhead model charges for beacon replication).
    """
    from repro.chain.network import MR_RECORD_BYTES

    return float(max(int(request_count), 0) * MR_RECORD_BYTES)


def _expand_entries(
    entries: Sequence[object],
) -> List[MigrationRequest]:
    """Materialise a mixed request/batch sequence as objects, in order."""
    requests: List[MigrationRequest] = []
    for entry in entries:
        if isinstance(entry, MigrationRequestBatch):
            requests.extend(entry.take(np.arange(len(entry))))
        elif isinstance(entry, MigrationRequest):
            requests.append(entry)
    return requests


def prioritize_requests(
    requests: Sequence[MigrationRequest], capacity: Optional[int]
) -> Tuple[List[MigrationRequest], List[MigrationRequest]]:
    """Split ``requests`` into (committed, rejected) under ``capacity``.

    Duplicate requests for one account keep only the highest-gain request
    (a client controls its own account; conflicting requests are a client
    bug, but the chain must still be deterministic about them). The
    survivors are ordered by descending gain, ties broken by account id
    for determinism, and the top ``capacity`` commit.
    """
    best_per_account: Dict[int, MigrationRequest] = {}
    duplicates: List[MigrationRequest] = []
    for request in requests:
        current = best_per_account.get(request.account)
        if current is None or request.gain > current.gain:
            if current is not None:
                duplicates.append(current)
            best_per_account[request.account] = request
        else:
            duplicates.append(request)
    ordered = sorted(
        best_per_account.values(), key=lambda r: (-r.gain, r.account)
    )
    if capacity is None or capacity >= len(ordered):
        return ordered, duplicates
    if capacity < 0:
        raise ValidationError(f"capacity must be >= 0, got {capacity}")
    return ordered[:capacity], ordered[capacity:] + duplicates


class BeaconChain:
    """The beacon chain ``BC`` storing committed migration requests.

    Two storage modes share one protocol:

    * **in-memory** (default, ``spill_dir=None``) — every block and its
      committed payload stays resident. This is the equivalence
      reference; its behaviour is byte-for-byte the pre-spill chain.
    * **segment-spilled** (``spill_dir=<path>``) — committed batches
      append to a height-indexed on-disk
      :class:`~repro.chain.segments.SegmentedCommitLog` and only block
      *headers* stay in memory, so an unbounded run's beacon footprint
      is O(epoch window), not O(run). Commit decisions (and every
      pure-batch round's block hashes) are identical to in-memory mode;
      scalar/mixed rounds canonicalise their payload to one columnar
      batch per block (dropping per-request fee metadata), since a
      segment stores rows, not objects.
    """

    CHAIN_ID = "beacon"

    def __init__(
        self,
        spill_dir: Optional[Union[str, Path]] = None,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        recover: bool = False,
    ) -> None:
        self._blocks: List[Block] = []
        #: Spill mode keeps headers only; payloads live in segments.
        self._headers: List[BlockHeader] = []
        #: Pending submissions in order; scalar requests and columnar
        #: batches interleave freely.
        self._pending: List[Union[MigrationRequest, MigrationRequestBatch]] = []
        self._committed_log: List[
            Union[MigrationRequest, MigrationRequestBatch]
        ] = []
        self._committed_count = 0
        self._spill: Optional[SegmentedCommitLog] = (
            SegmentedCommitLog(
                spill_dir, segment_rows=segment_rows, recover=recover
            )
            if spill_dir is not None
            else None
        )

    # -- chain view ----------------------------------------------------------

    @property
    def spilled(self) -> bool:
        """True when committed payloads live in on-disk segments."""
        return self._spill is not None

    def __len__(self) -> int:
        if self._spill is not None:
            return len(self._headers)
        return len(self._blocks)

    def _block_at(self, height: int) -> Block:
        """Reconstruct one spilled block (header + segment payload).

        ``Block.__post_init__`` re-derives the payload digest, so a
        reconstructed block self-checks the segment bytes against the
        header committed at append time.
        """
        header = self._headers[height]
        batch = self._spill.batch_at(height)
        return Block(
            header=header, payload=(batch,) if batch is not None else ()
        )

    @property
    def blocks(self) -> Sequence[Block]:
        """Read-only view of the beacon blocks.

        In spill mode every payload is re-read from its segment — O(all
        committed rows); windowed consumers use
        :meth:`iter_committed_batches` / :meth:`batches_since` instead.
        """
        if self._spill is not None:
            return tuple(
                self._block_at(height) for height in range(len(self._headers))
            )
        return tuple(self._blocks)

    @property
    def tip_hash(self) -> str:
        if self._spill is not None:
            return (
                self._headers[-1].block_hash if self._headers else GENESIS_HASH
            )
        return self._blocks[-1].block_hash if self._blocks else GENESIS_HASH

    @property
    def committed_count(self) -> int:
        """Total MRs ever committed — O(1), never re-expands the log."""
        return self._committed_count

    @property
    def committed_requests(self) -> Sequence[MigrationRequest]:
        """Every MR ever committed, in commit order (the set ``MR``).

        Materialises the **full** log as per-request objects — O(all
        committed MRs), kept for API compatibility and small chains.
        Hot paths use :meth:`committed_count` for cardinality and
        :meth:`iter_committed_batches`/:meth:`batches_since` for
        windowed access.
        """
        if self._spill is not None:
            requests: List[MigrationRequest] = []
            for batch in self.iter_committed_batches():
                requests.extend(batch.take(np.arange(len(batch))))
            return tuple(requests)
        return tuple(_expand_entries(self._committed_log))

    @property
    def pending_requests(self) -> Sequence[MigrationRequest]:
        """Requests submitted but not yet committed."""
        return tuple(_expand_entries(self._pending))

    def verify(self) -> None:
        """Re-verify the beacon chain's hash links.

        Operates on headers, so spill mode verifies without reading any
        segment payload back.
        """
        headers = (
            self._headers
            if self._spill is not None
            else [block.header for block in self._blocks]
        )
        parent = GENESIS_HASH
        for height, header in enumerate(headers):
            if header.height != height:
                raise BlockLinkError(f"height mismatch at {height}")
            if header.parent_hash != parent:
                raise BlockLinkError(f"broken parent link at height {height}")
            parent = header.block_hash

    def close(self) -> None:
        """Release the spill log's file handle (no-op in-memory)."""
        if self._spill is not None:
            self._spill.close()

    # -- request lifecycle -----------------------------------------------------

    def submit(self, request: MigrationRequest) -> None:
        """Accept a client's migration request into the beacon mempool."""
        if not isinstance(request, MigrationRequest):
            raise MigrationError(
                f"expected MigrationRequest, got {type(request).__name__}"
            )
        self._pending.append(request)

    def submit_many(self, requests: Sequence[MigrationRequest]) -> None:
        """Accept several requests at once."""
        for request in requests:
            self.submit(request)

    def submit_batch(self, batch: MigrationRequestBatch) -> None:
        """Accept a columnar batch of requests into the beacon mempool.

        The batch validated on construction; empty batches are a no-op.
        """
        if not isinstance(batch, MigrationRequestBatch):
            raise MigrationError(
                f"expected MigrationRequestBatch, got {type(batch).__name__}"
            )
        if len(batch):
            self._pending.append(batch)

    def commit_epoch(
        self,
        epoch: int,
        capacity: Optional[int] = None,
        mapping: Optional[ShardMapping] = None,
    ) -> Union[CommitReport, "BatchCommitReport"]:
        """Run one commitment round: validate, prioritise, and block-commit.

        When ``mapping`` is provided, requests whose ``from_shard`` no
        longer matches the account's current shard are rejected (stale
        requests, e.g. the client raced a previous migration). The
        committed requests are packed into one beacon block.

        When every pending submission arrived as a
        :class:`MigrationRequestBatch`, the whole round runs columnar
        (:func:`~repro.chain.kernels.select_migrations_kernel` — the
        same stale filter, per-account dedup and gain prioritisation,
        element-for-element) and returns a :class:`BatchCommitReport`
        whose block payload is the committed batch, not per-request
        objects. Mixed rounds (scalar requests alongside batches)
        expand the batches and take the object path, so per-request
        metadata the columnar form does not carry — proposal epochs,
        fees — survives verbatim; the engine's hot path is pure-batch,
        so this never costs where it matters.
        """
        proposed = list(self._pending)
        self._pending.clear()
        batch_count = sum(
            isinstance(entry, MigrationRequestBatch) for entry in proposed
        )
        if batch_count:
            if batch_count == len(proposed):
                return self._commit_epoch_batch(epoch, capacity, mapping, proposed)
            proposed = list(_expand_entries(proposed))

        valid: List[MigrationRequest] = []
        stale: List[MigrationRequest] = []
        for request in proposed:
            if mapping is not None:
                if request.account >= mapping.n_accounts:
                    stale.append(request)
                    continue
                if mapping.shard_of(request.account) != request.from_shard:
                    stale.append(request)
                    continue
                if request.to_shard >= mapping.k:
                    stale.append(request)
                    continue
            valid.append(request)

        committed, rejected = prioritize_requests(valid, capacity)
        if self._spill is not None:
            # Spill mode canonicalises the payload columnar: segments
            # store rows, so the block commits to the same batch that
            # lands on disk (per-request fees are not carried).
            committed_batch = (
                MigrationRequestBatch.from_requests(committed)
                if committed
                else MigrationRequestBatch.empty(epoch=epoch)
            )
            self._append_block(
                epoch, committed_batch, store_batch=committed_batch
            )
        else:
            block = Block.build(
                chain_id=self.CHAIN_ID,
                height=len(self._blocks),
                parent_hash=self.tip_hash,
                payload=committed,
                epoch=epoch,
            )
            self._blocks.append(block)
            self._committed_log.extend(committed)
        self._committed_count += len(committed)
        return CommitReport(
            epoch=epoch,
            proposed=len(proposed),
            committed=committed,
            rejected=rejected + stale,
        )

    def _commit_epoch_batch(
        self,
        epoch: int,
        capacity: Optional[int],
        mapping: Optional[ShardMapping],
        proposed: Sequence[MigrationRequestBatch],
    ) -> "BatchCommitReport":
        """The columnar commitment round (see :meth:`commit_epoch`).

        The proposal epoch survives when all pending batches agree on
        one; otherwise the committed batch carries the commit round's
        epoch (a batch has a single epoch column).
        """
        proposal_epochs = {batch.epoch for batch in proposed}
        combined = MigrationRequestBatch.concat(
            proposed,
            epoch=(
                proposal_epochs.pop() if len(proposal_epochs) == 1 else epoch
            ),
        )
        committed_idx, rejected_idx = select_migrations_kernel(
            combined.accounts,
            combined.from_shards,
            combined.to_shards,
            combined.gains,
            mapping.as_array() if mapping is not None else None,
            mapping.k if mapping is not None else None,
            capacity,
        )
        committed_batch = combined.take_batch(committed_idx)
        if self._spill is not None:
            self._append_block(
                epoch, committed_batch, store_batch=committed_batch
            )
        else:
            block = Block.build(
                chain_id=self.CHAIN_ID,
                height=len(self._blocks),
                parent_hash=self.tip_hash,
                payload=[committed_batch] if len(committed_batch) else [],
                epoch=epoch,
            )
            self._blocks.append(block)
            if len(committed_batch):
                self._committed_log.append(committed_batch)
        self._committed_count += len(committed_batch)
        return BatchCommitReport(
            epoch=epoch,
            proposed=len(combined),
            committed_batch=committed_batch,
            rejected_batch=combined.take_batch(rejected_idx),
        )

    def _append_block(
        self,
        epoch: int,
        committed_batch: MigrationRequestBatch,
        store_batch: MigrationRequestBatch,
    ) -> None:
        """Spill-mode block append: keep the header, spill the payload."""
        block = Block.build(
            chain_id=self.CHAIN_ID,
            height=len(self._headers),
            parent_hash=self.tip_hash,
            payload=[committed_batch] if len(committed_batch) else [],
            epoch=epoch,
        )
        self._headers.append(block.header)
        if len(store_batch):
            self._spill.append(block.header.height, store_batch)

    # -- miner-side synchronisation ---------------------------------------------

    def requests_since(self, block_height: int) -> List[MigrationRequest]:
        """MRs committed in blocks at height >= ``block_height``.

        Miners call this during epoch reconfiguration to update their
        locally stored mapping ``phi`` from the latest beacon blocks.
        Batch payloads are materialised to objects — the batched
        reconfigurator uses :meth:`batches_since` instead.
        """
        if self._spill is not None:
            requests: List[MigrationRequest] = []
            for batch in self.iter_committed_batches(block_height):
                requests.extend(batch.take(np.arange(len(batch))))
            return requests
        requests = []
        for block in self._blocks[max(0, block_height):]:
            requests.extend(_expand_entries(block.payload))
        return requests

    def _block_payload_batch(self, block: Block) -> MigrationRequestBatch:
        """One block's committed payload as a single columnar batch."""
        block_batches: List[MigrationRequestBatch] = []
        block_objects: List[MigrationRequest] = []
        for item in block.payload:
            if isinstance(item, MigrationRequestBatch):
                block_batches.append(item)
            elif isinstance(item, MigrationRequest):
                block_objects.append(item)
        if block_objects:
            block_batches.append(
                MigrationRequestBatch.from_requests(block_objects)
            )
        if len(block_batches) == 1:
            return block_batches[0]
        return MigrationRequestBatch.concat(
            block_batches, epoch=block.header.epoch
        )

    def iter_committed_batches(
        self, block_height: int = 0
    ) -> Iterator[MigrationRequestBatch]:
        """Lazily yield per-block committed batches from ``block_height``.

        The windowed replacement for :attr:`committed_requests`: one
        non-empty batch per block, in block order, holding a single
        block's rows at a time. In spill mode the rows stream straight
        off the segment files.
        """
        if self._spill is not None:
            for _height, batch in self._spill.iter_batches(
                max(0, block_height)
            ):
                yield batch
            return
        for block in self._blocks[max(0, block_height):]:
            batch = self._block_payload_batch(block)
            if len(batch):
                yield batch

    def batches_since(self, block_height: int) -> List[MigrationRequestBatch]:
        """Per-block committed MRs as columnar batches, in block order.

        One batch per non-empty block (object payloads are converted),
        so callers that must preserve cross-block ordering — the same
        account can legitimately move twice across two epochs' blocks —
        can apply them block by block without materialising objects.
        Materialises only the requested height window; unbounded-run
        consumers with a sync height never touch the full log.
        """
        return list(self.iter_committed_batches(block_height))

    def apply_to_mapping(
        self, mapping: ShardMapping, since_height: int = 0
    ) -> int:
        """Apply committed MRs to ``mapping`` in place; return count applied.

        Vectorised per committed block through
        :func:`apply_batch_to_mapping`; streams the height window one
        block at a time instead of materialising the batch list.
        """
        return sum(
            apply_batch_to_mapping(batch, mapping)
            for batch in self.iter_committed_batches(since_height)
        )
