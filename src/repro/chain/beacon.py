"""The beacon chain: validates and stores account-migration requests.

Mosaic reuses the Ethereum-2.0-style beacon chain as the coordination
layer (Section II-A / III-B). Clients submit migration requests (MRs) to
the beacon chain; miners of the beacon chain run ordinary consensus to
commit them. Per epoch, at most ``capacity`` MRs can commit — the paper
bounds this by the shard capacity ``lambda`` — and when over-subscribed,
requests with the largest potential improvement win (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.block import GENESIS_HASH, Block
from repro.chain.mapping import ShardMapping
from repro.chain.migration import MigrationRequest
from repro.errors import BlockLinkError, MigrationError, ValidationError


@dataclass
class CommitReport:
    """Outcome of one epoch's migration-request commitment round."""

    epoch: int
    proposed: int
    committed: List[MigrationRequest] = field(default_factory=list)
    rejected: List[MigrationRequest] = field(default_factory=list)

    @property
    def committed_count(self) -> int:
        return len(self.committed)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)


def prioritize_requests(
    requests: Sequence[MigrationRequest], capacity: Optional[int]
) -> Tuple[List[MigrationRequest], List[MigrationRequest]]:
    """Split ``requests`` into (committed, rejected) under ``capacity``.

    Duplicate requests for one account keep only the highest-gain request
    (a client controls its own account; conflicting requests are a client
    bug, but the chain must still be deterministic about them). The
    survivors are ordered by descending gain, ties broken by account id
    for determinism, and the top ``capacity`` commit.
    """
    best_per_account: Dict[int, MigrationRequest] = {}
    duplicates: List[MigrationRequest] = []
    for request in requests:
        current = best_per_account.get(request.account)
        if current is None or request.gain > current.gain:
            if current is not None:
                duplicates.append(current)
            best_per_account[request.account] = request
        else:
            duplicates.append(request)
    ordered = sorted(
        best_per_account.values(), key=lambda r: (-r.gain, r.account)
    )
    if capacity is None or capacity >= len(ordered):
        return ordered, duplicates
    if capacity < 0:
        raise ValidationError(f"capacity must be >= 0, got {capacity}")
    return ordered[:capacity], ordered[capacity:] + duplicates


class BeaconChain:
    """The beacon chain ``BC`` storing committed migration requests."""

    CHAIN_ID = "beacon"

    def __init__(self) -> None:
        self._blocks: List[Block] = []
        self._pending: List[MigrationRequest] = []
        self._committed_log: List[MigrationRequest] = []

    # -- chain view ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def blocks(self) -> Sequence[Block]:
        """Read-only view of the beacon blocks."""
        return tuple(self._blocks)

    @property
    def tip_hash(self) -> str:
        return self._blocks[-1].block_hash if self._blocks else GENESIS_HASH

    @property
    def committed_requests(self) -> Sequence[MigrationRequest]:
        """Every MR ever committed, in commit order (the set ``MR``)."""
        return tuple(self._committed_log)

    @property
    def pending_requests(self) -> Sequence[MigrationRequest]:
        """Requests submitted but not yet committed."""
        return tuple(self._pending)

    def verify(self) -> None:
        """Re-verify the beacon chain's hash links."""
        parent = GENESIS_HASH
        for height, block in enumerate(self._blocks):
            if block.header.height != height:
                raise BlockLinkError(f"height mismatch at {height}")
            if block.header.parent_hash != parent:
                raise BlockLinkError(f"broken parent link at height {height}")
            parent = block.block_hash

    # -- request lifecycle -----------------------------------------------------

    def submit(self, request: MigrationRequest) -> None:
        """Accept a client's migration request into the beacon mempool."""
        if not isinstance(request, MigrationRequest):
            raise MigrationError(
                f"expected MigrationRequest, got {type(request).__name__}"
            )
        self._pending.append(request)

    def submit_many(self, requests: Sequence[MigrationRequest]) -> None:
        """Accept several requests at once."""
        for request in requests:
            self.submit(request)

    def commit_epoch(
        self,
        epoch: int,
        capacity: Optional[int] = None,
        mapping: Optional[ShardMapping] = None,
    ) -> CommitReport:
        """Run one commitment round: validate, prioritise, and block-commit.

        When ``mapping`` is provided, requests whose ``from_shard`` no
        longer matches the account's current shard are rejected (stale
        requests, e.g. the client raced a previous migration). The
        committed requests are packed into one beacon block.
        """
        proposed = list(self._pending)
        self._pending.clear()

        valid: List[MigrationRequest] = []
        stale: List[MigrationRequest] = []
        for request in proposed:
            if mapping is not None:
                if request.account >= mapping.n_accounts:
                    stale.append(request)
                    continue
                if mapping.shard_of(request.account) != request.from_shard:
                    stale.append(request)
                    continue
                if request.to_shard >= mapping.k:
                    stale.append(request)
                    continue
            valid.append(request)

        committed, rejected = prioritize_requests(valid, capacity)
        block = Block.build(
            chain_id=self.CHAIN_ID,
            height=len(self._blocks),
            parent_hash=self.tip_hash,
            payload=committed,
            epoch=epoch,
        )
        self._blocks.append(block)
        self._committed_log.extend(committed)
        return CommitReport(
            epoch=epoch,
            proposed=len(proposed),
            committed=committed,
            rejected=rejected + stale,
        )

    # -- miner-side synchronisation ---------------------------------------------

    def requests_since(self, block_height: int) -> List[MigrationRequest]:
        """MRs committed in blocks at height >= ``block_height``.

        Miners call this during epoch reconfiguration to update their
        locally stored mapping ``phi`` from the latest beacon blocks.
        """
        requests: List[MigrationRequest] = []
        for block in self._blocks[max(0, block_height):]:
            for item in block.payload:
                if isinstance(item, MigrationRequest):
                    requests.append(item)
        return requests

    def apply_to_mapping(
        self, mapping: ShardMapping, since_height: int = 0
    ) -> int:
        """Apply committed MRs to ``mapping`` in place; return count applied."""
        applied = 0
        for request in self.requests_since(since_height):
            if request.account < mapping.n_accounts:
                mapping.assign(request.account, request.to_shard)
                applied += 1
        return applied
