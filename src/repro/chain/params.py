"""Protocol parameters (Section III-A-2 of the paper).

``ProtocolParams`` bundles the knobs every component of the system shares:

* ``k``      — number of shards.
* ``eta``    — cross-shard difficulty: an intra-shard transaction costs 1
  unit of shard capacity, a cross-shard transaction costs ``eta`` units in
  *each* involved shard (``eta > 1`` reflects the multi-round cross-shard
  consensus).
* ``tau``    — epoch length in beacon-chain blocks; epoch reconfiguration
  (miner reshuffling + account migration) runs every ``tau`` blocks.
* ``beta``   — the client confidence ratio of known expected future
  transactions used by Pilot's fusion rule (Eq. 2).
* ``capacity_per_epoch`` — ``lambda``: the workload units one shard can
  process per epoch. ``None`` means "derive from the evaluated trace" as
  the paper does (``lambda = |T_epoch| / k``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.util.validation import check_in_range, check_probability, check_positive

DEFAULT_SHARDS = 16
DEFAULT_ETA = 2.0
DEFAULT_TAU = 300


@dataclass(frozen=True)
class ProtocolParams:
    """Immutable bundle of sharding-protocol parameters.

    The defaults mirror the paper's default configuration: ``k = 16``,
    ``eta = 2`` and ``tau = 300`` blocks per epoch (about one hour of
    Ethereum blocks).
    """

    k: int = DEFAULT_SHARDS
    eta: float = DEFAULT_ETA
    tau: int = DEFAULT_TAU
    beta: float = 0.0
    capacity_per_epoch: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or isinstance(self.k, bool):
            raise ConfigurationError(f"k must be an int, got {self.k!r}")
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")
        check_in_range("eta", self.eta, 1.0, float("inf"))
        if not isinstance(self.tau, int) or isinstance(self.tau, bool):
            raise ConfigurationError(f"tau must be an int, got {self.tau!r}")
        if self.tau < 1:
            raise ConfigurationError(f"tau must be >= 1, got {self.tau}")
        check_probability("beta", self.beta)
        if self.capacity_per_epoch is not None:
            check_positive("capacity_per_epoch", self.capacity_per_epoch)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")

    def with_updates(self, **changes: object) -> "ProtocolParams":
        """Return a copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def derive_capacity(self, epoch_transaction_count: int) -> float:
        """Return ``lambda`` for an epoch with the given transaction count.

        When ``capacity_per_epoch`` is explicitly configured it wins;
        otherwise the paper's rule ``lambda = |T_epoch| / k`` applies. The
        result is floored at 1 so degenerate empty epochs remain well
        defined.
        """
        if self.capacity_per_epoch is not None:
            return self.capacity_per_epoch
        if epoch_transaction_count < 0:
            raise ConfigurationError(
                f"epoch_transaction_count must be >= 0, got {epoch_transaction_count}"
            )
        return max(1.0, epoch_transaction_count / self.k)

    @property
    def shard_ids(self) -> range:
        """Valid shard identifiers: ``0 .. k-1`` (0-based internally)."""
        return range(self.k)
