"""Migration requests: the on-chain record of a client's shard move.

A migration request (``MR`` in the paper) is a beacon-chain transaction
stating "move account ``nu`` from shard ``a`` to shard ``b``". Requests
carry the potential gain the client computed so that, when more requests
are proposed than the beacon chain can commit in one epoch, the ones with
the largest improvement are prioritised (Section V-A, Parameters).

:class:`MigrationRequest` is the friendly per-object view;
:class:`MigrationRequestBatch` is the columnar view the vectorised
migration-accounting kernel operates on (struct-of-arrays, mirroring
``TransactionBatch``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import MigrationError


@dataclass(frozen=True)
class MigrationRequest:
    """An account-migration request destined for the beacon chain.

    Attributes:
        account: integer account id of the migrating account.
        from_shard: shard the account currently resides in.
        to_shard: shard the client wants to move to.
        gain: client-computed improvement in Potential (Eq. 4); used for
            prioritisation when the beacon chain is congested.
        epoch: epoch index in which the request was proposed.
        fee: fee paid to the beacon chain (anti-DoS economics, Section VII-B).
    """

    account: int
    from_shard: int
    to_shard: int
    gain: float = 0.0
    epoch: int = 0
    fee: float = 0.0

    def __post_init__(self) -> None:
        if self.account < 0:
            raise MigrationError(f"account must be >= 0, got {self.account}")
        if self.from_shard < 0 or self.to_shard < 0:
            raise MigrationError("shard ids must be >= 0")
        if self.from_shard == self.to_shard:
            raise MigrationError(
                f"migration must change shards (account {self.account} "
                f"stays on shard {self.from_shard})"
            )
        if self.epoch < 0:
            raise MigrationError(f"epoch must be >= 0, got {self.epoch}")
        if self.fee < 0:
            raise MigrationError(f"fee must be >= 0, got {self.fee}")


class MigrationRequestBatch:
    """Columnar batch of migration requests (struct-of-arrays).

    One epoch of client proposals as parallel arrays; the vectorised
    commitment policy (``core/migration.py``) filters and prioritises
    directly on the arrays, materialising :class:`MigrationRequest`
    objects only for the committed/rejected views callers inspect.
    """

    __slots__ = ("accounts", "from_shards", "to_shards", "gains", "epoch")

    def __init__(
        self,
        accounts: np.ndarray,
        from_shards: np.ndarray,
        to_shards: np.ndarray,
        gains: Optional[np.ndarray] = None,
        epoch: int = 0,
    ) -> None:
        accounts = np.asarray(accounts, dtype=np.int64)
        from_shards = np.asarray(from_shards, dtype=np.int64)
        to_shards = np.asarray(to_shards, dtype=np.int64)
        if gains is None:
            gains = np.zeros(len(accounts), dtype=np.float64)
        else:
            gains = np.asarray(gains, dtype=np.float64)
        for name, array in (
            ("from_shards", from_shards),
            ("to_shards", to_shards),
            ("gains", gains),
        ):
            if array.shape != accounts.shape:
                raise MigrationError(
                    f"{name} must match accounts in shape, got {array.shape}"
                )
        if epoch < 0:
            raise MigrationError(f"epoch must be >= 0, got {epoch}")
        self.accounts = accounts
        self.from_shards = from_shards
        self.to_shards = to_shards
        self.gains = gains
        self.epoch = int(epoch)
        self.validate()

    def validate(self) -> None:
        """Reject malformed rows with the scalar dataclass's messages.

        The batch and object views must be behaviourally identical at
        the edges: a bad row raises the exact typed
        :class:`MigrationError` that constructing the equivalent
        :class:`MigrationRequest` would, reported for the first
        offending row in submission order.
        """
        if len(self.accounts) == 0:
            return
        bad = (
            (self.accounts < 0)
            | (self.from_shards < 0)
            | (self.to_shards < 0)
            | (self.from_shards == self.to_shards)
        )
        if not bad.any():
            return
        row = int(np.flatnonzero(bad)[0])
        account = int(self.accounts[row])
        from_shard = int(self.from_shards[row])
        to_shard = int(self.to_shards[row])
        # Same check order as MigrationRequest.__post_init__.
        if account < 0:
            raise MigrationError(f"account must be >= 0, got {account}")
        if from_shard < 0 or to_shard < 0:
            raise MigrationError("shard ids must be >= 0")
        raise MigrationError(
            f"migration must change shards (account {account} "
            f"stays on shard {from_shard})"
        )

    def __len__(self) -> int:
        return len(self.accounts)

    @classmethod
    def empty(cls, epoch: int = 0) -> "MigrationRequestBatch":
        zero = np.zeros(0, dtype=np.int64)
        return cls(zero, zero.copy(), zero.copy(), epoch=epoch)

    @classmethod
    def from_requests(
        cls, requests: Sequence[MigrationRequest]
    ) -> "MigrationRequestBatch":
        """Build a batch from request objects (epoch taken from the first)."""
        if not requests:
            return cls.empty()
        return cls(
            np.array([r.account for r in requests], dtype=np.int64),
            np.array([r.from_shard for r in requests], dtype=np.int64),
            np.array([r.to_shard for r in requests], dtype=np.int64),
            np.array([r.gain for r in requests], dtype=np.float64),
            epoch=requests[0].epoch,
        )

    @classmethod
    def _trusted(
        cls,
        accounts: np.ndarray,
        from_shards: np.ndarray,
        to_shards: np.ndarray,
        gains: np.ndarray,
        epoch: int,
    ) -> "MigrationRequestBatch":
        """Assemble from rows of an already-validated batch.

        Skips the O(n) row sweep — slices and concatenations of valid
        rows stay valid, and the commit hot path builds several views
        of the same million-row round.
        """
        batch = cls.__new__(cls)
        batch.accounts = accounts
        batch.from_shards = from_shards
        batch.to_shards = to_shards
        batch.gains = gains
        batch.epoch = int(epoch)
        return batch

    def take_batch(self, indices: np.ndarray) -> "MigrationRequestBatch":
        """The rows at ``indices`` as a new batch, in index order."""
        idx = np.asarray(indices, dtype=np.int64)
        return MigrationRequestBatch._trusted(
            self.accounts[idx],
            self.from_shards[idx],
            self.to_shards[idx],
            self.gains[idx],
            epoch=self.epoch,
        )

    @classmethod
    def concat(
        cls, batches: Sequence["MigrationRequestBatch"], epoch: int = 0
    ) -> "MigrationRequestBatch":
        """Concatenate ``batches`` row-wise (submission order preserved)."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty(epoch=epoch)
        if epoch < 0:
            raise MigrationError(f"epoch must be >= 0, got {epoch}")
        return cls._trusted(
            np.concatenate([b.accounts for b in batches]),
            np.concatenate([b.from_shards for b in batches]),
            np.concatenate([b.to_shards for b in batches]),
            np.concatenate([b.gains for b in batches]),
            epoch=epoch,
        )

    def content_digest(self) -> str:
        """Deterministic digest over the batch's rows.

        Beacon blocks commit to their payload via ``repr``; the digest
        makes a committed batch's block hash bind to every row without
        materialising per-request objects.
        """
        hasher = hashlib.sha256()
        hasher.update(str(self.epoch).encode("utf-8"))
        for column in (
            self.accounts,
            self.from_shards,
            self.to_shards,
            self.gains,
        ):
            hasher.update(np.ascontiguousarray(column).tobytes())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def __repr__(self) -> str:
        return (
            f"MigrationRequestBatch(n={len(self)}, epoch={self.epoch}, "
            f"digest={self.content_digest()})"
        )

    def take(self, indices: np.ndarray) -> List[MigrationRequest]:
        """Materialise the requests at ``indices`` as objects, in order."""
        return [
            MigrationRequest(
                account=int(self.accounts[i]),
                from_shard=int(self.from_shards[i]),
                to_shard=int(self.to_shards[i]),
                gain=float(self.gains[i]),
                epoch=self.epoch,
            )
            for i in np.asarray(indices, dtype=np.int64)
        ]
