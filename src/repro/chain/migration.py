"""Migration requests: the on-chain record of a client's shard move.

A migration request (``MR`` in the paper) is a beacon-chain transaction
stating "move account ``nu`` from shard ``a`` to shard ``b``". Requests
carry the potential gain the client computed so that, when more requests
are proposed than the beacon chain can commit in one epoch, the ones with
the largest improvement are prioritised (Section V-A, Parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MigrationError


@dataclass(frozen=True)
class MigrationRequest:
    """An account-migration request destined for the beacon chain.

    Attributes:
        account: integer account id of the migrating account.
        from_shard: shard the account currently resides in.
        to_shard: shard the client wants to move to.
        gain: client-computed improvement in Potential (Eq. 4); used for
            prioritisation when the beacon chain is congested.
        epoch: epoch index in which the request was proposed.
        fee: fee paid to the beacon chain (anti-DoS economics, Section VII-B).
    """

    account: int
    from_shard: int
    to_shard: int
    gain: float = 0.0
    epoch: int = 0
    fee: float = 0.0

    def __post_init__(self) -> None:
        if self.account < 0:
            raise MigrationError(f"account must be >= 0, got {self.account}")
        if self.from_shard < 0 or self.to_shard < 0:
            raise MigrationError("shard ids must be >= 0")
        if self.from_shard == self.to_shard:
            raise MigrationError(
                f"migration must change shards (account {self.account} "
                f"stays on shard {self.from_shard})"
            )
        if self.epoch < 0:
            raise MigrationError(f"epoch must be >= 0, got {self.epoch}")
        if self.fee < 0:
            raise MigrationError(f"fee must be >= 0, got {self.fee}")
