"""Blocks and hash chaining for shard chains and the beacon chain."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import ValidationError

#: Parent hash of every genesis block.
GENESIS_HASH = "0x" + "00" * 32


def compute_block_hash(
    chain_id: str,
    height: int,
    parent_hash: str,
    payload_digest: str,
    epoch: int = 0,
) -> str:
    """Deterministic sha256 block hash over all header fields."""
    material = f"{chain_id}|{height}|{parent_hash}|{payload_digest}|{epoch}"
    return "0x" + hashlib.sha256(material.encode("utf-8")).hexdigest()


def payload_digest(items: Sequence[object]) -> str:
    """Digest a block body: the repr of each item, in order."""
    hasher = hashlib.sha256()
    for item in items:
        hasher.update(repr(item).encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header.

    ``chain_id`` distinguishes shard chains (``"shard-3"``) from the
    beacon chain (``"beacon"``) so identical payloads on different chains
    hash differently.
    """

    chain_id: str
    height: int
    parent_hash: str
    payload_digest: str
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValidationError(f"height must be >= 0, got {self.height}")
        if self.epoch < 0:
            raise ValidationError(f"epoch must be >= 0, got {self.epoch}")

    @property
    def block_hash(self) -> str:
        """Hash binding this header to its chain position and payload."""
        return compute_block_hash(
            self.chain_id,
            self.height,
            self.parent_hash,
            self.payload_digest,
            self.epoch,
        )


@dataclass(frozen=True)
class Block:
    """A block: header plus an opaque tuple of payload items.

    Shard blocks carry :class:`repro.chain.transaction.Transaction` ids or
    counts; beacon blocks carry
    :class:`repro.core.migration.MigrationRequest` objects. The chain
    classes enforce payload types; ``Block`` itself stays generic.
    """

    header: BlockHeader
    payload: Tuple[object, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        expected = payload_digest(self.payload)
        if expected != self.header.payload_digest:
            raise ValidationError(
                "payload does not match header digest "
                f"(expected {expected[:12]}…, header has {self.header.payload_digest[:12]}…)"
            )

    @property
    def block_hash(self) -> str:
        """The hash of this block's header."""
        return self.header.block_hash

    @property
    def height(self) -> int:
        """Height of the block on its chain (genesis = 0)."""
        return self.header.height

    @classmethod
    def build(
        cls,
        chain_id: str,
        height: int,
        parent_hash: str,
        payload: Sequence[object],
        epoch: int = 0,
    ) -> "Block":
        """Assemble a block, computing the payload digest."""
        items = tuple(payload)
        header = BlockHeader(
            chain_id=chain_id,
            height=height,
            parent_hash=parent_hash,
            payload_digest=payload_digest(items),
            epoch=epoch,
        )
        return cls(header=header, payload=items)
