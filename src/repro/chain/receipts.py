"""Structure-of-arrays ledger of in-flight cross-shard receipts.

The relay/receipt protocol (see :mod:`repro.chain.crossshard`) holds
every withdraw-phase commitment until its deposit becomes due on the
target shard. :class:`ReceiptLedger` stores those commitments as
parallel numpy columns — sender, receiver, amount, source/target shard,
issued and due block — instead of a ``List[Receipt]``, so issuing and
settling receipts are O(1)-amortised columnar appends and sorted-prefix
pops rather than per-object work. :class:`Receipt` objects remain
available as a lazy view for tests and error messages.

Settlement order is part of the observable contract: receipts leave the
ledger in ``(due_block, tx_id)`` order, pinned by a golden fixture, so
batched rewrites of the executor cannot silently reorder credits.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple, Union

import numpy as np

from repro.errors import ValidationError

#: Column names, in canonical order.
COLUMNS = (
    "tx_ids",
    "senders",
    "receivers",
    "amounts",
    "source_shards",
    "target_shards",
    "issued_blocks",
    "due_blocks",
)

_INT_COLUMNS = tuple(c for c in COLUMNS if c != "amounts")


class ReceiptBatch(NamedTuple):
    """A columnar slice of receipts (parallel arrays, equal length)."""

    tx_ids: np.ndarray
    senders: np.ndarray
    receivers: np.ndarray
    amounts: np.ndarray
    source_shards: np.ndarray
    target_shards: np.ndarray
    issued_blocks: np.ndarray
    due_blocks: np.ndarray

    def __len__(self) -> int:
        return len(self.tx_ids)

    @classmethod
    def empty(cls) -> "ReceiptBatch":
        return cls(
            *(np.zeros(0, dtype=np.int64) for _ in _INT_COLUMNS[:3]),
            np.zeros(0, dtype=np.float64),
            *(np.zeros(0, dtype=np.int64) for _ in range(4)),
        )


class ReceiptLedger:
    """Pending receipts as growable parallel arrays with a due-block index.

    Appends are amortised O(1) (capacity doubling); the pending region
    is kept sorted by ``(due_block, tx_id)`` — appends in block order
    preserve sortedness for free, out-of-order issues mark the region
    dirty and it is re-sorted lazily before the next pop. ``pop_due``
    then removes a due prefix located with one ``searchsorted``.

    The in-flight value total is maintained incrementally at issue and
    settle time (and snapped to exactly zero whenever the ledger
    empties), so :meth:`total_amount` is O(1) instead of a recomputed
    ``sum`` over pending amounts.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self._columns = {
            name: np.zeros(
                capacity, dtype=np.float64 if name == "amounts" else np.int64
            )
            for name in COLUMNS
        }
        self._start = 0
        self._stop = 0
        self._sorted = True
        self._total = 0.0

    def __len__(self) -> int:
        return self._stop - self._start

    @property
    def total_amount(self) -> float:
        """Value locked in pending receipts (running total)."""
        return self._total

    # -- mutation ---------------------------------------------------------------

    def append_batch(
        self,
        tx_ids: np.ndarray,
        senders: np.ndarray,
        receivers: np.ndarray,
        amounts: np.ndarray,
        source_shards: np.ndarray,
        target_shards: np.ndarray,
        issued_block: Union[int, np.ndarray],
        due_block: int,
    ) -> None:
        """Issue a batch of receipts sharing one due block.

        ``issued_block`` is a scalar on the direct path (receipts issued
        and appended in the same block) but may be a per-row array when
        the network transport appends a delivered group — messages that
        left different blocks and landed together, whose shared due
        block is the *delivery* block.
        """
        count = len(tx_ids)
        if count == 0:
            return
        if len(amounts) and float(amounts.min()) < 0:
            raise ValidationError("receipt amounts must be >= 0")
        self._reserve(count)
        stop = self._stop
        new = slice(stop, stop + count)
        cols = self._columns
        cols["tx_ids"][new] = tx_ids
        cols["senders"][new] = senders
        cols["receivers"][new] = receivers
        cols["amounts"][new] = amounts
        cols["source_shards"][new] = source_shards
        cols["target_shards"][new] = target_shards
        cols["issued_blocks"][new] = issued_block
        cols["due_blocks"][new] = due_block
        if self._sorted:
            # The pending region stays sorted only if this append keeps
            # the (due_block, tx_id) order — within the batch (one
            # shared due block, so tx ids must ascend) and against the
            # current tail.
            if count > 1 and not bool((np.diff(tx_ids) > 0).all()):
                self._sorted = False
            elif stop > self._start:
                last_due = int(cols["due_blocks"][stop - 1])
                last_tx = int(cols["tx_ids"][stop - 1])
                if due_block < last_due or (
                    due_block == last_due and int(tx_ids[0]) < last_tx
                ):
                    self._sorted = False
        self._stop = stop + count
        self._total += float(amounts.sum())

    def pop_due(self, block: int) -> ReceiptBatch:
        """Remove and return every receipt with ``due_block <= block``.

        The result is in ``(due_block, tx_id)`` order — the pinned
        settlement order.
        """
        if len(self) == 0:
            return ReceiptBatch.empty()
        self._ensure_sorted()
        dues = self._columns["due_blocks"][self._start : self._stop]
        cut = self._start + int(np.searchsorted(dues, block, side="right"))
        if cut == self._start:
            return ReceiptBatch.empty()
        due = ReceiptBatch(
            *(self._columns[name][self._start : cut].copy() for name in COLUMNS)
        )
        self._start = cut
        if self._start == self._stop:
            # Ledger drained: reset the window and snap the running
            # total so float error cannot accumulate across epochs.
            self._start = self._stop = 0
            self._total = 0.0
            self._sorted = True
        else:
            self._total -= float(due.amounts.sum())
        return due

    # -- views ------------------------------------------------------------------

    def view(self) -> ReceiptBatch:
        """Pending receipts in ``(due_block, tx_id)`` order (copies)."""
        self._ensure_sorted()
        return ReceiptBatch(
            *(
                self._columns[name][self._start : self._stop].copy()
                for name in COLUMNS
            )
        )

    # -- internals ---------------------------------------------------------------

    def _reserve(self, count: int) -> None:
        capacity = len(self._columns["tx_ids"])
        size = len(self)
        if self._stop + count <= capacity:
            return
        if size + count <= capacity and self._start > 0:
            # Compact the live window to the front before growing.
            for name, column in self._columns.items():
                column[:size] = column[self._start : self._stop]
            self._start, self._stop = 0, size
            if self._stop + count <= capacity:
                return
        new_capacity = max(capacity * 2, size + count)
        for name, column in self._columns.items():
            grown = np.zeros(new_capacity, dtype=column.dtype)
            grown[:size] = column[self._start : self._stop]
            self._columns[name] = grown
        self._start, self._stop = 0, size

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        live = slice(self._start, self._stop)
        order = np.lexsort(
            (self._columns["tx_ids"][live], self._columns["due_blocks"][live])
        )
        for name, column in self._columns.items():
            column[live] = column[live][order]
        self._sorted = True


def receipts_to_tuple(batch: ReceiptBatch) -> Tuple[tuple, ...]:
    """Row-major tuple view of a batch (test/debug helper)."""
    return tuple(
        zip(
            batch.tx_ids.tolist(),
            batch.senders.tolist(),
            batch.receivers.tolist(),
            batch.amounts.tolist(),
            batch.source_shards.tolist(),
            batch.target_shards.tolist(),
            batch.issued_blocks.tolist(),
            batch.due_blocks.tolist(),
        )
    )
