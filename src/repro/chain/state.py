"""Account state: balances, nonces, and per-shard state stores.

The allocation layer treats shards as transaction counters; this module
gives them actual state so the substrate can *execute* transfers. Each
shard keeps a state store over the accounts ``phi^{-1}(shard)``; epoch
reconfiguration moves account state between stores (the migration
traffic the paper accounts for), and the cross-shard executor
(:mod:`repro.chain.crossshard`) debits and credits across stores.

Two interchangeable backends implement the store contract:

* :class:`ShardStateStore` — the scalar-dict backend: balances and
  nonces in two parallel dicts. Robust for sparse/arbitrary account
  ids; the default.
* :class:`DenseShardStateStore` — the dense-array backend: balances and
  nonces in preallocated ``np.ndarray`` columns indexed directly by
  account id, plus a residency bitmap. Built for compact id universes
  (``range(n_accounts)``) where it scales past a million accounts with
  O(1) columnar gather/scatter; ids beyond the preallocated capacity
  spill into a fallback dict so sparse stragglers stay correct.

:class:`StateRegistry` selects the backend (``backend="dict"`` /
``"dense"``) and guarantees both produce identical observable state —
same state roots, balances and nonces — which the backend-equivalence
property suite pins down.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    ChainError,
    ConfigurationError,
    StateMigrationError,
    ValidationError,
)

#: Serialised size of one account state record (address, balance, nonce,
#: storage-root digest) — matches ACCOUNT_STATE_BYTES in repro.chain.epoch.
STATE_RECORD_BYTES = 128

#: State-store backend names accepted by :class:`StateRegistry`.
BACKEND_DICT = "dict"
BACKEND_DENSE = "dense"
STATE_BACKENDS = (BACKEND_DICT, BACKEND_DENSE)


@dataclass(frozen=True)
class AccountState:
    """Balance-and-nonce state of one account."""

    balance: float = 0.0
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError(f"balance must be >= 0, got {self.balance}")
        if self.nonce < 0:
            raise ValidationError(f"nonce must be >= 0, got {self.nonce}")

    def credited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` added to the balance."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        return replace(self, balance=self.balance + amount)

    def debited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` removed and the nonce bumped.

        Raises :class:`ChainError` when the balance cannot cover it.
        """
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if amount > self.balance:
            raise ChainError(
                f"insufficient balance: {self.balance} < {amount}"
            )
        return replace(self, balance=self.balance - amount, nonce=self.nonce + 1)


def _state_root_digest(items: List[Tuple[int, float, int]]) -> str:
    """Digest over ``(account, balance, nonce)`` rows sorted by account.

    Shared by both backends so a dict store and a dense store holding
    the same state hash to the same root.
    """
    hasher = hashlib.sha256()
    for account, balance, nonce in sorted(items):
        hasher.update(f"{account}:{balance!r}:{nonce}".encode("utf-8"))
        hasher.update(b"\x00")
    return "0x" + hasher.hexdigest()


class ShardStateStore:
    """The state of all accounts resident on one shard (dict backend).

    Internally object-free: balances and nonces live in two parallel
    scalar dicts so the batched executor's gather/scatter hot path never
    constructs :class:`AccountState` objects. ``get`` materialises one
    lazily for the object-friendly API.
    """

    def __init__(self, shard_id: int) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        self.shard_id = shard_id
        self._balances: Dict[int, float] = {}
        self._nonces: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._balances)

    def __contains__(self, account: int) -> bool:
        return account in self._balances

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        return iter(self._balances)

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        balance = self._balances.get(account)
        if balance is None:
            return AccountState()
        return AccountState(balance=balance, nonce=self._nonces[account])

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        self._balances[account] = state.balance
        self._nonces[account] = state.nonce

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        balance = self._balances.get(account, 0.0) + amount
        self._balances[account] = balance
        nonce = self._nonces.setdefault(account, 0)
        return AccountState(balance=balance, nonce=nonce)

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        balance = self._balances.get(account, 0.0)
        if amount > balance:
            raise ChainError(f"insufficient balance: {balance} < {amount}")
        balance -= amount
        nonce = self._nonces.get(account, 0) + 1
        self._balances[account] = balance
        self._nonces[account] = nonce
        return AccountState(balance=balance, nonce=nonce)

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        try:
            balance = self._balances.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None
        return AccountState(balance=balance, nonce=self._nonces.pop(account))

    # -- columnar bulk access (batched executor hot path) ----------------------

    def balances_of(self, accounts: np.ndarray) -> np.ndarray:
        """Balances of ``accounts`` as an array (zero when never seen)."""
        get = self._balances.get
        return np.fromiter(
            (get(a, 0.0) for a in accounts.tolist()),
            dtype=np.float64,
            count=len(accounts),
        )

    def write_back(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonce_bumps: np.ndarray,
    ) -> None:
        """Scatter updated balances (and nonce increments) back.

        Accounts are created on first touch, exactly like the scalar
        credit/debit path.
        """
        bal = self._balances
        non = self._nonces
        get_nonce = non.get
        for account, balance, bump in zip(
            accounts.tolist(), balances.tolist(), nonce_bumps.tolist()
        ):
            bal[account] = balance
            non[account] = get_nonce(account, 0) + bump

    def credit_many(self, accounts: np.ndarray, amounts: np.ndarray) -> None:
        """Apply a stream of credits in order (settlement scatter)."""
        bal = self._balances
        non = self._nonces
        for account, amount in zip(accounts.tolist(), amounts.tolist()):
            bal[account] = bal.get(account, 0.0) + amount
            non.setdefault(account, 0)

    def total_balance(self) -> float:
        """Exactly-rounded sum of resident balances (conservation checks)."""
        return math.fsum(self._balances.values())

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states."""
        return _state_root_digest(
            [
                (account, balance, self._nonces[account])
                for account, balance in self._balances.items()
            ]
        )

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self._balances) * STATE_RECORD_BYTES


class DenseShardStateStore:
    """Dense-array backend: state columns indexed directly by account id.

    Balances and nonces live in preallocated float64/int64 arrays of
    length ``capacity`` (the compact id universe) with a residency
    bitmap for membership; the batched executor's gather/scatter
    entry points become single fancy-indexing operations instead of
    per-account dict traffic, which is what lets the executor
    microbench scale past 1M accounts. Account ids at or above
    ``capacity`` (sparse stragglers, grown universes) spill into a
    fallback dict pair with the scalar-dict semantics.

    Observable behaviour — balances, nonces, membership, state roots,
    error cases — is identical to :class:`ShardStateStore`; the
    backend-equivalence property suite asserts it.
    """

    def __init__(self, shard_id: int, capacity: int) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        self.shard_id = shard_id
        self.capacity = int(capacity)
        self._bal = np.zeros(capacity, dtype=np.float64)
        self._non = np.zeros(capacity, dtype=np.int64)
        self._resident = np.zeros(capacity, dtype=bool)
        # Fallback for account ids >= capacity (sparse/grown universes).
        self._extra_bal: Dict[int, float] = {}
        self._extra_non: Dict[int, int] = {}

    def __len__(self) -> int:
        return int(self._resident.sum()) + len(self._extra_bal)

    def __contains__(self, account: int) -> bool:
        if 0 <= account < self.capacity:
            return bool(self._resident[account])
        return account in self._extra_bal

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        for account in np.flatnonzero(self._resident).tolist():
            yield account
        yield from self._extra_bal

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        if 0 <= account < self.capacity:
            if not self._resident[account]:
                return AccountState()
            return AccountState(
                balance=float(self._bal[account]), nonce=int(self._non[account])
            )
        balance = self._extra_bal.get(account)
        if balance is None:
            return AccountState()
        return AccountState(balance=balance, nonce=self._extra_non[account])

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        if account < self.capacity:
            self._bal[account] = state.balance
            self._non[account] = state.nonce
            self._resident[account] = True
        else:
            self._extra_bal[account] = state.balance
            self._extra_non[account] = state.nonce

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        if 0 <= account < self.capacity:
            balance = float(self._bal[account]) + amount
            self._bal[account] = balance
            self._resident[account] = True
            return AccountState(balance=balance, nonce=int(self._non[account]))
        balance = self._extra_bal.get(account, 0.0) + amount
        self._extra_bal[account] = balance
        nonce = self._extra_non.setdefault(account, 0)
        return AccountState(balance=balance, nonce=nonce)

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if 0 <= account < self.capacity:
            balance = float(self._bal[account])
            if amount > balance:
                raise ChainError(f"insufficient balance: {balance} < {amount}")
            balance -= amount
            nonce = int(self._non[account]) + 1
            self._bal[account] = balance
            self._non[account] = nonce
            self._resident[account] = True
            return AccountState(balance=balance, nonce=nonce)
        balance = self._extra_bal.get(account, 0.0)
        if amount > balance:
            raise ChainError(f"insufficient balance: {balance} < {amount}")
        balance -= amount
        nonce = self._extra_non.get(account, 0) + 1
        self._extra_bal[account] = balance
        self._extra_non[account] = nonce
        return AccountState(balance=balance, nonce=nonce)

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        if 0 <= account < self.capacity:
            if not self._resident[account]:
                raise ChainError(
                    f"account {account} is not resident on shard {self.shard_id}"
                )
            state = AccountState(
                balance=float(self._bal[account]), nonce=int(self._non[account])
            )
            self._bal[account] = 0.0
            self._non[account] = 0
            self._resident[account] = False
            return state
        try:
            balance = self._extra_bal.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None
        return AccountState(balance=balance, nonce=self._extra_non.pop(account))

    # -- columnar bulk access (batched executor hot path) ----------------------

    def _all_in_capacity(self, accounts: np.ndarray) -> bool:
        return len(accounts) == 0 or (
            int(accounts.max()) < self.capacity and int(accounts.min()) >= 0
        )

    def balances_of(self, accounts: np.ndarray) -> np.ndarray:
        """Balances of ``accounts`` as an array (zero when never seen)."""
        if self._all_in_capacity(accounts):
            # Non-resident cells hold 0.0 by construction, matching the
            # dict backend's get(account, 0.0).
            return self._bal[accounts]
        get = self._extra_bal.get
        capacity = self.capacity
        bal = self._bal
        return np.fromiter(
            (
                bal[a] if 0 <= a < capacity else get(a, 0.0)
                for a in accounts.tolist()
            ),
            dtype=np.float64,
            count=len(accounts),
        )

    def write_back(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonce_bumps: np.ndarray,
    ) -> None:
        """Scatter updated balances (and nonce increments) back."""
        if self._all_in_capacity(accounts):
            self._bal[accounts] = balances
            np.add.at(self._non, accounts, nonce_bumps)
            self._resident[accounts] = True
            return
        for account, balance, bump in zip(
            accounts.tolist(), balances.tolist(), nonce_bumps.tolist()
        ):
            if 0 <= account < self.capacity:
                self._bal[account] = balance
                self._non[account] += bump
                self._resident[account] = True
            else:
                self._extra_bal[account] = balance
                self._extra_non[account] = self._extra_non.get(account, 0) + bump

    def credit_many(self, accounts: np.ndarray, amounts: np.ndarray) -> None:
        """Apply a stream of credits in order (settlement scatter)."""
        if self._all_in_capacity(accounts):
            # np.add.at applies duplicate indices sequentially, matching
            # the dict backend's in-order accumulation.
            np.add.at(self._bal, accounts, amounts)
            self._resident[accounts] = True
            return
        for account, amount in zip(accounts.tolist(), amounts.tolist()):
            if 0 <= account < self.capacity:
                self._bal[account] += amount
                self._resident[account] = True
            else:
                self._extra_bal[account] = (
                    self._extra_bal.get(account, 0.0) + amount
                )
                self._extra_non.setdefault(account, 0)

    def total_balance(self) -> float:
        """Sum of resident balances (float64 pairwise ``np.sum``)."""
        dense = float(np.sum(self._bal, dtype=np.float64))
        if not self._extra_bal:
            return dense
        return math.fsum([dense, *self._extra_bal.values()])

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states."""
        resident = np.flatnonzero(self._resident)
        items = [
            (int(a), float(self._bal[a]), int(self._non[a])) for a in resident
        ]
        items.extend(
            (account, balance, self._extra_non[account])
            for account, balance in self._extra_bal.items()
        )
        return _state_root_digest(items)

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self) * STATE_RECORD_BYTES


#: Either backend satisfies the store contract.
AnyShardStateStore = Union[ShardStateStore, DenseShardStateStore]


class StateRegistry:
    """All shards' state stores plus migration between them.

    ``backend`` selects the store implementation: ``"dict"`` (default,
    arbitrary ids) or ``"dense"`` (compact-id ``np.ndarray`` columns
    sized by ``n_accounts``, with a dict fallback for ids beyond that
    capacity). Both are observably identical.
    """

    def __init__(
        self,
        k: int,
        backend: str = BACKEND_DICT,
        n_accounts: int = 0,
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if backend not in STATE_BACKENDS:
            raise ConfigurationError(
                f"unknown state backend {backend!r}; "
                f"available: {', '.join(STATE_BACKENDS)}"
            )
        if n_accounts < 0:
            raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
        self.k = k
        self.backend = backend
        self.n_accounts = int(n_accounts)
        if backend == BACKEND_DENSE:
            self.stores: Tuple[AnyShardStateStore, ...] = tuple(
                DenseShardStateStore(shard, self.n_accounts)
                for shard in range(k)
            )
        else:
            self.stores = tuple(ShardStateStore(shard) for shard in range(k))

    def store_of(self, shard: int) -> AnyShardStateStore:
        if not 0 <= shard < self.k:
            raise ValidationError(f"shard {shard} out of range [0, {self.k})")
        return self.stores[shard]

    def locate(self, account: int) -> Optional[int]:
        """Shard currently holding ``account``'s state, or None."""
        for store in self.stores:
            if account in store:
                return store.shard_id
        return None

    def migrate(self, account: int, from_shard: int, to_shard: int) -> int:
        """Move an account's state between shards; returns bytes moved.

        Accounts that were never touched have an implicit zero state, so
        migrating an unknown account is a no-op costing nothing. A
        request whose ``from_shard`` does not hold the account while
        some *other* shard does raises :class:`StateMigrationError` —
        silently dropping it would strand the balance on the wrong
        shard.
        """
        source = self.store_of(from_shard)
        target = self.store_of(to_shard)
        if account not in source:
            actual = self.locate(account)
            if actual is not None:
                raise StateMigrationError(
                    f"account {account} is resident on shard {actual}, "
                    f"not on migration source shard {from_shard}"
                )
            return 0
        target.put(account, source.remove(account))
        return STATE_RECORD_BYTES

    def total_balance(self) -> float:
        """System-wide balance — invariant under execution + migration.

        Exactly-rounded accumulation (``math.fsum`` over per-store
        totals) so conservation checks stay tight at millions of
        accounts.
        """
        return math.fsum(store.total_balance() for store in self.stores)
