"""Account state: balances, nonces, and per-shard state stores.

The allocation layer treats shards as transaction counters; this module
gives them actual state so the substrate can *execute* transfers. Each
shard keeps a state store over the accounts ``phi^{-1}(shard)``; epoch
reconfiguration moves account state between stores (the migration
traffic the paper accounts for), and the cross-shard executor
(:mod:`repro.chain.crossshard`) debits and credits across stores.

Three interchangeable backends implement the store contract:

* :class:`ShardStateStore` — the scalar-dict backend: balances and
  nonces in two parallel dicts. Robust for sparse/arbitrary account
  ids; the default.
* :class:`ArenaShardStateStore` — the dense-array backend behind
  ``backend="dense"``: size-classed per-shard arena columns. A
  :class:`SlotDirectory` shared by all stores of a registry maps each
  global account id to its *home* shard and a local column slot, so a
  shard's columns are sized to its own population instead of the whole
  account universe (k-fold less memory than full-universe columns).
  Columns are carved into fixed-size arenas with per-arena free lists
  and occupancy counters, so compaction re-slots only sparse arenas
  instead of whole columns, and a pluggable :class:`ColumnSchema` lets
  accounts carry auxiliary payload words (multi-asset balances,
  contract storage) in wider size classes. Ids beyond the directory
  capacity — and the rare account whose state is resident on a shard
  other than its home — spill into a fallback dict so sparse
  stragglers stay correct.
* :class:`DenseShardStateStore` — the previous single-class first-fit
  free-list layout, kept behind ``backend="dense-ref"`` as the
  property-pinned reference allocator for the arena store.

:class:`StateRegistry` selects the backend (``backend="dict"`` /
``"dense"`` / ``"dense-ref"``) and guarantees all produce identical
observable state — same state roots, balances and nonces — which the
backend-equivalence property suites pin down. The registry also
maintains a :class:`ResidencyIndex` (account -> holding shards,
incremental per mutation) so ``locate`` is O(1) instead of an O(k)
scan over the stores; ``locate_scan`` keeps the scan as the
equivalence reference.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    ChainError,
    ConfigurationError,
    StateMigrationError,
    ValidationError,
)

#: Serialised size of one account state record (address, balance, nonce,
#: storage-root digest) — matches ACCOUNT_STATE_BYTES in repro.chain.epoch.
STATE_RECORD_BYTES = 128

#: State-store backend names accepted by :class:`StateRegistry`.
BACKEND_DICT = "dict"
BACKEND_DENSE = "dense"
BACKEND_DENSE_REF = "dense-ref"
STATE_BACKENDS = (BACKEND_DICT, BACKEND_DENSE, BACKEND_DENSE_REF)

#: Rows per arena extent in :class:`ArenaShardStateStore`. A power of
#: two so arena ids are a shift of the local slot.
ARENA_EXTENT_ROWS = 1024


@dataclass(frozen=True)
class SizeClass:
    """One payload size class: balance + nonce plus ``aux_words`` f64 words."""

    name: str
    aux_words: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("size class name must be non-empty")
        if self.aux_words < 0:
            raise ValidationError(
                f"aux_words must be >= 0, got {self.aux_words}"
            )

    @property
    def row_nbytes(self) -> int:
        """Physical column bytes per slot (balance, nonce, owner, aux)."""
        return 8 + 8 + 8 + 8 * self.aux_words


@dataclass(frozen=True)
class ColumnSchema:
    """Payload layout for the arena backend: ordered size classes.

    The first class is the *base* class (balance + nonce only, zero aux
    words) every account starts in; further classes carry progressively
    wider auxiliary payloads (multi-asset balances, contract storage
    words). :meth:`class_for` picks the smallest class covering a
    requested aux width; accounts promote (never demote) when
    ``put_aux`` outgrows their current class. Aux payloads are opt-in
    scenario state and deliberately excluded from state roots, so every
    backend hashes to the same root regardless of schema.
    """

    classes: Tuple[SizeClass, ...] = (SizeClass("base", 0),)

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValidationError("schema needs at least one size class")
        if self.classes[0].aux_words != 0:
            raise ValidationError(
                "the first (base) size class must have aux_words == 0"
            )
        widths = [cls.aux_words for cls in self.classes]
        if any(b <= a for a, b in zip(widths, widths[1:])):
            raise ValidationError(
                "size classes must have strictly increasing aux_words"
            )
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValidationError("size class names must be unique")

    @classmethod
    def base(cls) -> "ColumnSchema":
        """The default single-class schema (balance + nonce only)."""
        return cls()

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    @property
    def has_aux(self) -> bool:
        return len(self.classes) > 1

    def class_for(self, aux_words: int) -> int:
        """Index of the smallest class covering ``aux_words``."""
        if aux_words < 0:
            raise ValidationError(
                f"aux_words must be >= 0, got {aux_words}"
            )
        for i, size_class in enumerate(self.classes):
            if size_class.aux_words >= aux_words:
                return i
        raise ValidationError(
            f"no size class covers aux_words={aux_words} "
            f"(widest is {self.classes[-1].aux_words})"
        )


@dataclass(frozen=True)
class AccountState:
    """Balance-and-nonce state of one account."""

    balance: float = 0.0
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError(f"balance must be >= 0, got {self.balance}")
        if self.nonce < 0:
            raise ValidationError(f"nonce must be >= 0, got {self.nonce}")

    def credited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` added to the balance."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        return replace(self, balance=self.balance + amount)

    def debited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` removed and the nonce bumped.

        Raises :class:`ChainError` when the balance cannot cover it.
        """
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if amount > self.balance:
            raise ChainError(
                f"insufficient balance: {self.balance} < {amount}"
            )
        return replace(self, balance=self.balance - amount, nonce=self.nonce + 1)


def _state_root_digest(items: List[Tuple[int, float, int]]) -> str:
    """Digest over ``(account, balance, nonce)`` rows sorted by account.

    Shared by both backends so a dict store and a dense store holding
    the same state hash to the same root.
    """
    hasher = hashlib.sha256()
    for account, balance, nonce in sorted(items):
        hasher.update(f"{account}:{balance!r}:{nonce}".encode("utf-8"))
        hasher.update(b"\x00")
    return "0x" + hasher.hexdigest()


class ResidencyIndex:
    """Global account -> holding-shards index (per-account bitmasks).

    A ``(capacity, n_words)`` uint64 bitmask matrix — bit ``j`` of word
    ``j // 64`` set when shard ``j``'s store holds the account — plus a
    spill dict (arbitrary-width Python-int masks) for ids beyond the
    capacity. One word covers up to 64 shards; larger ``n_shards``
    simply widen the matrix, so no shard count falls back to the O(k)
    store scan any more. Stores maintain the index incrementally on
    every membership change — execute scatters, settlements, migrations
    — so :meth:`get_shard` answers "which shard holds this account's
    state" in O(words), and :meth:`shards_of` vectorises the lookup for
    batched reconfiguration.

    An account *can* be resident on more than one shard (a relay
    settlement can credit a shard the account has since migrated away
    from); the index then reports the lowest holding shard id — exactly
    what the O(k) store scan (:meth:`StateRegistry.locate_scan`)
    returns, which the equivalence property suite pins (including at
    k = 80, where the old single-int64 layout could not index at all).
    """

    __slots__ = ("capacity", "n_shards", "n_words", "_mask", "_extra")

    def __init__(self, capacity: int, n_shards: int = 64) -> None:
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self.capacity = int(capacity)
        self.n_shards = int(n_shards)
        self.n_words = (self.n_shards + 63) // 64
        self._mask = np.zeros((self.capacity, self.n_words), dtype=np.uint64)
        self._extra: Dict[int, int] = {}

    def add(self, shard: int, account: int) -> None:
        if 0 <= account < self.capacity:
            self._mask[account, shard >> 6] |= np.uint64(1 << (shard & 63))
        else:
            self._extra[account] = self._extra.get(account, 0) | (1 << shard)

    def discard(self, shard: int, account: int) -> None:
        if 0 <= account < self.capacity:
            self._mask[account, shard >> 6] &= np.uint64(
                ~(1 << (shard & 63)) & 0xFFFFFFFFFFFFFFFF
            )
            return
        mask = self._extra.get(account, 0) & ~(1 << shard)
        if mask:
            self._extra[account] = mask
        else:
            self._extra.pop(account, None)

    def add_many(self, shard: int, accounts: np.ndarray) -> None:
        if len(accounts) == 0:
            return
        if int(accounts.min()) >= 0 and int(accounts.max()) < self.capacity:
            # Duplicate ids all OR in the same bit — buffering is safe.
            self._mask[accounts, shard >> 6] |= np.uint64(1 << (shard & 63))
            return
        for account in accounts.tolist():
            self.add(shard, account)

    def discard_many(self, shard: int, accounts: np.ndarray) -> None:
        if len(accounts) == 0:
            return
        if int(accounts.min()) >= 0 and int(accounts.max()) < self.capacity:
            self._mask[accounts, shard >> 6] &= np.uint64(
                ~(1 << (shard & 63)) & 0xFFFFFFFFFFFFFFFF
            )
            return
        for account in accounts.tolist():
            self.discard(shard, account)

    def get_shard(self, account: int) -> Optional[int]:
        """Lowest shard id holding ``account``, or None."""
        if 0 <= account < self.capacity:
            for word_index, word in enumerate(self._mask[account].tolist()):
                if word:
                    return (word_index << 6) + (word & -word).bit_length() - 1
            return None
        mask = self._extra.get(account, 0)
        if mask == 0:
            return None
        return (mask & -mask).bit_length() - 1

    def shards_of(self, accounts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`get_shard`; ``-1`` marks non-residents."""
        accounts = np.asarray(accounts, dtype=np.int64)
        if len(accounts) == 0:
            return np.zeros(0, dtype=np.int64)
        if int(accounts.min()) >= 0 and int(accounts.max()) < self.capacity:
            masks = self._mask[accounts]  # (n, n_words)
            occupied = masks != 0
            resident = occupied.any(axis=1)
            # First non-empty word per row (0 for non-residents, which
            # the `resident` mask overrides below).
            first_word = np.argmax(occupied, axis=1)
            words = masks[np.arange(len(accounts)), first_word]
            lowest_bit = words & (~words + np.uint64(1))
            # frexp exponents are exact for powers of two (and map the
            # zero mask to exponent 0, i.e. bit -1).
            bits = np.frexp(lowest_bit.astype(np.float64))[1].astype(np.int64) - 1
            shards = (first_word.astype(np.int64) << 6) + bits
            shards[~resident] = -1
            return shards
        return np.array(
            [
                -1 if (shard := self.get_shard(a)) is None else shard
                for a in accounts.tolist()
            ],
            dtype=np.int64,
        )

    def nbytes(self) -> int:
        return int(self._mask.nbytes)


class ShardStateStore:
    """The state of all accounts resident on one shard (dict backend).

    Internally object-free: balances and nonces live in two parallel
    scalar dicts so the batched executor's gather/scatter hot path never
    constructs :class:`AccountState` objects. ``get`` materialises one
    lazily for the object-friendly API. When an ``index`` is attached
    (by :class:`StateRegistry`), every membership change is mirrored
    into it.
    """

    def __init__(
        self, shard_id: int, index: Optional[ResidencyIndex] = None
    ) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        self.shard_id = shard_id
        self._balances: Dict[int, float] = {}
        self._nonces: Dict[int, int] = {}
        self._aux: Dict[int, np.ndarray] = {}
        self._index = index

    def __len__(self) -> int:
        return len(self._balances)

    def __contains__(self, account: int) -> bool:
        return account in self._balances

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        return iter(self._balances)

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        balance = self._balances.get(account)
        if balance is None:
            return AccountState()
        return AccountState(balance=balance, nonce=self._nonces[account])

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        if self._index is not None and account not in self._balances:
            self._index.add(self.shard_id, account)
        self._balances[account] = state.balance
        self._nonces[account] = state.nonce

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        if self._index is not None and account not in self._balances:
            self._index.add(self.shard_id, account)
        balance = self._balances.get(account, 0.0) + amount
        self._balances[account] = balance
        nonce = self._nonces.setdefault(account, 0)
        return AccountState(balance=balance, nonce=nonce)

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        balance = self._balances.get(account, 0.0)
        if amount > balance:
            raise ChainError(f"insufficient balance: {balance} < {amount}")
        if self._index is not None and account not in self._balances:
            self._index.add(self.shard_id, account)
        balance -= amount
        nonce = self._nonces.get(account, 0) + 1
        self._balances[account] = balance
        self._nonces[account] = nonce
        return AccountState(balance=balance, nonce=nonce)

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        try:
            balance = self._balances.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None
        if self._index is not None:
            self._index.discard(self.shard_id, account)
        self._aux.pop(account, None)
        return AccountState(balance=balance, nonce=self._nonces.pop(account))

    # -- columnar bulk access (batched executor hot path) ----------------------

    def balances_of(self, accounts: np.ndarray) -> np.ndarray:
        """Balances of ``accounts`` as an array (zero when never seen)."""
        get = self._balances.get
        return np.fromiter(
            (get(a, 0.0) for a in accounts.tolist()),
            dtype=np.float64,
            count=len(accounts),
        )

    def write_back(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonce_bumps: np.ndarray,
    ) -> None:
        """Scatter updated balances (and nonce increments) back.

        Accounts are created on first touch, exactly like the scalar
        credit/debit path.
        """
        bal = self._balances
        non = self._nonces
        get_nonce = non.get
        for account, balance, bump in zip(
            accounts.tolist(), balances.tolist(), nonce_bumps.tolist()
        ):
            bal[account] = balance
            non[account] = get_nonce(account, 0) + bump
        if self._index is not None:
            self._index.add_many(self.shard_id, accounts)

    def credit_many(self, accounts: np.ndarray, amounts: np.ndarray) -> None:
        """Apply a stream of credits in order (settlement scatter)."""
        bal = self._balances
        non = self._nonces
        for account, amount in zip(accounts.tolist(), amounts.tolist()):
            bal[account] = bal.get(account, 0.0) + amount
            non.setdefault(account, 0)
        if self._index is not None:
            self._index.add_many(self.shard_id, accounts)

    # -- bulk migration (batched reconfiguration hot path) ---------------------

    def take_many(
        self, accounts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Remove ``accounts`` and return their (balances, nonces).

        Every account must be resident — callers group by the located
        holding shard first. The columnar twin of a :meth:`remove`
        loop.
        """
        n = len(accounts)
        balances = np.empty(n, dtype=np.float64)
        nonces = np.empty(n, dtype=np.int64)
        bal = self._balances
        non = self._nonces
        for i, account in enumerate(accounts.tolist()):
            try:
                balances[i] = bal.pop(account)
            except KeyError:
                raise ChainError(
                    f"account {account} is not resident on shard "
                    f"{self.shard_id}"
                ) from None
            nonces[i] = non.pop(account)
        if self._index is not None:
            self._index.discard_many(self.shard_id, accounts)
        return balances, nonces

    def put_many(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonces: np.ndarray,
    ) -> None:
        """Install state rows in bulk (the columnar twin of ``put``)."""
        bal = self._balances
        non = self._nonces
        for account, balance, nonce in zip(
            accounts.tolist(), balances.tolist(), nonces.tolist()
        ):
            bal[account] = balance
            non[account] = nonce
        if self._index is not None:
            self._index.add_many(self.shard_id, accounts)

    def total_balance(self) -> float:
        """Exactly-rounded sum of resident balances (conservation checks)."""
        return math.fsum(self._balances.values())

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states."""
        return _state_root_digest(
            [
                (account, balance, self._nonces[account])
                for account, balance in self._balances.items()
            ]
        )

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self._balances) * STATE_RECORD_BYTES

    def column_nbytes(self) -> int:
        """Array-column bytes held by this store (0: dicts only)."""
        return 0

    def slack_slots(self) -> int:
        """Vacated-but-unreleased slots (0: dicts shrink themselves)."""
        return 0

    def compact(self) -> int:
        """No-op for the dict backend; returns bytes reclaimed (0)."""
        self.last_compact_moved_bytes = 0
        return 0

    #: Physical bytes rewritten by the most recent :meth:`compact` call.
    last_compact_moved_bytes: int = 0

    def arena_stats(self) -> Dict[str, float]:
        """Allocator telemetry (all zero: dicts have no slot columns)."""
        return {
            "arenas": 0,
            "capacity_slots": 0,
            "free_slots": 0,
            "live_slots": len(self._balances),
        }

    # -- auxiliary payload words (opt-in multi-asset / storage state) -----------

    def put_aux(self, account: int, values: Sequence[float]) -> None:
        """Attach auxiliary payload words (excluded from state roots)."""
        values = np.asarray(values, dtype=np.float64)
        if len(values):
            self._aux[account] = values.copy()

    def aux_of(self, account: int) -> np.ndarray:
        """Current aux payload of ``account`` (empty when never set)."""
        payload = self._aux.get(account)
        if payload is None:
            return np.zeros(0, dtype=np.float64)
        return payload.copy()

    def take_aux(self, account: int) -> Optional[np.ndarray]:
        """Detach and return the aux payload (None when absent)."""
        return self._aux.pop(account, None)


class SlotDirectory:
    """Shared global-id -> (home shard, local slot) directory.

    One directory serves every dense store of a registry: ``home[a]``
    is the shard whose columns hold account ``a`` (-1 = no columns
    anywhere), ``slot[a]`` the position inside that shard's columns.
    Storing the directory once — instead of full-universe columns per
    shard — is what cuts the dense backend's memory k-fold.
    """

    __slots__ = ("capacity", "home", "slot")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.home = np.full(self.capacity, -1, dtype=np.int32)
        self.slot = np.zeros(self.capacity, dtype=np.int64)

    def nbytes(self) -> int:
        return int(self.home.nbytes + self.slot.nbytes)


class DenseShardStateStore:
    """Dense-array backend: compacted per-shard state columns.

    Balances and nonces live in numpy columns sized to this shard's own
    population; the shared :class:`SlotDirectory` translates global
    account ids to local column slots (``home[a] == shard_id`` marks
    membership). Columns grow by doubling as accounts arrive; slots
    vacated by migration are recycled through a free list. The batched
    executor's gather/scatter entry points stay single fancy-indexing
    operations (one extra slot indirection versus full-universe
    columns), which is what lets the executor microbench scale past 1M
    accounts without allocating ``k x n_accounts`` cells.

    Account ids at or above the directory capacity — and accounts whose
    state is resident here while their *home* columns live on another
    shard (a relay settlement can do that) — spill into a fallback dict
    pair with the scalar-dict semantics.

    Observable behaviour — balances, nonces, membership, state roots,
    error cases — is identical to :class:`ShardStateStore`; the
    backend-equivalence property suite asserts it.
    """

    def __init__(
        self,
        shard_id: int,
        capacity: int,
        directory: Optional[SlotDirectory] = None,
        index: Optional[ResidencyIndex] = None,
    ) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        self.shard_id = shard_id
        self.capacity = int(capacity)
        self._dir = directory if directory is not None else SlotDirectory(capacity)
        self._index = index
        self._bal = np.zeros(0, dtype=np.float64)
        self._non = np.zeros(0, dtype=np.int64)
        self._used = 0
        self._free: List[int] = []
        self._count = 0
        # Fallback for ids >= capacity and off-home residents.
        self._extra_bal: Dict[int, float] = {}
        self._extra_non: Dict[int, int] = {}
        # Aux payloads stay in a side dict: this is the single-class
        # reference backend, size-classed columns live in the arena store.
        self._aux: Dict[int, np.ndarray] = {}
        self.last_compact_moved_bytes = 0

    # -- slot plumbing ----------------------------------------------------------

    def _grow_columns(self, n_slots: int) -> None:
        if n_slots <= len(self._bal):
            return
        new_capacity = max(16, len(self._bal))
        while new_capacity < n_slots:
            new_capacity *= 2
        for name in ("_bal", "_non"):
            column = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=column.dtype)
            grown[: self._used] = column[: self._used]
            setattr(self, name, grown)

    def _alloc_slot(self, account: int) -> int:
        """Claim a zeroed column slot for ``account`` (makes it home)."""
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._used
            self._grow_columns(slot + 1)
            self._used += 1
        self._dir.home[account] = self.shard_id
        self._dir.slot[account] = slot
        self._count += 1
        if self._index is not None:
            self._index.add(self.shard_id, account)
        return slot

    def _alloc_slots_bulk(self, accounts: np.ndarray) -> None:
        """Claim slots for many distinct new accounts at once."""
        n_new = len(accounts)
        if n_new == 0:
            return
        slots = np.empty(n_new, dtype=np.int64)
        n_recycled = min(len(self._free), n_new)
        if n_recycled:
            slots[:n_recycled] = self._free[len(self._free) - n_recycled :]
            del self._free[len(self._free) - n_recycled :]
        n_fresh = n_new - n_recycled
        if n_fresh:
            self._grow_columns(self._used + n_fresh)
            slots[n_recycled:] = np.arange(
                self._used, self._used + n_fresh, dtype=np.int64
            )
            self._used += n_fresh
        self._dir.home[accounts] = self.shard_id
        self._dir.slot[accounts] = slots
        self._count += n_new
        if self._index is not None:
            self._index.add_many(self.shard_id, accounts)

    def _free_slot(self, account: int) -> None:
        slot = int(self._dir.slot[account])
        self._bal[slot] = 0.0
        self._non[slot] = 0
        self._free.append(slot)
        self._dir.home[account] = -1
        self._count -= 1
        if self._index is not None:
            self._index.discard(self.shard_id, account)

    def _is_home(self, account: int) -> bool:
        return (
            0 <= account < self.capacity
            and self._dir.home[account] == self.shard_id
        )

    def _can_claim(self, account: int) -> bool:
        """True when ``account`` may take a home slot here: in capacity,
        homed nowhere, and not already spilled into this store's extras
        (promotion would double-count the membership)."""
        return (
            0 <= account < self.capacity
            and self._dir.home[account] == -1
            and account not in self._extra_bal
        )

    def _put_extra(self, account: int, balance: float, nonce: int) -> None:
        if account not in self._extra_bal:
            self._count += 1
            if self._index is not None:
                self._index.add(self.shard_id, account)
        self._extra_bal[account] = balance
        self._extra_non[account] = nonce

    def __len__(self) -> int:
        return self._count

    def __contains__(self, account: int) -> bool:
        return self._is_home(account) or account in self._extra_bal

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        for account in np.flatnonzero(
            self._dir.home == self.shard_id
        ).tolist():
            yield account
        yield from self._extra_bal

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        if self._is_home(account):
            slot = self._dir.slot[account]
            return AccountState(
                balance=float(self._bal[slot]), nonce=int(self._non[slot])
            )
        balance = self._extra_bal.get(account)
        if balance is None:
            return AccountState()
        return AccountState(balance=balance, nonce=self._extra_non[account])

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        if self._is_home(account):
            slot = self._dir.slot[account]
            self._bal[slot] = state.balance
            self._non[slot] = state.nonce
            return
        if self._can_claim(account):
            slot = self._alloc_slot(account)
            self._bal[slot] = state.balance
            self._non[slot] = state.nonce
            return
        self._put_extra(account, state.balance, state.nonce)

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        if self._is_home(account):
            slot = self._dir.slot[account]
            balance = float(self._bal[slot]) + amount
            self._bal[slot] = balance
            return AccountState(balance=balance, nonce=int(self._non[slot]))
        if self._can_claim(account):
            slot = self._alloc_slot(account)
            self._bal[slot] = amount
            return AccountState(balance=amount, nonce=0)
        balance = self._extra_bal.get(account, 0.0) + amount
        nonce = self._extra_non.get(account, 0)
        self._put_extra(account, balance, nonce)
        return AccountState(balance=balance, nonce=nonce)

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if self._is_home(account):
            slot = self._dir.slot[account]
            balance = float(self._bal[slot])
            if amount > balance:
                raise ChainError(f"insufficient balance: {balance} < {amount}")
            balance -= amount
            nonce = int(self._non[slot]) + 1
            self._bal[slot] = balance
            self._non[slot] = nonce
            return AccountState(balance=balance, nonce=nonce)
        if self._can_claim(account):
            if amount > 0.0:
                raise ChainError(f"insufficient balance: 0.0 < {amount}")
            slot = self._alloc_slot(account)
            self._non[slot] = 1
            return AccountState(balance=0.0, nonce=1)
        balance = self._extra_bal.get(account, 0.0)
        if amount > balance:
            raise ChainError(f"insufficient balance: {balance} < {amount}")
        balance -= amount
        nonce = self._extra_non.get(account, 0) + 1
        self._put_extra(account, balance, nonce)
        return AccountState(balance=balance, nonce=nonce)

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        if self._is_home(account):
            slot = self._dir.slot[account]
            state = AccountState(
                balance=float(self._bal[slot]), nonce=int(self._non[slot])
            )
            self._free_slot(account)
            self._aux.pop(account, None)
            return state
        try:
            balance = self._extra_bal.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None
        self._count -= 1
        if self._index is not None:
            self._index.discard(self.shard_id, account)
        self._aux.pop(account, None)
        return AccountState(balance=balance, nonce=self._extra_non.pop(account))

    # -- columnar bulk access (batched executor hot path) ----------------------

    def _fast_bulk_ok(self, accounts: np.ndarray) -> bool:
        """True when the pure-columnar bulk path applies."""
        return not self._extra_bal and (
            len(accounts) == 0
            or (
                int(accounts.min()) >= 0
                and int(accounts.max()) < self.capacity
            )
        )

    def balances_of(self, accounts: np.ndarray) -> np.ndarray:
        """Balances of ``accounts`` as an array (zero when never seen)."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            mine = home == self.shard_id
            if mine.all():
                return self._bal[self._dir.slot[accounts]]
            result = np.zeros(len(accounts), dtype=np.float64)
            if mine.any():
                result[mine] = self._bal[self._dir.slot[accounts[mine]]]
            return result
        return np.fromiter(
            (self.get(a).balance for a in accounts.tolist()),
            dtype=np.float64,
            count=len(accounts),
        )

    def write_back(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonce_bumps: np.ndarray,
    ) -> None:
        """Scatter updated balances (and nonce increments) back."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            new = home == -1
            if (new | (home == self.shard_id)).all():
                if new.any():
                    self._alloc_slots_bulk(np.unique(accounts[new]))
                slots = self._dir.slot[accounts]
                self._bal[slots] = balances
                np.add.at(self._non, slots, nonce_bumps)
                return
        for account, balance, bump in zip(
            accounts.tolist(), balances.tolist(), nonce_bumps.tolist()
        ):
            if self._is_home(account):
                slot = self._dir.slot[account]
                self._bal[slot] = balance
                self._non[slot] += bump
            elif self._can_claim(account):
                slot = self._alloc_slot(account)
                self._bal[slot] = balance
                self._non[slot] = bump
            else:
                self._put_extra(
                    account,
                    balance,
                    self._extra_non.get(account, 0) + bump,
                )

    def credit_many(self, accounts: np.ndarray, amounts: np.ndarray) -> None:
        """Apply a stream of credits in order (settlement scatter)."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            new = home == -1
            if (new | (home == self.shard_id)).all():
                if new.any():
                    self._alloc_slots_bulk(np.unique(accounts[new]))
                # np.add.at applies duplicate indices sequentially,
                # matching the dict backend's in-order accumulation.
                np.add.at(self._bal, self._dir.slot[accounts], amounts)
                return
        for account, amount in zip(accounts.tolist(), amounts.tolist()):
            self.credit(account, float(amount))

    # -- bulk migration (batched reconfiguration hot path) ---------------------

    def take_many(
        self, accounts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Remove ``accounts`` (all resident here); return their state."""
        if self._fast_bulk_ok(accounts) and len(accounts):
            home = self._dir.home[accounts]
            if (home == self.shard_id).all():
                slots = self._dir.slot[accounts]
                balances = self._bal[slots].copy()
                nonces = self._non[slots].copy()
                self._bal[slots] = 0.0
                self._non[slots] = 0
                self._free.extend(slots.tolist())
                self._dir.home[accounts] = -1
                self._count -= len(accounts)
                if self._index is not None:
                    self._index.discard_many(self.shard_id, accounts)
                return balances, nonces
        n = len(accounts)
        balances = np.empty(n, dtype=np.float64)
        nonces = np.empty(n, dtype=np.int64)
        for i, account in enumerate(accounts.tolist()):
            state = self.remove(account)
            balances[i] = state.balance
            nonces[i] = state.nonce
        return balances, nonces

    def put_many(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonces: np.ndarray,
    ) -> None:
        """Install state rows in bulk (the columnar twin of ``put``)."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            new = home == -1
            if (new | (home == self.shard_id)).all():
                if new.any():
                    self._alloc_slots_bulk(np.unique(accounts[new]))
                slots = self._dir.slot[accounts]
                self._bal[slots] = balances
                self._non[slots] = nonces
                return
        for account, balance, nonce in zip(
            accounts.tolist(), balances.tolist(), nonces.tolist()
        ):
            if self._is_home(account):
                slot = self._dir.slot[account]
                self._bal[slot] = balance
                self._non[slot] = nonce
            elif self._can_claim(account):
                slot = self._alloc_slot(account)
                self._bal[slot] = balance
                self._non[slot] = nonce
            else:
                self._put_extra(account, balance, int(nonce))

    def total_balance(self) -> float:
        """Sum of resident balances (float64 pairwise ``np.sum``)."""
        dense = float(np.sum(self._bal[: self._used], dtype=np.float64))
        if not self._extra_bal:
            return dense
        return math.fsum([dense, *self._extra_bal.values()])

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states."""
        resident = np.flatnonzero(self._dir.home == self.shard_id)
        slots = self._dir.slot[resident]
        items = [
            (int(a), float(b), int(n))
            for a, b, n in zip(
                resident.tolist(),
                self._bal[slots].tolist(),
                self._non[slots].tolist(),
            )
        ]
        items.extend(
            (account, balance, self._extra_non[account])
            for account, balance in self._extra_bal.items()
        )
        return _state_root_digest(items)

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self) * STATE_RECORD_BYTES

    def column_nbytes(self) -> int:
        """Bytes held by this store's state columns."""
        return int(self._bal.nbytes + self._non.nbytes)

    def slack_slots(self) -> int:
        """Slots vacated by migration but still held by the columns."""
        return len(self._free)

    def arena_stats(self) -> Dict[str, float]:
        """Allocator telemetry for the first-fit free-list layout.

        No arenas: the whole column is one allocation region, so
        ``free_slots`` is the free list plus the unallocated tail and
        fragmentation is measured against the full column capacity.
        """
        capacity = len(self._bal)
        live = self._count - len(self._extra_bal)
        return {
            "arenas": 0,
            "capacity_slots": capacity,
            "free_slots": capacity - live,
            "live_slots": live,
        }

    def rehomeable_extras(self) -> int:
        """Spill-dict entries that :meth:`compact` could re-home now.

        O(spill size); lets :meth:`StateRegistry.compact_stores`
        trigger a compaction for stranded spill entries even when the
        free list alone would not cross the slack threshold.
        """
        if not self._extra_bal:
            return 0
        return sum(
            1
            for account in self._extra_bal
            if 0 <= account < self.capacity
            and self._dir.home[account] == -1
        )

    def _rehome_extras(self) -> int:
        """Re-slot spilled accounts that may claim a home slot again.

        A relay settlement can credit an account here while its home
        columns live elsewhere; once the other shard removes it, the
        spill entry is the only residency left — in capacity, homed
        nowhere — yet it would stay in the fallback dict forever.
        Compaction re-homes those entries into fresh column slots.
        Ids beyond the directory capacity and genuinely off-home
        residents stay spilled (they have no legal slot here).
        """
        if not self._extra_bal:
            return 0
        eligible = [
            account
            for account in self._extra_bal
            if 0 <= account < self.capacity
            and self._dir.home[account] == -1
        ]
        for account in eligible:
            balance = self._extra_bal.pop(account)
            nonce = self._extra_non.pop(account)
            # _alloc_slot re-adds the membership this spill entry held.
            self._count -= 1
            if self._index is not None:
                self._index.discard(self.shard_id, account)
            slot = self._alloc_slot(account)
            self._bal[slot] = balance
            self._non[slot] = nonce
        return len(eligible)

    def compact(self) -> int:
        """Re-slot resident accounts into fresh right-sized columns.

        Migration churn vacates slots faster than new arrivals reclaim
        them: the free list grows and the columns never shrink. This
        pass rebuilds the columns at the smallest power-of-two capacity
        covering the live population (slot order preserved, so state
        roots and iteration order are untouched), clears the free list
        and rewrites the directory's slots. Eligible spill-dict entries
        are re-homed into fresh slots first (see :meth:`_rehome_extras`).
        Returns the column bytes reclaimed. O(live accounts) — callers
        gate it behind a slack threshold (see
        :meth:`StateRegistry.compact_stores`).
        """
        before = self.column_nbytes()
        self._rehome_extras()
        resident = np.flatnonzero(self._dir.home == self.shard_id)
        count = len(resident)
        old_slots = None
        if count:
            old_slots = self._dir.slot[resident]
            order = np.argsort(old_slots, kind="stable")
            resident = resident[order]
            old_slots = old_slots[order]
        new_capacity = 0
        if count:
            new_capacity = 16
            while new_capacity < count:
                new_capacity *= 2
        new_bal = np.zeros(new_capacity, dtype=np.float64)
        new_non = np.zeros(new_capacity, dtype=np.int64)
        if count:
            new_bal[:count] = self._bal[old_slots]
            new_non[:count] = self._non[old_slots]
            self._dir.slot[resident] = np.arange(count, dtype=np.int64)
        self._bal = new_bal
        self._non = new_non
        self._used = count
        self._free = []
        # First-fit compaction rewrites every live row (bal + nonce).
        self.last_compact_moved_bytes = count * 16
        return before - self.column_nbytes()

    # -- auxiliary payload words (opt-in multi-asset / storage state) -----------

    def put_aux(self, account: int, values: Sequence[float]) -> None:
        """Attach auxiliary payload words (excluded from state roots)."""
        values = np.asarray(values, dtype=np.float64)
        if len(values):
            self._aux[account] = values.copy()

    def aux_of(self, account: int) -> np.ndarray:
        """Current aux payload of ``account`` (empty when never set)."""
        payload = self._aux.get(account)
        if payload is None:
            return np.zeros(0, dtype=np.float64)
        return payload.copy()

    def take_aux(self, account: int) -> Optional[np.ndarray]:
        """Detach and return the aux payload (None when absent)."""
        return self._aux.pop(account, None)


#: Bits reserved for the local slot in a directory entry; the size
#: class lives in the bits above (only used by multi-class schemas —
#: single-class directories store raw local slots).
_CLS_SHIFT = 48
_LOCAL_MASK = (1 << _CLS_SHIFT) - 1


class ArenaShardStateStore:
    """Size-classed arena backend: extent-granular per-shard columns.

    The drop-in successor to :class:`DenseShardStateStore` (kept as the
    property-pinned ``"dense-ref"`` reference). State lives in one
    column set *per size class* of the :class:`ColumnSchema` — balance,
    nonce, an ``owner`` reverse map (slot -> account, ``-1`` free) and,
    for classes beyond the base, a 2-D aux payload block. Each column
    set is carved into fixed :data:`ARENA_EXTENT_ROWS`-slot **arenas**:
    every arena keeps its own free list and live count, allocation
    fills the lowest arena with free slots (a lazy min-heap tracks
    them), and columns grow by whole extents.

    The payoff is in :meth:`compact`: instead of rewriting whole
    columns, compaction is a *policy* — re-slot only arenas whose
    occupancy fell below ``compact_occupancy`` (their rows move into
    free slots of denser arenas, found in O(victim rows) through the
    owner map), then truncate trailing all-empty extents. Work per
    pass is bounded by the sparse arenas' population, not the live
    population, which is what keeps the
    ``EpochReconfigurator(compact_slack=...)`` seam cheap under
    adversarial churn; interior empty arenas stay mapped and are the
    first allocation targets.

    Observable behaviour — balances, nonces, membership, state roots,
    error cases, spill semantics — is identical to both other
    backends; the arena equivalence property suite pins it. Aux
    payload words are opt-in scenario state excluded from state roots.
    With the default single-class schema the directory stores raw
    local slots and every bulk entry point keeps the single
    fancy-indexing gather/scatter of the dense reference; multi-class
    schemas encode the class in the slot's high bits and take the
    scalar paths.
    """

    def __init__(
        self,
        shard_id: int,
        capacity: int,
        directory: Optional[SlotDirectory] = None,
        index: Optional[ResidencyIndex] = None,
        schema: Optional[ColumnSchema] = None,
        compact_occupancy: float = 0.5,
    ) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        if not 0.0 <= compact_occupancy <= 1.0:
            raise ValidationError(
                f"compact_occupancy must be in [0, 1], got {compact_occupancy}"
            )
        self.shard_id = shard_id
        self.capacity = int(capacity)
        self.compact_occupancy = float(compact_occupancy)
        self._schema = schema if schema is not None else ColumnSchema.base()
        self._classes = self._schema.classes
        self._multiclass = self._schema.has_aux
        self._dir = directory if directory is not None else SlotDirectory(capacity)
        self._index = index
        n_classes = len(self._classes)
        self._bal: List[np.ndarray] = [
            np.zeros(0, dtype=np.float64) for _ in range(n_classes)
        ]
        self._non: List[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(n_classes)
        ]
        self._owner: List[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(n_classes)
        ]
        self._auxcol: List[Optional[np.ndarray]] = [
            np.zeros((0, cls.aux_words), dtype=np.float64)
            if cls.aux_words
            else None
            for cls in self._classes
        ]
        # Per class: one free list + live counter per arena, plus a lazy
        # min-heap of arena ids that may have free slots.
        self._arena_free: List[List[List[int]]] = [[] for _ in range(n_classes)]
        self._arena_live: List[List[int]] = [[] for _ in range(n_classes)]
        self._free_heap: List[List[int]] = [[] for _ in range(n_classes)]
        self._count = 0
        # Fallback for ids >= capacity and off-home residents.
        self._extra_bal: Dict[int, float] = {}
        self._extra_non: Dict[int, int] = {}
        self._extra_aux: Dict[int, np.ndarray] = {}
        self.last_compact_moved_bytes = 0

    @property
    def schema(self) -> ColumnSchema:
        return self._schema

    # -- slot plumbing ----------------------------------------------------------

    def _encode(self, cls: int, local: int) -> int:
        if not self._multiclass:
            return local
        return (cls << _CLS_SHIFT) | local

    def _decode(self, encoded: int) -> Tuple[int, int]:
        if not self._multiclass:
            return 0, encoded
        return encoded >> _CLS_SHIFT, encoded & _LOCAL_MASK

    def _grow_extents(self, cls: int, n_new: int) -> None:
        """Append ``n_new`` fresh all-free extents to class ``cls``."""
        old_extents = len(self._arena_live[cls])
        extent = ARENA_EXTENT_ROWS
        new_rows = (old_extents + n_new) * extent
        for columns in (self._bal, self._non, self._owner):
            column = columns[cls]
            grown = np.zeros(new_rows, dtype=column.dtype)
            grown[: len(column)] = column
            columns[cls] = grown
        self._owner[cls][old_extents * extent :] = -1
        aux = self._auxcol[cls]
        if aux is not None:
            grown_aux = np.zeros((new_rows, aux.shape[1]), dtype=np.float64)
            grown_aux[: len(aux)] = aux
            self._auxcol[cls] = grown_aux
        for arena in range(old_extents, old_extents + n_new):
            start = arena * extent
            # Descending, so pop() hands out the lowest slot first.
            self._arena_free[cls].append(
                list(range(start + extent - 1, start - 1, -1))
            )
            self._arena_live[cls].append(0)
            heapq.heappush(self._free_heap[cls], arena)

    def _alloc_local(self, cls: int) -> int:
        """Claim one free slot in the lowest arena that has one."""
        frees = self._arena_free[cls]
        heap = self._free_heap[cls]
        while heap and not frees[heap[0]]:
            heapq.heappop(heap)
        if not heap:
            self._grow_extents(cls, 1)
        arena = heap[0]
        local = frees[arena].pop()
        self._arena_live[cls][arena] += 1
        return local

    def _alloc_locals_bulk(self, cls: int, n_slots: int) -> np.ndarray:
        """Claim ``n_slots`` free slots, lowest arenas first."""
        out = np.empty(n_slots, dtype=np.int64)
        filled = 0
        frees = self._arena_free[cls]
        heap = self._free_heap[cls]
        live = self._arena_live[cls]
        extent = ARENA_EXTENT_ROWS
        while filled < n_slots:
            while heap and not frees[heap[0]]:
                heapq.heappop(heap)
            if not heap:
                remaining = n_slots - filled
                self._grow_extents(cls, (remaining + extent - 1) // extent)
                continue
            arena = heap[0]
            free_list = frees[arena]
            take = min(len(free_list), n_slots - filled)
            out[filled : filled + take] = free_list[-take:][::-1]
            del free_list[-take:]
            live[arena] += take
            filled += take
        return out

    def _release_local(self, cls: int, local: int) -> None:
        """Zero one slot and return it to its arena's free list."""
        arena = local // ARENA_EXTENT_ROWS
        self._bal[cls][local] = 0.0
        self._non[cls][local] = 0
        self._owner[cls][local] = -1
        aux = self._auxcol[cls]
        if aux is not None:
            aux[local, :] = 0.0
        free_list = self._arena_free[cls][arena]
        if not free_list:
            heapq.heappush(self._free_heap[cls], arena)
        free_list.append(local)
        self._arena_live[cls][arena] -= 1

    def _release_locals_bulk(self, cls: int, slots: np.ndarray) -> None:
        """Zero many slots and return them to their arenas' free lists."""
        self._bal[cls][slots] = 0.0
        self._non[cls][slots] = 0
        self._owner[cls][slots] = -1
        aux = self._auxcol[cls]
        if aux is not None:
            aux[slots, :] = 0.0
        arenas = slots // ARENA_EXTENT_ROWS
        order = np.argsort(arenas, kind="stable")
        ordered_slots = slots[order]
        ordered_arenas = arenas[order]
        boundaries = np.flatnonzero(np.diff(ordered_arenas) != 0) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(ordered_slots)]))
        frees = self._arena_free[cls]
        live = self._arena_live[cls]
        for start, stop in zip(starts.tolist(), stops.tolist()):
            arena = int(ordered_arenas[start])
            free_list = frees[arena]
            if not free_list:
                heapq.heappush(self._free_heap[cls], arena)
            free_list.extend(ordered_slots[start:stop][::-1].tolist())
            live[arena] -= stop - start

    def _alloc_slot(self, account: int, cls: int = 0) -> int:
        """Claim a zeroed column slot for ``account`` (makes it home)."""
        local = self._alloc_local(cls)
        self._owner[cls][local] = account
        self._dir.home[account] = self.shard_id
        self._dir.slot[account] = self._encode(cls, local)
        self._count += 1
        if self._index is not None:
            self._index.add(self.shard_id, account)
        return local

    def _alloc_slots_bulk(self, accounts: np.ndarray) -> None:
        """Claim base-class slots for many distinct new accounts at once."""
        n_new = len(accounts)
        if n_new == 0:
            return
        slots = self._alloc_locals_bulk(0, n_new)
        self._owner[0][slots] = accounts
        self._dir.home[accounts] = self.shard_id
        # Base class encodes to the raw local slot for any schema.
        self._dir.slot[accounts] = slots
        self._count += n_new
        if self._index is not None:
            self._index.add_many(self.shard_id, accounts)

    def _free_slot(self, account: int) -> None:
        cls, local = self._decode(int(self._dir.slot[account]))
        self._release_local(cls, local)
        self._dir.home[account] = -1
        self._count -= 1
        if self._index is not None:
            self._index.discard(self.shard_id, account)

    def _is_home(self, account: int) -> bool:
        return (
            0 <= account < self.capacity
            and self._dir.home[account] == self.shard_id
        )

    def _can_claim(self, account: int) -> bool:
        """True when ``account`` may take a home slot here: in capacity,
        homed nowhere, and not already spilled into this store's extras
        (promotion would double-count the membership)."""
        return (
            0 <= account < self.capacity
            and self._dir.home[account] == -1
            and account not in self._extra_bal
        )

    def _put_extra(self, account: int, balance: float, nonce: int) -> None:
        if account not in self._extra_bal:
            self._count += 1
            if self._index is not None:
                self._index.add(self.shard_id, account)
        self._extra_bal[account] = balance
        self._extra_non[account] = nonce

    def __len__(self) -> int:
        return self._count

    def __contains__(self, account: int) -> bool:
        return self._is_home(account) or account in self._extra_bal

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        for account in np.flatnonzero(
            self._dir.home == self.shard_id
        ).tolist():
            yield account
        yield from self._extra_bal

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            return AccountState(
                balance=float(self._bal[cls][local]),
                nonce=int(self._non[cls][local]),
            )
        balance = self._extra_bal.get(account)
        if balance is None:
            return AccountState()
        return AccountState(balance=balance, nonce=self._extra_non[account])

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            self._bal[cls][local] = state.balance
            self._non[cls][local] = state.nonce
            return
        if self._can_claim(account):
            local = self._alloc_slot(account)
            self._bal[0][local] = state.balance
            self._non[0][local] = state.nonce
            return
        self._put_extra(account, state.balance, state.nonce)

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            balance = float(self._bal[cls][local]) + amount
            self._bal[cls][local] = balance
            return AccountState(balance=balance, nonce=int(self._non[cls][local]))
        if self._can_claim(account):
            local = self._alloc_slot(account)
            self._bal[0][local] = amount
            return AccountState(balance=amount, nonce=0)
        balance = self._extra_bal.get(account, 0.0) + amount
        nonce = self._extra_non.get(account, 0)
        self._put_extra(account, balance, nonce)
        return AccountState(balance=balance, nonce=nonce)

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            balance = float(self._bal[cls][local])
            if amount > balance:
                raise ChainError(f"insufficient balance: {balance} < {amount}")
            balance -= amount
            nonce = int(self._non[cls][local]) + 1
            self._bal[cls][local] = balance
            self._non[cls][local] = nonce
            return AccountState(balance=balance, nonce=nonce)
        if self._can_claim(account):
            if amount > 0.0:
                raise ChainError(f"insufficient balance: 0.0 < {amount}")
            local = self._alloc_slot(account)
            self._non[0][local] = 1
            return AccountState(balance=0.0, nonce=1)
        balance = self._extra_bal.get(account, 0.0)
        if amount > balance:
            raise ChainError(f"insufficient balance: {balance} < {amount}")
        balance -= amount
        nonce = self._extra_non.get(account, 0) + 1
        self._put_extra(account, balance, nonce)
        return AccountState(balance=balance, nonce=nonce)

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            state = AccountState(
                balance=float(self._bal[cls][local]),
                nonce=int(self._non[cls][local]),
            )
            self._free_slot(account)
            return state
        try:
            balance = self._extra_bal.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None
        self._count -= 1
        if self._index is not None:
            self._index.discard(self.shard_id, account)
        self._extra_aux.pop(account, None)
        return AccountState(balance=balance, nonce=self._extra_non.pop(account))

    # -- columnar bulk access (batched executor hot path) ----------------------

    def _fast_bulk_ok(self, accounts: np.ndarray) -> bool:
        """True when the pure-columnar bulk path applies.

        Multi-class schemas take the scalar paths: their directory
        entries carry the class in the high bits, so one fancy index
        into the base columns would be wrong.
        """
        return (
            not self._multiclass
            and not self._extra_bal
            and (
                len(accounts) == 0
                or (
                    int(accounts.min()) >= 0
                    and int(accounts.max()) < self.capacity
                )
            )
        )

    def balances_of(self, accounts: np.ndarray) -> np.ndarray:
        """Balances of ``accounts`` as an array (zero when never seen)."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            mine = home == self.shard_id
            if mine.all():
                return self._bal[0][self._dir.slot[accounts]]
            result = np.zeros(len(accounts), dtype=np.float64)
            if mine.any():
                result[mine] = self._bal[0][self._dir.slot[accounts[mine]]]
            return result
        return np.fromiter(
            (self.get(a).balance for a in accounts.tolist()),
            dtype=np.float64,
            count=len(accounts),
        )

    def write_back(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonce_bumps: np.ndarray,
    ) -> None:
        """Scatter updated balances (and nonce increments) back."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            new = home == -1
            if (new | (home == self.shard_id)).all():
                if new.any():
                    self._alloc_slots_bulk(np.unique(accounts[new]))
                slots = self._dir.slot[accounts]
                self._bal[0][slots] = balances
                np.add.at(self._non[0], slots, nonce_bumps)
                return
        for account, balance, bump in zip(
            accounts.tolist(), balances.tolist(), nonce_bumps.tolist()
        ):
            if self._is_home(account):
                cls, local = self._decode(int(self._dir.slot[account]))
                self._bal[cls][local] = balance
                self._non[cls][local] += bump
            elif self._can_claim(account):
                local = self._alloc_slot(account)
                self._bal[0][local] = balance
                self._non[0][local] = bump
            else:
                self._put_extra(
                    account,
                    balance,
                    self._extra_non.get(account, 0) + bump,
                )

    def credit_many(self, accounts: np.ndarray, amounts: np.ndarray) -> None:
        """Apply a stream of credits in order (settlement scatter)."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            new = home == -1
            if (new | (home == self.shard_id)).all():
                if new.any():
                    self._alloc_slots_bulk(np.unique(accounts[new]))
                # np.add.at applies duplicate indices sequentially,
                # matching the dict backend's in-order accumulation.
                np.add.at(self._bal[0], self._dir.slot[accounts], amounts)
                return
        for account, amount in zip(accounts.tolist(), amounts.tolist()):
            self.credit(account, float(amount))

    # -- bulk migration (batched reconfiguration hot path) ---------------------

    def take_many(
        self, accounts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Remove ``accounts`` (all resident here); return their state."""
        if self._fast_bulk_ok(accounts) and len(accounts):
            home = self._dir.home[accounts]
            if (home == self.shard_id).all():
                slots = self._dir.slot[accounts]
                balances = self._bal[0][slots].copy()
                nonces = self._non[0][slots].copy()
                self._release_locals_bulk(0, slots)
                self._dir.home[accounts] = -1
                self._count -= len(accounts)
                if self._index is not None:
                    self._index.discard_many(self.shard_id, accounts)
                return balances, nonces
        n = len(accounts)
        balances = np.empty(n, dtype=np.float64)
        nonces = np.empty(n, dtype=np.int64)
        for i, account in enumerate(accounts.tolist()):
            state = self.remove(account)
            balances[i] = state.balance
            nonces[i] = state.nonce
        return balances, nonces

    def put_many(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonces: np.ndarray,
    ) -> None:
        """Install state rows in bulk (the columnar twin of ``put``)."""
        if self._fast_bulk_ok(accounts):
            home = self._dir.home[accounts]
            new = home == -1
            if (new | (home == self.shard_id)).all():
                if new.any():
                    self._alloc_slots_bulk(np.unique(accounts[new]))
                slots = self._dir.slot[accounts]
                self._bal[0][slots] = balances
                self._non[0][slots] = nonces
                return
        for account, balance, nonce in zip(
            accounts.tolist(), balances.tolist(), nonces.tolist()
        ):
            if self._is_home(account):
                cls, local = self._decode(int(self._dir.slot[account]))
                self._bal[cls][local] = balance
                self._non[cls][local] = nonce
            elif self._can_claim(account):
                local = self._alloc_slot(account)
                self._bal[0][local] = balance
                self._non[0][local] = nonce
            else:
                self._put_extra(account, balance, int(nonce))

    # -- auxiliary payload words (opt-in multi-asset / storage state) -----------

    def aux_words_of(self, account: int) -> int:
        """Aux width of the account's current size class (0 when absent)."""
        if self._is_home(account):
            cls, _ = self._decode(int(self._dir.slot[account]))
            return self._classes[cls].aux_words
        payload = self._extra_aux.get(account)
        return 0 if payload is None else len(payload)

    def put_aux(self, account: int, values: Sequence[float]) -> None:
        """Attach aux payload words, promoting the size class as needed.

        The account must already be resident (aux is state *attached
        to* an account, it never creates one). Payloads are padded with
        zeros to the class width; accounts promote to the smallest
        covering class and never demote.
        """
        values = np.asarray(values, dtype=np.float64)
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            need = self._schema.class_for(len(values))
            if need > cls:
                local = self._promote(account, cls, local, need)
                cls = need
            aux = self._auxcol[cls]
            if aux is not None:
                aux[local, :] = 0.0
                aux[local, : len(values)] = values
            return
        if account in self._extra_bal:
            if len(values):
                self._extra_aux[account] = values.copy()
            else:
                self._extra_aux.pop(account, None)
            return
        raise ChainError(
            f"account {account} is not resident on shard {self.shard_id}"
        )

    def _promote(self, account: int, cls: int, local: int, need: int) -> int:
        """Re-slot ``account`` from class ``cls`` into class ``need``."""
        balance = float(self._bal[cls][local])
        nonce = int(self._non[cls][local])
        old_aux = self._auxcol[cls]
        payload = old_aux[local].copy() if old_aux is not None else None
        self._release_local(cls, local)
        new_local = self._alloc_local(need)
        self._owner[need][new_local] = account
        self._bal[need][new_local] = balance
        self._non[need][new_local] = nonce
        if payload is not None:
            self._auxcol[need][new_local, : len(payload)] = payload
        self._dir.slot[account] = self._encode(need, new_local)
        return new_local

    def aux_of(self, account: int) -> np.ndarray:
        """Aux payload padded to the account's class width (empty: none)."""
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            aux = self._auxcol[cls]
            if aux is None:
                return np.zeros(0, dtype=np.float64)
            return aux[local].copy()
        payload = self._extra_aux.get(account)
        if payload is None:
            return np.zeros(0, dtype=np.float64)
        return payload.copy()

    def take_aux(self, account: int) -> Optional[np.ndarray]:
        """Detach and return the aux payload (None when absent).

        For home residents the column row is left in place — the caller
        is about to free the slot (migration), which zeroes it.
        """
        if self._is_home(account):
            cls, local = self._decode(int(self._dir.slot[account]))
            aux = self._auxcol[cls]
            if aux is None:
                return None
            return aux[local].copy()
        return self._extra_aux.pop(account, None)

    # -- accounting, telemetry and compaction -----------------------------------

    def total_balance(self) -> float:
        """Sum of resident balances (float64 pairwise ``np.sum``).

        Freed slots are zeroed eagerly, so summing whole columns is
        exact for the integral-valued conservation suites.
        """
        dense = float(
            np.sum(
                np.array([np.sum(column, dtype=np.float64) for column in self._bal]),
                dtype=np.float64,
            )
        )
        if not self._extra_bal:
            return dense
        return math.fsum([dense, *self._extra_bal.values()])

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states.

        Aux payload words are deliberately excluded so every backend —
        and every schema — hashes identical balances/nonces to the same
        root.
        """
        resident = np.flatnonzero(self._dir.home == self.shard_id)
        encoded = self._dir.slot[resident]
        if not self._multiclass:
            balances = self._bal[0][encoded]
            nonces = self._non[0][encoded]
        else:
            classes = encoded >> _CLS_SHIFT
            locals_ = encoded & _LOCAL_MASK
            balances = np.empty(len(resident), dtype=np.float64)
            nonces = np.empty(len(resident), dtype=np.int64)
            for cls in range(len(self._classes)):
                mask = classes == cls
                if mask.any():
                    balances[mask] = self._bal[cls][locals_[mask]]
                    nonces[mask] = self._non[cls][locals_[mask]]
        items = [
            (int(a), float(b), int(n))
            for a, b, n in zip(
                resident.tolist(), balances.tolist(), nonces.tolist()
            )
        ]
        items.extend(
            (account, balance, self._extra_non[account])
            for account, balance in self._extra_bal.items()
        )
        return _state_root_digest(items)

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self) * STATE_RECORD_BYTES

    def column_nbytes(self) -> int:
        """Bytes held by this store's state columns (all classes)."""
        total = 0
        for cls in range(len(self._classes)):
            total += (
                self._bal[cls].nbytes
                + self._non[cls].nbytes
                + self._owner[cls].nbytes
            )
            aux = self._auxcol[cls]
            if aux is not None:
                total += aux.nbytes
        return int(total)

    def slack_slots(self) -> int:
        """Free slots across every arena of every class."""
        return sum(
            len(free_list)
            for per_class in self._arena_free
            for free_list in per_class
        )

    def arena_stats(self) -> Dict[str, float]:
        """Allocator telemetry: arena count, capacity, free/live slots."""
        arenas = sum(len(live) for live in self._arena_live)
        capacity_slots = arenas * ARENA_EXTENT_ROWS
        free_slots = self.slack_slots()
        return {
            "arenas": arenas,
            "capacity_slots": capacity_slots,
            "free_slots": free_slots,
            "live_slots": capacity_slots - free_slots,
        }

    def rehomeable_extras(self) -> int:
        """Spill-dict entries that :meth:`compact` could re-home now.

        Same contract as the dense reference — O(spill size), consumed
        by :meth:`StateRegistry.compact_stores` to trigger compaction
        for stranded spill entries below the slack threshold.
        """
        if not self._extra_bal:
            return 0
        return sum(
            1
            for account in self._extra_bal
            if 0 <= account < self.capacity
            and self._dir.home[account] == -1
        )

    def _rehome_extras(self) -> int:
        """Re-slot spilled accounts that may claim a home slot again.

        Same contract as the dense reference: entries that are in
        capacity and homed nowhere move from the fallback dict into
        fresh base-class slots (their aux payload follows); true
        off-home residents and beyond-capacity ids stay spilled.
        """
        if not self._extra_bal:
            return 0
        eligible = [
            account
            for account in self._extra_bal
            if 0 <= account < self.capacity
            and self._dir.home[account] == -1
        ]
        for account in eligible:
            balance = self._extra_bal.pop(account)
            nonce = self._extra_non.pop(account)
            payload = self._extra_aux.pop(account, None)
            self._count -= 1
            if self._index is not None:
                self._index.discard(self.shard_id, account)
            local = self._alloc_slot(account)
            self._bal[0][local] = balance
            self._non[0][local] = nonce
            if payload is not None and len(payload):
                self.put_aux(account, payload)
        return len(eligible)

    def compact(self) -> int:
        """Targeted arena compaction: re-slot sparse arenas, drop empty tails.

        Three bounded steps per size class:

        1. re-home eligible spill-dict entries (see
           :meth:`_rehome_extras`);
        2. move the live rows of *victim* arenas (occupancy strictly
           below ``compact_occupancy``) into free slots of denser
           arenas — non-victims first, then the fullest victims — via
           the owner map, so work is O(victim rows), not O(live rows);
        3. truncate trailing all-empty extents, which is where column
           bytes are actually returned.

        Interior empty arenas keep their slots on the free lists and
        are the first allocation targets (the heap is ordered by arena
        id). Returns the column bytes reclaimed; the physical bytes
        rewritten land in :attr:`last_compact_moved_bytes` for the
        recycle-policy bench.
        """
        before = self.column_nbytes()
        moved_bytes = 0
        self._rehome_extras()
        extent = ARENA_EXTENT_ROWS
        for cls in range(len(self._classes)):
            live = self._arena_live[cls]
            n_extents = len(live)
            if not n_extents:
                continue
            frees = self._arena_free[cls]
            threshold = self.compact_occupancy * extent
            victims = sorted(
                (a for a in range(n_extents) if 0 < live[a] < threshold),
                key=lambda a: (live[a], a),
            )
            if victims:
                dense_dests = [
                    a for a in range(n_extents) if live[a] >= threshold
                ]
                dest_seq = dense_dests + list(reversed(victims))
                row_bytes = self._classes[cls].row_nbytes
                owner = self._owner[cls]
                dest_index = 0
                for src in victims:
                    if live[src] <= 0:
                        continue
                    rows = (
                        np.flatnonzero(
                            owner[src * extent : (src + 1) * extent] >= 0
                        )
                        + src * extent
                    )
                    needed = len(rows)
                    dest_slots: List[int] = []
                    blocked = False
                    while needed and dest_index < len(dest_seq):
                        dest = dest_seq[dest_index]
                        if dest == src:
                            blocked = True
                            break
                        free_list = frees[dest]
                        if not free_list:
                            dest_index += 1
                            continue
                        take = min(len(free_list), needed)
                        dest_slots.extend(free_list[-take:])
                        del free_list[-take:]
                        live[dest] += take
                        needed -= take
                    n_moved = len(dest_slots)
                    if n_moved:
                        targets = np.array(dest_slots, dtype=np.int64)
                        sources = rows[:n_moved]
                        moved_accounts = owner[sources]
                        self._bal[cls][targets] = self._bal[cls][sources]
                        self._non[cls][targets] = self._non[cls][sources]
                        aux = self._auxcol[cls]
                        if aux is not None:
                            aux[targets] = aux[sources]
                        owner[targets] = moved_accounts
                        self._dir.slot[moved_accounts] = (
                            targets
                            if not self._multiclass
                            else (cls << _CLS_SHIFT) | targets
                        )
                        self._release_locals_bulk(cls, sources)
                        # _release_locals_bulk re-credits free lists but
                        # also re-decrements live; the rows moved rather
                        # than left, so only the source arena balances out.
                        moved_bytes += n_moved * row_bytes
                    if blocked:
                        break
            # Truncate trailing all-empty extents.
            keep = n_extents
            while keep and live[keep - 1] == 0:
                keep -= 1
            if keep < n_extents:
                size = keep * extent
                self._bal[cls] = self._bal[cls][:size].copy()
                self._non[cls] = self._non[cls][:size].copy()
                self._owner[cls] = self._owner[cls][:size].copy()
                aux = self._auxcol[cls]
                if aux is not None:
                    self._auxcol[cls] = aux[:size].copy()
                del frees[keep:]
                del live[keep:]
                heap = [a for a in range(keep) if frees[a]]
                heapq.heapify(heap)
                self._free_heap[cls] = heap
        self.last_compact_moved_bytes = moved_bytes
        return before - self.column_nbytes()


#: Any backend satisfies the store contract.
AnyShardStateStore = Union[
    ShardStateStore, DenseShardStateStore, ArenaShardStateStore
]


class StateRegistry:
    """All shards' state stores plus migration between them.

    ``backend`` selects the store implementation: ``"dict"`` (default,
    arbitrary ids), ``"dense"`` (size-classed
    :class:`ArenaShardStateStore` arenas behind a shared
    :class:`SlotDirectory` sized by ``n_accounts``, with a dict
    fallback for ids beyond that capacity) or ``"dense-ref"`` (the
    single-class first-fit :class:`DenseShardStateStore`, kept as the
    property-pinned reference allocator). All are observably
    identical. A :class:`ResidencyIndex` is maintained for every
    backend (multi-word bitmasks, so any ``k``) so :meth:`locate` is
    O(1); :meth:`locate_scan` keeps the O(k) scan as the equivalence
    reference. :meth:`compact_stores` compacts stores whose free slots
    grew past a slack threshold after heavy migration churn —
    whole-column re-slotting for ``"dense-ref"``, targeted sparse-arena
    re-slotting plus trailing-extent truncation for ``"dense"`` — and
    feeds the registry's compaction counters
    (:attr:`compaction_count`, :attr:`compacted_bytes_total`,
    :attr:`compact_moved_bytes_total`).

    ``schema`` (a :class:`ColumnSchema`) opts the arena backend into
    multi-class payloads; aux words travel with migrations through
    :meth:`migrate`/:meth:`migrate_batch` and stay out of state roots.
    """

    def __init__(
        self,
        k: int,
        backend: str = BACKEND_DICT,
        n_accounts: int = 0,
        schema: Optional[ColumnSchema] = None,
    ) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if backend not in STATE_BACKENDS:
            raise ConfigurationError(
                f"unknown state backend {backend!r}; "
                f"available: {', '.join(STATE_BACKENDS)}"
            )
        if n_accounts < 0:
            raise ValidationError(f"n_accounts must be >= 0, got {n_accounts}")
        if schema is not None and not isinstance(schema, ColumnSchema):
            raise ConfigurationError(
                f"schema must be a ColumnSchema, got {type(schema).__name__}"
            )
        self.k = k
        self.backend = backend
        self.n_accounts = int(n_accounts)
        self.schema = schema if schema is not None else ColumnSchema.base()
        self.compaction_count = 0
        self.compacted_bytes_total = 0
        self.compact_moved_bytes_total = 0
        self._index: Optional[ResidencyIndex] = ResidencyIndex(
            self.n_accounts, n_shards=k
        )
        self._directory: Optional[SlotDirectory] = None
        if backend == BACKEND_DENSE:
            self._directory = SlotDirectory(self.n_accounts)
            self.stores: Tuple[AnyShardStateStore, ...] = tuple(
                ArenaShardStateStore(
                    shard,
                    self.n_accounts,
                    directory=self._directory,
                    index=self._index,
                    schema=self.schema,
                )
                for shard in range(k)
            )
        elif backend == BACKEND_DENSE_REF:
            self._directory = SlotDirectory(self.n_accounts)
            self.stores = tuple(
                DenseShardStateStore(
                    shard,
                    self.n_accounts,
                    directory=self._directory,
                    index=self._index,
                )
                for shard in range(k)
            )
        else:
            self.stores = tuple(
                ShardStateStore(shard, index=self._index) for shard in range(k)
            )

    @property
    def residency_index(self) -> Optional[ResidencyIndex]:
        """The incremental account->shard index (multi-word, any k)."""
        return self._index

    def store_of(self, shard: int) -> AnyShardStateStore:
        if not 0 <= shard < self.k:
            raise ValidationError(f"shard {shard} out of range [0, {self.k})")
        return self.stores[shard]

    def locate(self, account: int) -> Optional[int]:
        """Shard currently holding ``account``'s state, or None.

        O(1) through the residency index; identical to
        :meth:`locate_scan` (the property suite pins it).
        """
        if self._index is not None:
            return self._index.get_shard(account)
        return self.locate_scan(account)

    def locate_scan(self, account: int) -> Optional[int]:
        """Reference O(k) locate: scan the stores in shard order."""
        for store in self.stores:
            if account in store:
                return store.shard_id
        return None

    def locate_many(self, accounts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`locate`; ``-1`` marks non-residents."""
        if self._index is not None:
            return self._index.shards_of(accounts)
        return np.array(
            [
                -1 if (shard := self.locate_scan(int(a))) is None else shard
                for a in np.asarray(accounts, dtype=np.int64).tolist()
            ],
            dtype=np.int64,
        )

    def migrate(self, account: int, from_shard: int, to_shard: int) -> int:
        """Move an account's state between shards; returns bytes moved.

        Accounts that were never touched have an implicit zero state, so
        migrating an unknown account is a no-op costing nothing. A
        request whose ``from_shard`` does not hold the account while
        some *other* shard does raises :class:`StateMigrationError` —
        silently dropping it would strand the balance on the wrong
        shard.
        """
        source = self.store_of(from_shard)
        target = self.store_of(to_shard)
        if account not in source:
            actual = self.locate(account)
            if actual is not None:
                raise StateMigrationError(
                    f"account {account} is resident on shard {actual}, "
                    f"not on migration source shard {from_shard}"
                )
            return 0
        aux = source.take_aux(account) if self.schema.has_aux else None
        target.put(account, source.remove(account))
        if aux is not None and len(aux):
            target.put_aux(account, aux)
        return STATE_RECORD_BYTES

    def migrate_batch(
        self, accounts: np.ndarray, to_shards: np.ndarray
    ) -> int:
        """Move many accounts to their target shards; returns bytes moved.

        The columnar twin of a ``locate`` + :meth:`migrate` loop:
        residency resolves through the index in one vectorised lookup,
        then state moves grouped per source shard (one bulk take each)
        and per target shard (one bulk put each). Accounts must be
        unique within the batch — the beacon's per-epoch commitment
        rounds guarantee that. Non-resident accounts and accounts
        already on their target are free no-ops, exactly like the
        scalar path.
        """
        accounts = np.asarray(accounts, dtype=np.int64)
        to_shards = np.asarray(to_shards, dtype=np.int64)
        if accounts.shape != to_shards.shape:
            raise ValidationError("accounts/to_shards length mismatch")
        if len(accounts) == 0:
            return 0
        if len(to_shards) and (
            int(to_shards.min()) < 0 or int(to_shards.max()) >= self.k
        ):
            raise ValidationError("target shard out of range in migration batch")
        current = self.locate_many(accounts)
        moving = (current >= 0) & (current != to_shards)
        if not moving.any():
            return 0
        acc = accounts[moving]
        src = current[moving]
        dst = to_shards[moving]

        aux_carry: Optional[Dict[int, Tuple[int, np.ndarray]]] = None
        if self.schema.has_aux:
            # Aux payloads ride along explicitly: the bulk take/put
            # columns below only carry balance + nonce.
            aux_carry = {}
            for account, source, target in zip(
                acc.tolist(), src.tolist(), dst.tolist()
            ):
                payload = self.store_of(int(source)).take_aux(int(account))
                if payload is not None and len(payload):
                    aux_carry[int(account)] = (int(target), payload)

        order = np.argsort(src, kind="stable")
        acc, src, dst = acc[order], src[order], dst[order]
        balances = np.empty(len(acc), dtype=np.float64)
        nonces = np.empty(len(acc), dtype=np.int64)
        boundaries = np.flatnonzero(np.diff(src) != 0) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(acc)]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            taken = self.store_of(int(src[start])).take_many(acc[start:stop])
            balances[start:stop], nonces[start:stop] = taken

        order = np.argsort(dst, kind="stable")
        acc, dst = acc[order], dst[order]
        balances, nonces = balances[order], nonces[order]
        boundaries = np.flatnonzero(np.diff(dst) != 0) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(acc)]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            self.store_of(int(dst[start])).put_many(
                acc[start:stop],
                balances[start:stop],
                nonces[start:stop],
            )
        if aux_carry:
            for account, (target, payload) in aux_carry.items():
                self.store_of(target).put_aux(account, payload)
        return len(acc) * STATE_RECORD_BYTES

    def compact_stores(self, min_slack: float = 0.5) -> int:
        """Compact every store whose vacated slots exceed the threshold.

        A store qualifies when its free list holds more than
        ``min_slack`` times its live population (so a freshly-settled
        store is never rebuilt for a handful of holes). Returns the
        total column bytes reclaimed. Dict stores are free no-ops.
        Typically driven per epoch by
        :class:`~repro.chain.epoch.EpochReconfigurator` after heavy
        migration churn.
        """
        if min_slack < 0:
            raise ValidationError(f"min_slack must be >= 0, got {min_slack}")
        reclaimed = 0
        for store in self.stores:
            slack = store.slack_slots()
            over_threshold = slack and slack > min_slack * max(1, len(store))
            # Stranded spill entries (in capacity, homed nowhere) are
            # re-homed by compact() but never grow the free list, so
            # they qualify a store independently of the slack check.
            rehomeable = getattr(store, "rehomeable_extras", lambda: 0)()
            if over_threshold or rehomeable:
                reclaimed += store.compact()
                self.compaction_count += 1
                self.compact_moved_bytes_total += getattr(
                    store, "last_compact_moved_bytes", 0
                )
        self.compacted_bytes_total += reclaimed
        return reclaimed

    def fragmentation_stats(self) -> Dict[str, float]:
        """Registry-wide allocator telemetry, aggregated over the stores.

        ``fragmentation`` is free slots over capacity slots,
        ``occupancy`` its complement weighted the same way; both are
        0.0 for backends without slot columns (dict) or before any
        column is allocated. ``arena_count`` counts arenas across all
        shards and size classes (0 outside the arena backend).
        """
        arenas = free_slots = capacity_slots = live_slots = 0
        for store in self.stores:
            stats = store.arena_stats()
            arenas += int(stats["arenas"])
            free_slots += int(stats["free_slots"])
            capacity_slots += int(stats["capacity_slots"])
            live_slots += int(stats["live_slots"])
        return {
            "fragmentation": free_slots / capacity_slots if capacity_slots else 0.0,
            "occupancy": live_slots / capacity_slots if capacity_slots else 0.0,
            "arena_count": arenas,
            "free_slots": free_slots,
            "capacity_slots": capacity_slots,
            "live_slots": live_slots,
        }

    def total_balance(self) -> float:
        """System-wide balance — invariant under execution + migration.

        Exactly-rounded accumulation (``math.fsum`` over per-store
        totals) so conservation checks stay tight at millions of
        accounts.
        """
        return math.fsum(store.total_balance() for store in self.stores)

    def state_memory_nbytes(self) -> int:
        """Bytes held in numpy state structures across the registry.

        Sums the per-shard state columns plus the shared slot directory
        and residency index — the figure the compaction memory test
        compares against the full-universe-columns layout.
        """
        total = sum(store.column_nbytes() for store in self.stores)
        if self._directory is not None:
            total += self._directory.nbytes()
        if self._index is not None:
            total += self._index.nbytes()
        return int(total)
