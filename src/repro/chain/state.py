"""Account state: balances, nonces, and per-shard state stores.

The allocation layer treats shards as transaction counters; this module
gives them actual state so the substrate can *execute* transfers. Each
shard keeps a :class:`ShardStateStore` over the accounts
``phi^{-1}(shard)``; epoch reconfiguration moves account state between
stores (the migration traffic the paper accounts for), and the
cross-shard executor (:mod:`repro.chain.crossshard`) debits and credits
across stores.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ChainError, ValidationError

#: Serialised size of one account state record (address, balance, nonce,
#: storage-root digest) — matches ACCOUNT_STATE_BYTES in repro.chain.epoch.
STATE_RECORD_BYTES = 128


@dataclass(frozen=True)
class AccountState:
    """Balance-and-nonce state of one account."""

    balance: float = 0.0
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError(f"balance must be >= 0, got {self.balance}")
        if self.nonce < 0:
            raise ValidationError(f"nonce must be >= 0, got {self.nonce}")

    def credited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` added to the balance."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        return replace(self, balance=self.balance + amount)

    def debited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` removed and the nonce bumped.

        Raises :class:`ChainError` when the balance cannot cover it.
        """
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if amount > self.balance:
            raise ChainError(
                f"insufficient balance: {self.balance} < {amount}"
            )
        return replace(self, balance=self.balance - amount, nonce=self.nonce + 1)


class ShardStateStore:
    """The state of all accounts resident on one shard.

    Internally object-free: balances and nonces live in two parallel
    scalar dicts so the batched executor's gather/scatter hot path never
    constructs :class:`AccountState` objects. ``get`` materialises one
    lazily for the object-friendly API.
    """

    def __init__(self, shard_id: int) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        self.shard_id = shard_id
        self._balances: Dict[int, float] = {}
        self._nonces: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._balances)

    def __contains__(self, account: int) -> bool:
        return account in self._balances

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        return iter(self._balances)

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        balance = self._balances.get(account)
        if balance is None:
            return AccountState()
        return AccountState(balance=balance, nonce=self._nonces[account])

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        self._balances[account] = state.balance
        self._nonces[account] = state.nonce

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        balance = self._balances.get(account, 0.0) + amount
        self._balances[account] = balance
        nonce = self._nonces.setdefault(account, 0)
        return AccountState(balance=balance, nonce=nonce)

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        balance = self._balances.get(account, 0.0)
        if amount > balance:
            raise ChainError(f"insufficient balance: {balance} < {amount}")
        balance -= amount
        nonce = self._nonces.get(account, 0) + 1
        self._balances[account] = balance
        self._nonces[account] = nonce
        return AccountState(balance=balance, nonce=nonce)

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        try:
            balance = self._balances.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None
        return AccountState(balance=balance, nonce=self._nonces.pop(account))

    # -- columnar bulk access (batched executor hot path) ----------------------

    def balances_of(self, accounts: np.ndarray) -> np.ndarray:
        """Balances of ``accounts`` as an array (zero when never seen)."""
        get = self._balances.get
        return np.fromiter(
            (get(a, 0.0) for a in accounts.tolist()),
            dtype=np.float64,
            count=len(accounts),
        )

    def write_back(
        self,
        accounts: np.ndarray,
        balances: np.ndarray,
        nonce_bumps: np.ndarray,
    ) -> None:
        """Scatter updated balances (and nonce increments) back.

        Accounts are created on first touch, exactly like the scalar
        credit/debit path.
        """
        bal = self._balances
        non = self._nonces
        get_nonce = non.get
        for account, balance, bump in zip(
            accounts.tolist(), balances.tolist(), nonce_bumps.tolist()
        ):
            bal[account] = balance
            non[account] = get_nonce(account, 0) + bump

    def credit_many(self, accounts: np.ndarray, amounts: np.ndarray) -> None:
        """Apply a stream of credits in order (settlement scatter)."""
        bal = self._balances
        non = self._nonces
        for account, amount in zip(accounts.tolist(), amounts.tolist()):
            bal[account] = bal.get(account, 0.0) + amount
            non.setdefault(account, 0)

    def total_balance(self) -> float:
        """Sum of all resident balances (conservation checks)."""
        return sum(self._balances.values())

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states."""
        hasher = hashlib.sha256()
        for account in sorted(self._balances):
            hasher.update(
                f"{account}:{self._balances[account]!r}:{self._nonces[account]}".encode(
                    "utf-8"
                )
            )
            hasher.update(b"\x00")
        return "0x" + hasher.hexdigest()

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self._balances) * STATE_RECORD_BYTES


class StateRegistry:
    """All shards' state stores plus migration between them."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.k = k
        self.stores: Tuple[ShardStateStore, ...] = tuple(
            ShardStateStore(shard) for shard in range(k)
        )

    def store_of(self, shard: int) -> ShardStateStore:
        if not 0 <= shard < self.k:
            raise ValidationError(f"shard {shard} out of range [0, {self.k})")
        return self.stores[shard]

    def locate(self, account: int) -> Optional[int]:
        """Shard currently holding ``account``'s state, or None."""
        for store in self.stores:
            if account in store:
                return store.shard_id
        return None

    def migrate(self, account: int, from_shard: int, to_shard: int) -> int:
        """Move an account's state between shards; returns bytes moved.

        Accounts that were never touched have an implicit zero state, so
        migrating an unknown account is a no-op costing nothing.
        """
        source = self.store_of(from_shard)
        target = self.store_of(to_shard)
        if account not in source:
            return 0
        target.put(account, source.remove(account))
        return STATE_RECORD_BYTES

    def total_balance(self) -> float:
        """System-wide balance — invariant under execution + migration."""
        return sum(store.total_balance() for store in self.stores)
