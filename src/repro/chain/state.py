"""Account state: balances, nonces, and per-shard state stores.

The allocation layer treats shards as transaction counters; this module
gives them actual state so the substrate can *execute* transfers. Each
shard keeps a :class:`ShardStateStore` over the accounts
``phi^{-1}(shard)``; epoch reconfiguration moves account state between
stores (the migration traffic the paper accounts for), and the
cross-shard executor (:mod:`repro.chain.crossshard`) debits and credits
across stores.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ChainError, ValidationError

#: Serialised size of one account state record (address, balance, nonce,
#: storage-root digest) — matches ACCOUNT_STATE_BYTES in repro.chain.epoch.
STATE_RECORD_BYTES = 128


@dataclass(frozen=True)
class AccountState:
    """Balance-and-nonce state of one account."""

    balance: float = 0.0
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError(f"balance must be >= 0, got {self.balance}")
        if self.nonce < 0:
            raise ValidationError(f"nonce must be >= 0, got {self.nonce}")

    def credited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` added to the balance."""
        if amount < 0:
            raise ValidationError(f"credit amount must be >= 0, got {amount}")
        return replace(self, balance=self.balance + amount)

    def debited(self, amount: float) -> "AccountState":
        """A copy with ``amount`` removed and the nonce bumped.

        Raises :class:`ChainError` when the balance cannot cover it.
        """
        if amount < 0:
            raise ValidationError(f"debit amount must be >= 0, got {amount}")
        if amount > self.balance:
            raise ChainError(
                f"insufficient balance: {self.balance} < {amount}"
            )
        return replace(self, balance=self.balance - amount, nonce=self.nonce + 1)


class ShardStateStore:
    """The state of all accounts resident on one shard."""

    def __init__(self, shard_id: int) -> None:
        if shard_id < 0:
            raise ValidationError(f"shard_id must be >= 0, got {shard_id}")
        self.shard_id = shard_id
        self._states: Dict[int, AccountState] = {}

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, account: int) -> bool:
        return account in self._states

    def accounts(self) -> Iterator[int]:
        """Resident account ids (unspecified order)."""
        return iter(self._states)

    def get(self, account: int) -> AccountState:
        """State of ``account``; a fresh zero state when never seen."""
        return self._states.get(account, AccountState())

    def put(self, account: int, state: AccountState) -> None:
        """Install ``state`` for ``account``."""
        if account < 0:
            raise ValidationError(f"account must be >= 0, got {account}")
        self._states[account] = state

    def credit(self, account: int, amount: float) -> AccountState:
        """Add funds (creating the account on first touch)."""
        state = self.get(account).credited(amount)
        self._states[account] = state
        return state

    def debit(self, account: int, amount: float) -> AccountState:
        """Remove funds; raises :class:`ChainError` when underfunded."""
        state = self.get(account).debited(amount)
        self._states[account] = state
        return state

    def remove(self, account: int) -> AccountState:
        """Remove and return an account's state (for migration)."""
        try:
            return self._states.pop(account)
        except KeyError:
            raise ChainError(
                f"account {account} is not resident on shard {self.shard_id}"
            ) from None

    def total_balance(self) -> float:
        """Sum of all resident balances (conservation checks)."""
        return sum(state.balance for state in self._states.values())

    def state_root(self) -> str:
        """Deterministic digest over the sorted account states."""
        hasher = hashlib.sha256()
        for account in sorted(self._states):
            state = self._states[account]
            hasher.update(
                f"{account}:{state.balance!r}:{state.nonce}".encode("utf-8")
            )
            hasher.update(b"\x00")
        return "0x" + hasher.hexdigest()

    def serialized_bytes(self) -> int:
        """Bytes a miner transfers to sync this shard's state."""
        return len(self._states) * STATE_RECORD_BYTES


class StateRegistry:
    """All shards' state stores plus migration between them."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        self.k = k
        self.stores: Tuple[ShardStateStore, ...] = tuple(
            ShardStateStore(shard) for shard in range(k)
        )

    def store_of(self, shard: int) -> ShardStateStore:
        if not 0 <= shard < self.k:
            raise ValidationError(f"shard {shard} out of range [0, {self.k})")
        return self.stores[shard]

    def locate(self, account: int) -> Optional[int]:
        """Shard currently holding ``account``'s state, or None."""
        for store in self.stores:
            if account in store:
                return store.shard_id
        return None

    def migrate(self, account: int, from_shard: int, to_shard: int) -> int:
        """Move an account's state between shards; returns bytes moved.

        Accounts that were never touched have an implicit zero state, so
        migrating an unknown account is a no-op costing nothing.
        """
        source = self.store_of(from_shard)
        target = self.store_of(to_shard)
        if account not in source:
            return 0
        target.put(account, source.remove(account))
        return STATE_RECORD_BYTES

    def total_balance(self) -> float:
        """System-wide balance — invariant under execution + migration."""
        return sum(store.total_balance() for store in self.stores)
