"""The composed ledger ``L = (S_1, ..., S_k, BC)`` (Section III-A-1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.chain.beacon import BatchCommitReport, BeaconChain, CommitReport
from repro.chain.crossshard import CrossShardExecutor, ExecutionReport
from repro.chain.epoch import EpochReconfigurator, ReconfigurationReport
from repro.chain.mapping import ShardMapping
from repro.chain.mempool import Mempool, classify_transactions, shard_workloads
from repro.chain.migration import MigrationRequest, MigrationRequestBatch
from repro.chain.miner import MinerPool
from repro.chain.params import ProtocolParams
from repro.chain.shard import ShardChain
from repro.chain.transaction import TransactionBatch
from repro.errors import SimulationError
from repro.util.rng import RngFactory


@dataclass
class EpochStats:
    """Per-epoch processing statistics produced by the ledger."""

    epoch: int
    total_transactions: int
    intra_shard: int
    cross_shard: int
    workloads: np.ndarray = field(repr=False)

    @property
    def cross_shard_ratio(self) -> float:
        """Fraction of transactions that were cross-shard."""
        if self.total_transactions == 0:
            return 0.0
        return self.cross_shard / self.total_transactions

    @property
    def intra_shard_ratio(self) -> float:
        """Fraction of transactions that stayed within one shard."""
        if self.total_transactions == 0:
            return 0.0
        return self.intra_shard / self.total_transactions


@dataclass(frozen=True)
class _ShardBlockSummary:
    """Payload stored in shard blocks: a compact commitment to the work.

    Keeping a summary (rather than every transaction object) keeps long
    simulations memory-friendly while still committing the chain to the
    epoch's content via the payload digest.
    """

    shard: int
    epoch: int
    intra_count: int
    cross_count: int


class Ledger:
    """``k`` shard chains + beacon chain + the shared mapping ``phi``."""

    def __init__(
        self,
        params: ProtocolParams,
        mapping: ShardMapping,
        miners_per_shard: int = 0,
        executor: Optional[CrossShardExecutor] = None,
        beacon: Optional[BeaconChain] = None,
        compact_slack: Optional[float] = None,
    ) -> None:
        if mapping.k != params.k:
            raise SimulationError(
                f"mapping has k={mapping.k} but params have k={params.k}"
            )
        if executor is not None and executor.mapping is not mapping:
            raise SimulationError(
                "executor must share the ledger's mapping object"
            )
        self.params = params
        self.mapping = mapping
        self.shards: List[ShardChain] = [ShardChain(i) for i in range(params.k)]
        # Callers that need a segment-spilled committed log pass their
        # own BeaconChain(spill_dir=...); the default stays in-memory.
        self.beacon = beacon if beacon is not None else BeaconChain()
        self.mempool = Mempool()
        self.executor = executor
        rng_factory = RngFactory(params.seed)
        self.miner_pool: Optional[MinerPool] = (
            MinerPool(params.k, miners_per_shard, rng_factory)
            if miners_per_shard > 0
            else None
        )
        # Reconfiguration announces committed MR batches over the
        # executor's message bus when receipts ride a simulated network.
        transport = executor.network_transport if executor is not None else None
        # ``compact_slack`` threads straight through to the epoch
        # reconfigurator: when set, every reconfiguration ends with a
        # slack-gated state-store compaction pass.
        self.reconfigurator = EpochReconfigurator(
            self.beacon,
            self.miner_pool,
            executor,
            compact_slack=compact_slack,
            bus=transport.bus if transport is not None else None,
        )
        self._epoch = 0
        self._total_committed = 0

    @property
    def epoch(self) -> int:
        """Index of the next epoch to be processed."""
        return self._epoch

    @property
    def total_committed_transactions(self) -> int:
        """``|T|`` committed so far across all shards."""
        return self._total_committed

    # -- transaction commitment (per epoch) ------------------------------------

    def process_epoch(self, batch: TransactionBatch) -> EpochStats:
        """Commit one epoch's transactions under the current ``phi``.

        Classifies each transaction as intra/cross-shard, extends every
        shard chain with a block committing to its share of the work, and
        returns the epoch statistics (metrics are computed against the
        allocation from the *previous* reconfiguration, as in the paper).
        """
        max_id = batch.max_account_id()
        if max_id >= self.mapping.n_accounts:
            raise SimulationError(
                f"batch references account {max_id} but mapping only covers "
                f"{self.mapping.n_accounts} accounts; grow the mapping first"
            )
        sender_shards, receiver_shards, is_cross = classify_transactions(
            batch, self.mapping
        )
        k = self.params.k
        intra_by_shard = np.bincount(sender_shards[~is_cross], minlength=k)
        cross_by_shard = np.bincount(
            sender_shards[is_cross], minlength=k
        ) + np.bincount(receiver_shards[is_cross], minlength=k)

        for shard_id, chain in enumerate(self.shards):
            summary = _ShardBlockSummary(
                shard=shard_id,
                epoch=self._epoch,
                intra_count=int(intra_by_shard[shard_id]),
                cross_count=int(cross_by_shard[shard_id]),
            )
            chain.append_block([summary], epoch=self._epoch)

        workloads = shard_workloads(batch, self.mapping, self.params.eta)
        stats = EpochStats(
            epoch=self._epoch,
            total_transactions=len(batch),
            intra_shard=int((~is_cross).sum()),
            cross_shard=int(is_cross.sum()),
            workloads=workloads,
        )
        self._total_committed += len(batch)
        return stats

    def execute_epoch(
        self, batch: TransactionBatch, amount_per_tx: float = 1.0
    ) -> List[ExecutionReport]:
        """Run the epoch's transfers through the cross-shard executor.

        The batch flows mempool -> executor entirely columnar (the
        batched two-phase committer); requires an ``executor`` at
        construction. Amounts come from the batch's ``values`` column
        when present.
        """
        if self.executor is None:
            raise SimulationError(
                "this ledger was built without a cross-shard executor"
            )
        return self.executor.execute_batch(batch, amount_per_tx=amount_per_tx)

    # -- migration & reconfiguration ----------------------------------------------

    def submit_migrations(self, requests: Sequence[MigrationRequest]) -> None:
        """Forward client migration requests to the beacon chain."""
        self.beacon.submit_many(requests)

    def submit_migration_batch(self, batch: MigrationRequestBatch) -> None:
        """Forward a columnar batch of migration requests to the beacon."""
        self.beacon.submit_batch(batch)

    def commit_migrations(
        self, capacity: Optional[int]
    ) -> Union[CommitReport, BatchCommitReport]:
        """Commit this epoch's MRs on the beacon chain (capacity-capped).

        Batch-submitted rounds return a
        :class:`~repro.chain.beacon.BatchCommitReport` (columnar, lazy
        object views); scalar rounds the classic :class:`CommitReport`.
        """
        return self.beacon.commit_epoch(
            epoch=self._epoch, capacity=capacity, mapping=self.mapping
        )

    def reconfigure(self) -> ReconfigurationReport:
        """Run epoch reconfiguration and advance to the next epoch."""
        report = self.reconfigurator.run(self._epoch, self.mapping)
        self._epoch += 1
        return report

    def grow_accounts(self, n_accounts: int, fill_shards: np.ndarray) -> None:
        """Extend ``phi`` when new accounts join the system."""
        self.mapping.grow(n_accounts, fill_shards)
