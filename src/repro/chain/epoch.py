"""Epoch reconfiguration (Section III-B-1).

Every ``tau`` beacon blocks the system reconfigures:

1. **Beacon sync** — each miner pulls the beacon blocks committed during
   the previous epoch and updates its locally stored mapping ``phi``.
2. **Reshuffle + state sync** — miners are reshuffled across shards; each
   moved miner synchronises the state of the accounts ``phi^{-1}(j)`` of
   its new shard ``j``. Account migration rides the same synchronisation,
   so Mosaic adds no extra communication round (Section III-B-2).

:class:`EpochReconfigurator` performs those steps against the substrate
objects and reports the communication volume involved, which feeds the
efficiency comparison of Table VI / Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.chain.beacon import BeaconChain, apply_batch_to_mapping, mr_announcement_bytes
from repro.chain.mapping import ShardMapping
from repro.chain.miner import MinerPool, ReshuffleReport
from repro.chain.netsim import BEACON_SHARD, MSG_BEACON_ANNOUNCE, MessageBus
from repro.chain.network import MR_RECORD_BYTES
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.crossshard import CrossShardExecutor

#: Bytes we charge to transfer one account's state between shards
#: (address, balance, nonce, storage-root digest).
ACCOUNT_STATE_BYTES = 128


@dataclass
class ReconfigurationReport:
    """What one epoch reconfiguration did and what it cost."""

    epoch: int
    migrations_applied: int
    beacon_blocks_synced: int
    beacon_sync_bytes: float
    reshuffle: Optional[ReshuffleReport]
    state_sync_bytes: float
    migration_extra_bytes: float = 0.0
    #: Actual account-state bytes moved between shard stores when the
    #: reconfigurator drives a cross-shard executor (0 without one).
    state_moved_bytes: float = 0.0
    #: Column bytes reclaimed by post-migration store compaction
    #: (0 unless the reconfigurator was built with a compact threshold).
    compacted_bytes: float = 0.0

    @property
    def total_communication_bytes(self) -> float:
        """All bytes moved during this reconfiguration."""
        return (
            self.beacon_sync_bytes
            + self.state_sync_bytes
            + self.migration_extra_bytes
        )


class EpochReconfigurator:
    """Drives epoch reconfiguration against the chain substrate."""

    def __init__(
        self,
        beacon: BeaconChain,
        miner_pool: Optional[MinerPool] = None,
        executor: Optional["CrossShardExecutor"] = None,
        batched: bool = True,
        compact_slack: Optional[float] = None,
        bus: Optional[MessageBus] = None,
    ) -> None:
        if compact_slack is not None and compact_slack < 0:
            raise SimulationError(
                f"compact_slack must be >= 0, got {compact_slack}"
            )
        self._beacon = beacon
        self._miner_pool = miner_pool
        self._executor = executor
        #: When the substrate routes messages through the simulated
        #: network, each reconfiguration announces the epoch's committed
        #: MR batches to every shard over this bus (the beacon sync the
        #: analytic model only charges bytes for).
        self._bus = bus
        self._synced_height = 0
        #: ``batched=False`` selects the per-request reference path
        #: (same observable behaviour, used by the equivalence tests).
        self.batched = batched
        #: When set, each reconfiguration ends with a dense-store
        #: compaction pass: any store whose vacated slots exceed
        #: ``compact_slack`` x its live population is re-slotted so
        #: migration churn cannot grow columns without bound. ``None``
        #: (default) never compacts — state layout is untouched.
        self.compact_slack = compact_slack

    @property
    def synced_height(self) -> int:
        """Beacon height up to which miners have synchronised."""
        return self._synced_height

    def run(
        self,
        epoch: int,
        mapping: ShardMapping,
        account_state_bytes: float = ACCOUNT_STATE_BYTES,
    ) -> ReconfigurationReport:
        """Run one reconfiguration: sync beacon, apply MRs, reshuffle.

        ``mapping`` is updated in place, exactly as each miner updates its
        local ``phi``. The report separates the beacon-sync bytes (new in
        Mosaic, bounded by MR volume) from the state-sync bytes that
        conventional reshuffling already pays, plus the extra state bytes
        for migrated accounts.
        """
        if epoch < 0:
            raise SimulationError(f"epoch must be >= 0, got {epoch}")

        new_blocks = len(self._beacon) - self._synced_height
        if new_blocks < 0:
            raise SimulationError("beacon chain shrank; invalid state")
        synced_from = self._synced_height
        self._synced_height = len(self._beacon)

        # Account state follows the allocation: when the reconfigurator
        # drives an executor, the same committed MRs move balances
        # between shard stores, riding the state-sync phase as in
        # Section III-B-2. The batched path never materialises request
        # objects: each block's committed batch applies as grouped
        # gather/scatter moves (per source, then per target shard);
        # blocks apply in order because an account can legitimately
        # move in two different epochs' blocks.
        state_moved_bytes = 0.0
        if self.batched:
            batches = self._beacon.batches_since(synced_from)
            request_count = sum(len(b) for b in batches)
            applied = 0
            for batch in batches:
                applied += apply_batch_to_mapping(batch, mapping)
                if self._executor is not None:
                    in_universe = batch.accounts < mapping.n_accounts
                    state_moved_bytes += float(
                        self._executor.apply_migration_batch(
                            batch.accounts[in_universe],
                            batch.to_shards[in_universe],
                        )
                    )
        else:
            requests = self._beacon.requests_since(synced_from)
            request_count = len(requests)
            applied = 0
            for request in requests:
                if request.account < mapping.n_accounts:
                    mapping.assign(request.account, request.to_shard)
                    applied += 1
            if self._executor is not None and requests:
                accounts = np.array(
                    [r.account for r in requests], dtype=np.int64
                )
                to_shards = np.array(
                    [r.to_shard for r in requests], dtype=np.int64
                )
                in_universe = accounts < mapping.n_accounts
                state_moved_bytes = float(
                    self._executor.apply_migrations(
                        accounts[in_universe], to_shards[in_universe]
                    )
                )
        beacon_sync_bytes = float(request_count * MR_RECORD_BYTES)
        if self._bus is not None and request_count:
            announcement = mr_announcement_bytes(request_count)
            at_block = self._bus.clock
            for shard in range(mapping.k):
                self._bus.send(
                    MSG_BEACON_ANNOUNCE,
                    src=BEACON_SHARD,
                    dst=shard,
                    block=at_block,
                    size_bytes=announcement,
                )

        reshuffle_report: Optional[ReshuffleReport] = None
        state_sync_bytes = 0.0
        if self._miner_pool is not None:
            reshuffle_report = self._miner_pool.reshuffle(epoch)
            # Every moved miner downloads the state of its new shard. We
            # charge the average shard state size per moved miner.
            if mapping.n_accounts and self._miner_pool.k:
                avg_shard_accounts = mapping.n_accounts / self._miner_pool.k
                state_sync_bytes = (
                    reshuffle_report.moved_count
                    * avg_shard_accounts
                    * account_state_bytes
                )

        # Migrated accounts move state between shards once each. Miners
        # that did not move still fetch migrated-in account state; this is
        # the only migration-specific state traffic.
        migration_extra_bytes = float(applied * account_state_bytes)

        compacted_bytes = 0.0
        if self.compact_slack is not None and self._executor is not None:
            compacted_bytes = float(
                self._executor.registry.compact_stores(self.compact_slack)
            )

        return ReconfigurationReport(
            epoch=epoch,
            migrations_applied=applied,
            beacon_blocks_synced=new_blocks,
            beacon_sync_bytes=beacon_sync_bytes,
            reshuffle=reshuffle_report,
            state_sync_bytes=state_sync_bytes,
            migration_extra_bytes=migration_extra_bytes,
            state_moved_bytes=state_moved_bytes,
            compacted_bytes=compacted_bytes,
        )
