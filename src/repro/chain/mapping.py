"""The account-shard mapping ``phi`` (Definition 1 in the paper).

``ShardMapping`` maps every account id in ``range(n_accounts)`` to a shard
id in ``range(k)``. Because it is stored as one dense numpy array, the
two invariants of Definition 1 hold by construction:

* **Uniqueness** — each account has exactly one shard (one array cell);
* **Completeness** — every account has a shard (no cell is unset; cells
  are initialised before use and `validate()` rejects out-of-range ids).

The mapping additionally supports growing when new accounts appear, bulk
migration application, and inverse lookups ``phi^{-1}(i)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MappingError, UnknownAccountError
from repro.util.validation import check_type

UNASSIGNED = -1


class ShardMapping:
    """Dense account-id -> shard-id mapping with Definition-1 invariants."""

    __slots__ = ("_shard_of", "_k")

    def __init__(self, shard_of: np.ndarray, k: int) -> None:
        shard_of = np.asarray(shard_of, dtype=np.int64)
        if shard_of.ndim != 1:
            raise MappingError("shard_of must be a 1-D array")
        if k < 1:
            raise MappingError(f"k must be >= 1, got {k}")
        if len(shard_of) and (shard_of.min() < 0 or shard_of.max() >= k):
            raise MappingError(
                f"shard ids must lie in [0, {k}), got range "
                f"[{shard_of.min()}, {shard_of.max()}]"
            )
        self._shard_of = shard_of
        self._k = int(k)

    # -- constructors ------------------------------------------------------

    @classmethod
    def uniform_random(
        cls, n_accounts: int, k: int, rng: np.random.Generator
    ) -> "ShardMapping":
        """Uniformly random allocation (used to seed tests/baselines)."""
        return cls(rng.integers(0, k, size=n_accounts, dtype=np.int64), k)

    @classmethod
    def from_assignment(cls, assignment: Sequence[int], k: int) -> "ShardMapping":
        """Build from any integer sequence of per-account shard ids."""
        return cls(np.asarray(list(assignment), dtype=np.int64), k)

    @classmethod
    def constant(cls, n_accounts: int, k: int, shard: int = 0) -> "ShardMapping":
        """All accounts on one shard (degenerate baseline / k=1 model)."""
        if not 0 <= shard < k:
            raise MappingError(f"shard {shard} out of range [0, {k})")
        return cls(np.full(n_accounts, shard, dtype=np.int64), k)

    # -- basic accessors ---------------------------------------------------

    @property
    def k(self) -> int:
        """Number of shards."""
        return self._k

    @property
    def n_accounts(self) -> int:
        """Number of mapped accounts (ids cover ``range(n_accounts)``)."""
        return len(self._shard_of)

    def __len__(self) -> int:
        return len(self._shard_of)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardMapping):
            return NotImplemented
        return self._k == other._k and np.array_equal(
            self._shard_of, other._shard_of
        )

    def shard_of(self, account_id: int) -> int:
        """Return ``phi(account_id)``."""
        if not 0 <= account_id < len(self._shard_of):
            raise UnknownAccountError(account_id)
        return int(self._shard_of[account_id])

    def shards_of(self, account_ids: np.ndarray) -> np.ndarray:
        """Vectorised ``phi`` lookup for an array of account ids."""
        ids = np.asarray(account_ids, dtype=np.int64)
        if len(ids) and (ids.min() < 0 or ids.max() >= len(self._shard_of)):
            raise UnknownAccountError(int(ids.max()))
        return self._shard_of[ids]

    def as_array(self) -> np.ndarray:
        """Read-only view of the underlying assignment array."""
        view = self._shard_of.view()
        view.flags.writeable = False
        return view

    # -- inverse views -----------------------------------------------------

    def accounts_in(self, shard: int) -> np.ndarray:
        """Return ``phi^{-1}(shard)`` as a sorted id array."""
        if not 0 <= shard < self._k:
            raise MappingError(f"shard {shard} out of range [0, {self._k})")
        return np.flatnonzero(self._shard_of == shard)

    def shard_sizes(self) -> np.ndarray:
        """Number of accounts per shard, length ``k``."""
        return np.bincount(self._shard_of, minlength=self._k)

    def partition(self) -> List[np.ndarray]:
        """The tuple ``{A_1, ..., A_k}`` as a list of id arrays."""
        order = np.argsort(self._shard_of, kind="stable")
        sizes = self.shard_sizes()
        boundaries = np.cumsum(sizes)[:-1]
        return list(np.split(order, boundaries))

    # -- mutation ----------------------------------------------------------

    def copy(self) -> "ShardMapping":
        """Deep copy (mutating the copy leaves the original untouched)."""
        return ShardMapping(self._shard_of.copy(), self._k)

    def assign(self, account_id: int, shard: int) -> None:
        """Set ``phi(account_id) = shard`` in place."""
        if not 0 <= shard < self._k:
            raise MappingError(f"shard {shard} out of range [0, {self._k})")
        if not 0 <= account_id < len(self._shard_of):
            raise UnknownAccountError(account_id)
        self._shard_of[account_id] = shard

    def assign_many(self, account_ids: np.ndarray, shards: np.ndarray) -> None:
        """Vectorised in-place assignment of several accounts."""
        ids = np.asarray(account_ids, dtype=np.int64)
        new_shards = np.asarray(shards, dtype=np.int64)
        if ids.shape != new_shards.shape:
            raise MappingError("account_ids and shards must have equal shape")
        if len(ids) == 0:
            return
        if ids.min() < 0 or ids.max() >= len(self._shard_of):
            raise UnknownAccountError(int(ids.max()))
        if new_shards.min() < 0 or new_shards.max() >= self._k:
            raise MappingError("shard id out of range in bulk assignment")
        self._shard_of[ids] = new_shards

    def grow(self, n_accounts: int, fill_shards: Optional[np.ndarray] = None) -> None:
        """Extend the mapping to cover ``n_accounts`` accounts.

        New accounts must be given shards via ``fill_shards`` (length =
        number of added accounts); completeness forbids unassigned cells.
        """
        added = n_accounts - len(self._shard_of)
        if added < 0:
            raise MappingError(
                f"cannot shrink mapping from {len(self._shard_of)} to {n_accounts}"
            )
        if added == 0:
            return
        if fill_shards is None:
            raise MappingError(
                f"growing by {added} accounts requires fill_shards (completeness)"
            )
        fill = np.asarray(fill_shards, dtype=np.int64)
        if fill.shape != (added,):
            raise MappingError(
                f"fill_shards must have shape ({added},), got {fill.shape}"
            )
        if len(fill) and (fill.min() < 0 or fill.max() >= self._k):
            raise MappingError("fill shard id out of range")
        self._shard_of = np.concatenate([self._shard_of, fill])

    # -- validation & diffing ----------------------------------------------

    def validate(self) -> None:
        """Re-check Definition 1; raises :class:`MappingError` on violation."""
        if len(self._shard_of) == 0:
            return
        if self._shard_of.min() < 0 or self._shard_of.max() >= self._k:
            raise MappingError("mapping contains out-of-range shard ids")

    def diff(self, other: "ShardMapping") -> np.ndarray:
        """Account ids whose shard differs between ``self`` and ``other``."""
        if self._k != other._k or len(self) != len(other):
            raise MappingError("cannot diff mappings of different shape")
        return np.flatnonzero(self._shard_of != other._shard_of)

    def migration_pairs(self, other: "ShardMapping") -> List[Tuple[int, int, int]]:
        """(account, from_shard, to_shard) for all moves from self to other."""
        moved = self.diff(other)
        return [
            (int(a), int(self._shard_of[a]), int(other._shard_of[a])) for a in moved
        ]

    def __repr__(self) -> str:
        return f"ShardMapping(n_accounts={len(self)}, k={self._k})"
