"""Sharded-blockchain substrate.

This subpackage implements the blockchain model from Section III-A of the
paper: ``k`` shard chains plus one beacon chain, an account-shard mapping
``phi`` (Definition 1), miners with Elastico-style periodic reshuffling,
the mempool, and the epoch-reconfiguration procedure that applies
client-proposed account migrations.
"""

from repro.chain.params import ProtocolParams
from repro.chain.account import Address, AccountRegistry, random_address
from repro.chain.transaction import Transaction, TransactionBatch
from repro.chain.block import Block, BlockHeader, compute_block_hash, GENESIS_HASH
from repro.chain.mapping import ShardMapping
from repro.chain.mempool import Mempool
from repro.chain.shard import ShardChain
from repro.chain.beacon import BatchCommitReport, BeaconChain, CommitReport
from repro.chain.segments import DEFAULT_SEGMENT_ROWS, SegmentedCommitLog
from repro.chain.migration import MigrationRequest, MigrationRequestBatch
from repro.chain.miner import Miner, MinerPool, ReshuffleReport
from repro.chain.epoch import EpochReconfigurator, ReconfigurationReport
from repro.chain.ledger import Ledger, EpochStats
from repro.chain.network import OverheadModel, OverheadEstimate, TX_RECORD_BYTES
from repro.chain.netsim import (
    NETWORK_IDEAL,
    NETWORK_SPEC_NAMES,
    LinkOutage,
    MessageBus,
    NetworkModel,
    NetworkSpec,
    Partition,
    ReceiptTransport,
    RetryPolicy,
    network_spec,
)
from repro.chain.state import (
    AccountState,
    DenseShardStateStore,
    ResidencyIndex,
    ShardStateStore,
    SlotDirectory,
    StateRegistry,
)
from repro.chain.receipts import ReceiptBatch, ReceiptLedger
from repro.chain.crossshard import CrossShardExecutor, Receipt, ExecutionReport
from repro.chain.economics import (
    MigrationFeeSchedule,
    flooding_attack_cost,
    simulate_flooding,
)

__all__ = [
    "ProtocolParams",
    "Address",
    "AccountRegistry",
    "random_address",
    "Transaction",
    "TransactionBatch",
    "Block",
    "BlockHeader",
    "compute_block_hash",
    "GENESIS_HASH",
    "ShardMapping",
    "Mempool",
    "ShardChain",
    "BatchCommitReport",
    "BeaconChain",
    "CommitReport",
    "SegmentedCommitLog",
    "DEFAULT_SEGMENT_ROWS",
    "MigrationRequest",
    "MigrationRequestBatch",
    "Miner",
    "MinerPool",
    "ReshuffleReport",
    "EpochReconfigurator",
    "ReconfigurationReport",
    "Ledger",
    "EpochStats",
    "OverheadModel",
    "OverheadEstimate",
    "TX_RECORD_BYTES",
    "NETWORK_IDEAL",
    "NETWORK_SPEC_NAMES",
    "LinkOutage",
    "MessageBus",
    "NetworkModel",
    "NetworkSpec",
    "Partition",
    "ReceiptTransport",
    "RetryPolicy",
    "network_spec",
    "AccountState",
    "DenseShardStateStore",
    "ResidencyIndex",
    "ShardStateStore",
    "SlotDirectory",
    "StateRegistry",
    "CrossShardExecutor",
    "Receipt",
    "ReceiptBatch",
    "ReceiptLedger",
    "ExecutionReport",
    "MigrationFeeSchedule",
    "flooding_attack_cost",
    "simulate_flooding",
]
