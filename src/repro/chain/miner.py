"""Miners and Elastico-style periodic reshuffling.

Permissionless sharding protocols periodically reshuffle miners across
shards so malicious miners cannot camp in one shard (Section II-A). The
reshuffle here is a seeded uniform permutation that keeps committee sizes
balanced, and the pool reports which miners changed shard — those miners
must synchronise the state of their new shard, which is exactly the
synchronisation phase Mosaic piggybacks account migration onto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ValidationError
from repro.util.rng import RngFactory


@dataclass
class Miner:
    """A consensus participant assigned to one shard (or the beacon chain)."""

    miner_id: int
    shard: int

    BEACON = -1  # sentinel shard id for beacon-chain miners

    def __post_init__(self) -> None:
        if self.miner_id < 0:
            raise ValidationError(f"miner_id must be >= 0, got {self.miner_id}")
        if self.shard < Miner.BEACON:
            raise ValidationError(f"invalid shard {self.shard}")

    @property
    def on_beacon(self) -> bool:
        """True when this miner maintains the beacon chain."""
        return self.shard == Miner.BEACON


@dataclass
class ReshuffleReport:
    """Summary of one epoch's miner reshuffle."""

    epoch: int
    moved_miners: List[int] = field(default_factory=list)
    assignment: Dict[int, int] = field(default_factory=dict)

    @property
    def moved_count(self) -> int:
        return len(self.moved_miners)


class MinerPool:
    """The miner set ``M`` partitioned into per-shard committees + beacon.

    ``miners_per_shard`` miners serve each of the ``k`` shards and one
    additional committee of the same size serves the beacon chain,
    mirroring the paper's assumption that the beacon chain runs the same
    consensus as a shard.
    """

    def __init__(
        self,
        k: int,
        miners_per_shard: int,
        rng_factory: RngFactory,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if miners_per_shard < 1:
            raise ConfigurationError(
                f"miners_per_shard must be >= 1, got {miners_per_shard}"
            )
        self.k = k
        self.miners_per_shard = miners_per_shard
        self._rng_factory = rng_factory
        total = (k + 1) * miners_per_shard
        self._miners: List[Miner] = []
        for miner_id in range(total):
            shard = miner_id // miners_per_shard
            shard = Miner.BEACON if shard == k else shard
            self._miners.append(Miner(miner_id=miner_id, shard=shard))

    def __len__(self) -> int:
        return len(self._miners)

    @property
    def miners(self) -> Sequence[Miner]:
        """Read-only view of all miners."""
        return tuple(self._miners)

    def committee(self, shard: int) -> List[Miner]:
        """Miners currently assigned to ``shard`` (or ``Miner.BEACON``)."""
        return [m for m in self._miners if m.shard == shard]

    def committee_sizes(self) -> Dict[int, int]:
        """Committee size per shard id (including the beacon at -1)."""
        sizes: Dict[int, int] = {Miner.BEACON: 0}
        for shard in range(self.k):
            sizes[shard] = 0
        for miner in self._miners:
            sizes[miner.shard] += 1
        return sizes

    def reshuffle(self, epoch: int) -> ReshuffleReport:
        """Randomly permute miners across shards, keeping sizes balanced.

        The permutation is derived from the pool's RNG factory and the
        epoch index, so every miner computes the same assignment locally
        (the paper's protocols derive this from a shared randomness
        beacon).
        """
        rng = self._rng_factory.generator(f"miner-reshuffle-{epoch}")
        order = rng.permutation(len(self._miners))
        report = ReshuffleReport(epoch=epoch)
        for slot, miner_index in enumerate(order):
            shard = slot // self.miners_per_shard
            shard = Miner.BEACON if shard == self.k else shard
            miner = self._miners[int(miner_index)]
            if miner.shard != shard:
                report.moved_miners.append(miner.miner_id)
            miner.shard = shard
            report.assignment[miner.miner_id] = shard
        return report
