"""Miners and Elastico-style periodic reshuffling.

Permissionless sharding protocols periodically reshuffle miners across
shards so malicious miners cannot camp in one shard (Section II-A). The
reshuffle here is a seeded uniform permutation that keeps committee sizes
balanced, and the pool reports which miners changed shard — those miners
must synchronise the state of their new shard, which is exactly the
synchronisation phase Mosaic piggybacks account migration onto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, ValidationError
from repro.util.rng import RngFactory


@dataclass
class Miner:
    """A consensus participant assigned to one shard (or the beacon chain)."""

    miner_id: int
    shard: int

    BEACON = -1  # sentinel shard id for beacon-chain miners

    def __post_init__(self) -> None:
        if self.miner_id < 0:
            raise ValidationError(f"miner_id must be >= 0, got {self.miner_id}")
        if self.shard < Miner.BEACON:
            raise ValidationError(f"invalid shard {self.shard}")

    @property
    def on_beacon(self) -> bool:
        """True when this miner maintains the beacon chain."""
        return self.shard == Miner.BEACON


@dataclass
class ReshuffleReport:
    """Summary of one epoch's miner reshuffle."""

    epoch: int
    moved_miners: List[int] = field(default_factory=list)
    assignment: Dict[int, int] = field(default_factory=dict)

    @property
    def moved_count(self) -> int:
        return len(self.moved_miners)


class MinerPool:
    """The miner set ``M`` partitioned into per-shard committees + beacon.

    ``miners_per_shard`` miners serve each of the ``k`` shards and one
    additional committee of the same size serves the beacon chain,
    mirroring the paper's assumption that the beacon chain runs the same
    consensus as a shard.
    """

    def __init__(
        self,
        k: int,
        miners_per_shard: int,
        rng_factory: RngFactory,
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if miners_per_shard < 1:
            raise ConfigurationError(
                f"miners_per_shard must be >= 1, got {miners_per_shard}"
            )
        self.k = k
        self.miners_per_shard = miners_per_shard
        self._rng_factory = rng_factory
        total = (k + 1) * miners_per_shard
        # Columnar assignment: shard per miner id. The slot grid maps
        # slot -> shard with the beacon committee (k) remapped to -1;
        # Miner objects are materialised lazily for the object API.
        self._shards = self._slot_shards(np.arange(total))

    def _slot_shards(self, slots: np.ndarray) -> np.ndarray:
        shards = slots // self.miners_per_shard
        return np.where(shards == self.k, Miner.BEACON, shards)

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def miners(self) -> Sequence[Miner]:
        """Read-only object view of all miners (materialised lazily)."""
        return tuple(
            Miner(miner_id=miner_id, shard=shard)
            for miner_id, shard in enumerate(self._shards.tolist())
        )

    def shard_assignment(self) -> np.ndarray:
        """Shard per miner id (columnar view; beacon = ``Miner.BEACON``)."""
        return self._shards.copy()

    def committee(self, shard: int) -> List[Miner]:
        """Miners currently assigned to ``shard`` (or ``Miner.BEACON``)."""
        return [
            Miner(miner_id=int(miner_id), shard=shard)
            for miner_id in np.flatnonzero(self._shards == shard)
        ]

    def committee_sizes(self) -> Dict[int, int]:
        """Committee size per shard id (including the beacon at -1)."""
        sizes: Dict[int, int] = {Miner.BEACON: int((self._shards == Miner.BEACON).sum())}
        counts = np.bincount(
            self._shards[self._shards != Miner.BEACON], minlength=self.k
        )
        for shard in range(self.k):
            sizes[shard] = int(counts[shard])
        return sizes

    def reshuffle(self, epoch: int) -> ReshuffleReport:
        """Randomly permute miners across shards, keeping sizes balanced.

        The permutation is derived from the pool's RNG factory and the
        epoch index, so every miner computes the same assignment locally
        (the paper's protocols derive this from a shared randomness
        beacon). The reshuffle itself is columnar: one permutation, one
        scatter, one comparison for the moved set.
        """
        rng = self._rng_factory.generator(f"miner-reshuffle-{epoch}")
        order = rng.permutation(len(self._shards))
        slot_shards = self._slot_shards(np.arange(len(self._shards)))
        new_shards = self._shards.copy()
        new_shards[order] = slot_shards
        moved_slots = self._shards[order] != slot_shards
        moved = order[moved_slots]
        self._shards = new_shards
        return ReshuffleReport(
            epoch=epoch,
            moved_miners=[int(m) for m in moved],
            assignment=dict(
                zip(order.tolist(), slot_shards.tolist())
            ),
        )
