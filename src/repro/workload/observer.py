"""The public workload oracle clients download ``Omega`` from.

In a deployment this is an Etherscan-style platform analysing the
mempool of pending transactions and publishing one number per shard
(Section III-C-2). Clients download just ``k`` floats — the negligible
communication the paper credits Mosaic with.

In the simulation, as in the paper's evaluation, the oracle analyses the
transactions of the upcoming epoch ("it is from analyzing transactions
in the next epoch in this simulation").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.mapping import ShardMapping
from repro.chain.mempool import shard_workloads
from repro.chain.transaction import TransactionBatch
from repro.errors import ValidationError

#: Bytes a client downloads per oracle query: k entries of 8 bytes.
OMEGA_ENTRY_BYTES = 8


@dataclass(frozen=True)
class WorkloadSnapshot:
    """One published workload distribution ``Omega``."""

    epoch: int
    omega: np.ndarray

    def __post_init__(self) -> None:
        omega = np.asarray(self.omega, dtype=np.float64)
        if omega.ndim != 1:
            raise ValidationError("omega must be a 1-D vector")
        if len(omega) and omega.min() < 0:
            raise ValidationError("workloads must be >= 0")
        object.__setattr__(self, "omega", omega)

    @property
    def k(self) -> int:
        """Number of shards covered by the snapshot."""
        return len(self.omega)

    def download_bytes(self) -> int:
        """Bytes a client transfers to fetch this snapshot."""
        return self.k * OMEGA_ENTRY_BYTES

    def least_loaded_shard(self) -> int:
        """Shard id with the smallest published workload."""
        if self.k == 0:
            raise ValidationError("empty snapshot")
        return int(np.argmin(self.omega))


class WorkloadOracle:
    """Analyses pending transactions and publishes ``Omega`` snapshots."""

    def __init__(self, eta: float) -> None:
        if eta < 1:
            raise ValidationError(f"eta must be >= 1, got {eta}")
        self.eta = eta
        self._latest: WorkloadSnapshot | None = None

    @property
    def latest(self) -> WorkloadSnapshot | None:
        """The most recently published snapshot, if any."""
        return self._latest

    def publish(
        self,
        epoch: int,
        pending: TransactionBatch,
        mapping: ShardMapping,
    ) -> WorkloadSnapshot:
        """Analyse ``pending`` under ``mapping`` and publish a snapshot.

        ``omega_i = |T_i^I| + eta * |T_i^C|`` over the pending set, the
        same workload definition the metrics use (Section V-A).
        """
        omega = shard_workloads(pending, mapping, self.eta)
        snapshot = WorkloadSnapshot(epoch=epoch, omega=omega)
        self._latest = snapshot
        return snapshot
