"""Workload-distribution observation (the Etherscan-like public oracle)."""

from repro.workload.observer import WorkloadOracle, WorkloadSnapshot

__all__ = ["WorkloadOracle", "WorkloadSnapshot"]
