"""Human-readable formatting for benchmark output and reports."""

from __future__ import annotations

from typing import List, Sequence

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB"]


def format_bytes(size: float) -> str:
    """Render a byte count with a binary-ish unit, e.g. ``1.44 GB``.

    The paper reports decimal multiples (1 KB = 1000 B), so we match that.
    """
    if size < 0:
        raise ValueError("size must be >= 0")
    value = float(size)
    for unit in _BYTE_UNITS:
        if value < 1000.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration compactly, switching to scientific for tiny values."""
    if seconds < 0:
        raise ValueError("seconds must be >= 0")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{seconds:.2e} s"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table with padded columns.

    Used by the benchmark harness to print rows shaped like the paper's
    Tables I-VI.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
