"""Small validation helpers used across the library.

Every helper raises :class:`repro.errors.ConfigurationError` with a
descriptive message naming the offending parameter, which keeps the
call sites one-liners while still producing actionable errors.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Tuple, Type, Union

from repro.errors import ConfigurationError


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> Any:
    """Ensure ``value`` is an instance of ``types``; return it unchanged."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise ConfigurationError(
            f"{name} must be {expected}, got {type(value).__name__}: {value!r}"
        )
    return value


def _check_real(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ConfigurationError(
            f"{name} must be a real number, got {type(value).__name__}: {value!r}"
        )
    return float(value)


def check_positive(name: str, value: Any) -> float:
    """Ensure ``value`` is a real number strictly greater than zero."""
    number = _check_real(name, value)
    if number <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return number


def check_non_negative(name: str, value: Any) -> float:
    """Ensure ``value`` is a real number greater than or equal to zero."""
    number = _check_real(name, value)
    if number < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return number


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Ensure ``low <= value <= high`` (or strict, if ``inclusive=False``)."""
    number = _check_real(name, value)
    if inclusive:
        ok = low <= number <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < number < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ConfigurationError(f"{name} must be in {bounds}, got {value!r}")
    return number


def check_probability(name: str, value: Any) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)
