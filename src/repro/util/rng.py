"""Deterministic random-number management.

Everything stochastic in the library flows through a single root seed so
that simulations are reproducible end to end. Sub-components derive
independent streams with :func:`derive_seed`, which hashes the root seed
together with a string label; this avoids accidental stream correlation
between, say, the trace generator and miner reshuffling.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative

_SEED_MODULUS = 2**63


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable child seed from ``root_seed`` and a string label."""
    check_non_negative("root_seed", root_seed)
    digest = hashlib.sha256(f"{int(root_seed)}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


class RngFactory:
    """Factory producing labelled, independent numpy generators.

    Example::

        rngs = RngFactory(seed=7)
        gen_trace = rngs.generator("trace")
        gen_shuffle = rngs.generator("miner-reshuffle")
    """

    def __init__(self, seed: int = 0) -> None:
        # Validate without float conversion: 63-bit seeds would lose
        # precision through float and must survive spawn() exactly.
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {seed!r}")
        if seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {seed}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def child_seed(self, label: str) -> int:
        """Return the derived integer seed for ``label``."""
        return derive_seed(self._seed, label)

    def generator(self, label: str) -> np.random.Generator:
        """Return a fresh ``numpy`` generator for the given label."""
        return np.random.default_rng(self.child_seed(label))

    def spawn(self, label: str) -> "RngFactory":
        """Return a child factory rooted at the derived seed for ``label``."""
        return RngFactory(self.child_seed(label))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"
