"""Shared utilities: validation helpers, RNG management, timers, tables."""

from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_probability,
    check_type,
)
from repro.util.rng import RngFactory, derive_seed
from repro.util.timing import Timer, benchmark_callable
from repro.util.formatting import format_bytes, format_seconds, render_table

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_type",
    "RngFactory",
    "derive_seed",
    "Timer",
    "benchmark_callable",
    "format_bytes",
    "format_seconds",
    "render_table",
]
