"""Timing helpers used by the efficiency experiments (Table IV)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class Timer:
    """Context-manager stopwatch accumulating wall-clock durations.

    A single ``Timer`` may be entered many times; it records every lap so
    the efficiency benchmarks can report means over repeated allocator
    updates, exactly as the paper averages running times over epochs.
    """

    def __init__(self) -> None:
        self.laps: List[float] = []
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        self.laps.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def total(self) -> float:
        """Sum of all recorded laps, in seconds."""
        return sum(self.laps)

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 when nothing recorded)."""
        return statistics.fmean(self.laps) if self.laps else 0.0

    @property
    def count(self) -> int:
        """Number of completed laps."""
        return len(self.laps)

    def reset(self) -> None:
        """Discard all recorded laps."""
        self.laps.clear()
        self._start = None


@dataclass
class TimingStats:
    """Summary of repeated timed calls."""

    mean: float
    minimum: float
    maximum: float
    repeats: int
    samples: List[float] = field(repr=False, default_factory=list)


def benchmark_callable(fn: Callable[[], object], repeats: int = 5) -> TimingStats:
    """Time ``fn`` ``repeats`` times and return summary statistics."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingStats(
        mean=statistics.fmean(samples),
        minimum=min(samples),
        maximum=max(samples),
        repeats=repeats,
        samples=samples,
    )
