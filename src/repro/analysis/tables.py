"""Renderers producing the paper's tables from recorded simulation runs.

Each function takes summaries produced by
:func:`repro.sim.recorder.summarize_results` and prints rows shaped like
the corresponding table in the paper (one row per parameter setting, one
column per method).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.chain.network import OverheadModel
from repro.util.formatting import format_bytes, format_seconds, render_table

Summary = Mapping[str, object]


def _find(
    summaries: Sequence[Summary], allocator: str, **filters: object
) -> Optional[Summary]:
    for summary in summaries:
        if summary.get("allocator") != allocator:
            continue
        if all(summary.get(key) == value for key, value in filters.items()):
            return summary
    return None


def comparison_table(
    summaries: Sequence[Summary],
    metric: str,
    allocators: Sequence[str],
    row_settings: Sequence[Dict[str, object]],
    value_format: str = "{:.2%}",
    lower_is_better: bool = True,
) -> str:
    """Render a Table I/II/III-style comparison.

    Args:
        summaries: recorded run summaries.
        metric: summary key to display (e.g. ``mean_cross_shard_ratio``).
        allocators: column order (method names).
        row_settings: one dict of parameter filters per row, e.g.
            ``{"k": 4, "eta": 2.0}``; a ``label`` key overrides the
            rendered row label.
        value_format: format string for the metric value.
        lower_is_better: marks the best value per row with ``*``.
    """
    headers = ["Parameters"] + list(allocators)
    rows: List[List[str]] = []
    for setting in row_settings:
        setting = dict(setting)
        label = str(setting.pop("label", setting))
        values: List[Optional[float]] = []
        for allocator in allocators:
            summary = _find(summaries, allocator, **setting)
            # A run that does not carry the metric (e.g. an executed-
            # value metric asked of a metrics-only cell) renders "-".
            if summary is None or metric not in summary:
                values.append(None)
            else:
                values.append(float(summary[metric]))
        present = [v for v in values if v is not None]
        best = (min(present) if lower_is_better else max(present)) if present else None
        cells = [label]
        for value in values:
            if value is None:
                cells.append("-")
                continue
            text = value_format.format(value)
            if best is not None and value == best:
                text += " *"
            cells.append(text)
        rows.append(cells)
    return render_table(headers, rows)


def beta_sweep_table(summaries: Sequence[Summary], allocator: str) -> str:
    """Render Table V: metrics across ``beta`` for one allocator."""
    headers = ["beta", "Cross-shard ratio", "Throughput", "Workload dev."]
    picked = sorted(
        (s for s in summaries if s.get("allocator") == allocator),
        key=lambda s: float(s["beta"]),  # type: ignore[arg-type]
    )
    rows = [
        [
            f"{float(s['beta']):.2f}",
            f"{float(s['mean_cross_shard_ratio']):.2%}",
            f"{float(s['mean_normalized_throughput']):.2f}",
            f"{float(s['mean_workload_deviation']):.2f}",
        ]
        for s in picked
    ]
    return render_table(headers, rows)


def efficiency_table(
    summaries: Sequence[Summary],
    allocators: Sequence[str],
    row_settings: Sequence[Dict[str, object]],
) -> str:
    """Render Table IV: running time per update plus input data size."""
    headers = ["Parameters"] + list(allocators)
    rows: List[List[str]] = []
    for setting in row_settings:
        setting = dict(setting)
        label = str(setting.pop("label", setting))
        cells = [label]
        for allocator in allocators:
            summary = _find(summaries, allocator, **setting)
            if summary is None:
                cells.append("-")
            else:
                cells.append(format_seconds(float(summary["mean_unit_time"])))
        rows.append(cells)
    # Input-size row aggregates over every matching run of each method.
    size_cells = ["Input Data"]
    for allocator in allocators:
        sizes = [
            float(s["mean_input_bytes"])
            for s in summaries
            if s.get("allocator") == allocator
        ]
        size_cells.append(
            format_bytes(sum(sizes) / len(sizes)) if sizes else "-"
        )
    rows.append(size_cells)
    return render_table(headers, rows)


def overhead_table(model: OverheadModel) -> str:
    """Render the quantitative half of Table VI from the overhead model."""
    estimates = model.all_frameworks()
    headers = [
        "Framework",
        "Replication storage",
        "Replication comm.",
        "Computation input",
    ]
    rows = [
        [
            name,
            format_bytes(est.storage_bytes),
            format_bytes(est.communication_bytes),
            format_bytes(est.computation_input_bytes),
        ]
        for name, est in estimates.items()
    ]
    return render_table(headers, rows)
