"""Markdown report generation from recorded simulation results.

Turns a :class:`repro.sim.recorder.ResultRecorder` (or raw summary
dicts) into a self-contained Markdown report: one section per
experiment, one metrics table per section, plus a header describing the
configuration. ``benchmarks/run_experiments.py`` saves the raw
summaries; this module renders them for humans.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.util.formatting import format_bytes, format_seconds

Summary = Mapping[str, object]

#: Metric columns rendered for every run, in order: (key, header, format).
_METRIC_COLUMNS = (
    ("mean_cross_shard_ratio", "Cross-shard", "{:.2%}"),
    ("mean_normalized_throughput", "Throughput", "{:.2f}"),
    ("mean_workload_deviation", "Workload dev.", "{:.2f}"),
    ("total_migrations", "Migrations", "{}"),
)


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _setting_label(summary: Summary) -> str:
    parts = [f"k={summary.get('k')}", f"eta={summary.get('eta')}"]
    beta = summary.get("beta")
    if beta not in (None, 0, 0.0):
        parts.append(f"beta={beta}")
    scenario = summary.get("scenario")
    if scenario:
        parts.insert(0, str(scenario))
    return ", ".join(parts)


def render_experiment_section(
    title: str, summaries: Sequence[Summary]
) -> str:
    """One Markdown section: a metrics table over all given runs."""
    if not summaries:
        raise ValidationError(f"experiment {title!r} has no recorded runs")
    headers = ["Method", "Setting"] + [h for _, h, _ in _METRIC_COLUMNS] + [
        "Time/decision",
        "Input",
    ]
    rows: List[List[str]] = []
    for summary in summaries:
        row = [str(summary.get("allocator", "?")), _setting_label(summary)]
        for key, _header, fmt in _METRIC_COLUMNS:
            value = summary.get(key)
            row.append(fmt.format(value) if value is not None else "-")
        unit_time = summary.get("mean_unit_time")
        row.append(
            format_seconds(float(unit_time)) if unit_time is not None else "-"
        )
        input_bytes = summary.get("mean_input_bytes")
        row.append(
            format_bytes(float(input_bytes)) if input_bytes is not None else "-"
        )
        rows.append(row)
    return f"## {title}\n\n{_markdown_table(headers, rows)}\n"


def render_report(
    summaries: Sequence[Summary],
    title: str = "Simulation report",
    preamble: Optional[str] = None,
) -> str:
    """Render a full Markdown report, grouped by experiment label."""
    if not summaries:
        raise ValidationError("no summaries to report")
    grouped: Dict[str, List[Summary]] = {}
    for summary in summaries:
        experiment = str(summary.get("experiment", "runs"))
        grouped.setdefault(experiment, []).append(summary)

    sections = [f"# {title}\n"]
    if preamble:
        sections.append(preamble.rstrip() + "\n")
    for experiment in sorted(grouped):
        sections.append(render_experiment_section(experiment, grouped[experiment]))
    return "\n".join(sections)


def write_report(
    summaries: Sequence[Summary],
    path: Union[str, Path],
    title: str = "Simulation report",
    preamble: Optional[str] = None,
) -> Path:
    """Render and write the report; return the path."""
    path = Path(path)
    path.write_text(render_report(summaries, title=title, preamble=preamble))
    return path
