"""Figure 1: the six-dimension radar comparison.

The paper normalises six dimensions to the range [1, 5] per its
footnote: the maximum across methods maps to 5 and the minimum to 1
(theoretical maxima map to 5 when they exist); efficiency dimensions are
the reciprocal of overhead, and the workload-balance index is the
reciprocal of workload deviation, so higher is always better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import ValidationError

RADAR_DIMENSIONS = (
    "computation_efficiency",
    "storage_efficiency",
    "communication_efficiency",
    "throughput",
    "intra_shard_ratio",
    "workload_balance_index",
)

_SCALE_MIN = 1.0
_SCALE_MAX = 5.0


@dataclass(frozen=True)
class RadarAxes:
    """Raw (pre-normalisation) values of the six radar dimensions.

    Efficiency values are reciprocals of overheads, so every field is
    already oriented as higher-is-better.
    """

    computation_efficiency: float
    storage_efficiency: float
    communication_efficiency: float
    throughput: float
    intra_shard_ratio: float
    workload_balance_index: float

    def __post_init__(self) -> None:
        for name in RADAR_DIMENSIONS:
            value = getattr(self, name)
            if value < 0:
                raise ValidationError(f"{name} must be >= 0, got {value}")

    @classmethod
    def from_measurements(
        cls,
        unit_time: float,
        storage_bytes: float,
        communication_bytes: float,
        normalized_throughput: float,
        cross_shard_ratio: float,
        workload_deviation: float,
    ) -> "RadarAxes":
        """Build axes from directly measured quantities.

        Overheads are inverted (reciprocal) into efficiencies, the
        cross-shard ratio becomes the intra-shard ratio, and workload
        deviation becomes its reciprocal index.
        """

        def reciprocal(value: float) -> float:
            return 1.0 / value if value > 0 else float("inf")

        return cls(
            computation_efficiency=reciprocal(unit_time),
            storage_efficiency=reciprocal(storage_bytes),
            communication_efficiency=reciprocal(communication_bytes),
            throughput=normalized_throughput,
            intra_shard_ratio=1.0 - cross_shard_ratio,
            workload_balance_index=reciprocal(workload_deviation),
        )


def radar_scores(
    axes_by_method: Mapping[str, RadarAxes]
) -> Dict[str, Dict[str, float]]:
    """Normalise every dimension across methods to the [1, 5] scale.

    Infinite raw values (zero overhead) map to 5. When all methods tie
    on a dimension, everyone receives 5.
    """
    if not axes_by_method:
        raise ValidationError("need at least one method")
    methods = list(axes_by_method)
    scores: Dict[str, Dict[str, float]] = {m: {} for m in methods}
    for dimension in RADAR_DIMENSIONS:
        raw = np.array(
            [getattr(axes_by_method[m], dimension) for m in methods],
            dtype=np.float64,
        )
        finite = raw[np.isfinite(raw)]
        if len(finite) == 0:
            for method in methods:
                scores[method][dimension] = _SCALE_MAX
            continue
        low, high = finite.min(), finite.max()
        for method, value in zip(methods, raw):
            if not np.isfinite(value) or high == low:
                score = _SCALE_MAX
            else:
                score = _SCALE_MIN + (_SCALE_MAX - _SCALE_MIN) * (
                    (value - low) / (high - low)
                )
            scores[method][dimension] = float(score)
    return scores
