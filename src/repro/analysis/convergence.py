"""Convergence analysis of the epoch-wise metric time series.

Mosaic is a *dynamic* scheme: the mapping keeps improving as clients
migrate. This module quantifies that trajectory from a
:class:`repro.sim.engine.SimulationResult` — how fast the cross-shard
ratio settles, whether migration volume decays (the system quiescing),
and a simple stationarity check comparing the first and last thirds of
the series. Used by notebooks/reports to argue convergence rather than
eyeballing plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class SeriesTrend:
    """Least-squares linear trend of one per-epoch metric."""

    metric: str
    slope_per_epoch: float
    first_third_mean: float
    last_third_mean: float

    @property
    def improving(self) -> bool:
        """True when the last third is strictly better (lower) on average."""
        return self.last_third_mean < self.first_third_mean

    @property
    def relative_change(self) -> float:
        """(last - first) / max(|first|, eps): negative = improvement."""
        denominator = max(abs(self.first_third_mean), 1e-12)
        return (self.last_third_mean - self.first_third_mean) / denominator


def _series(result: SimulationResult, attribute: str) -> np.ndarray:
    if not result.records:
        raise ValidationError("result has no epoch records")
    return np.array(
        [getattr(record, attribute) for record in result.records],
        dtype=np.float64,
    )


def metric_trend(result: SimulationResult, metric: str) -> SeriesTrend:
    """Fit a linear trend and first/last-third means for ``metric``."""
    values = _series(result, metric)
    n = len(values)
    if n >= 2:
        slope = float(np.polyfit(np.arange(n), values, deg=1)[0])
    else:
        slope = 0.0
    third = max(1, n // 3)
    return SeriesTrend(
        metric=metric,
        slope_per_epoch=slope,
        first_third_mean=float(values[:third].mean()),
        last_third_mean=float(values[-third:].mean()),
    )


def migration_decay(result: SimulationResult) -> float:
    """Ratio of last-third to first-third migration volume.

    Values well below 1 mean the system is quiescing: most clients have
    found their shard and stopped proposing moves. 0 when no migrations
    ever happened.
    """
    volumes = _series(result, "migrations")
    third = max(1, len(volumes) // 3)
    early = volumes[:third].sum()
    late = volumes[-third:].sum()
    if early == 0:
        return 0.0 if late == 0 else float("inf")
    return float(late / early)


def epochs_to_reach(
    result: SimulationResult,
    metric: str,
    threshold: float,
    below: bool = True,
) -> int:
    """First epoch index whose metric crosses ``threshold`` (-1 = never)."""
    values = _series(result, metric)
    hits = np.flatnonzero(values <= threshold if below else values >= threshold)
    if len(hits) == 0:
        return -1
    return int(result.records[int(hits[0])].epoch)


def convergence_report(result: SimulationResult) -> List[SeriesTrend]:
    """Trends for the three effectiveness metrics, ready for reporting."""
    return [
        metric_trend(result, "cross_shard_ratio"),
        metric_trend(result, "workload_deviation"),
        metric_trend(result, "normalized_throughput"),
    ]
