"""Result analysis: paper-style tables and the Fig. 1 radar chart."""

from repro.analysis.tables import (
    comparison_table,
    beta_sweep_table,
    efficiency_table,
    overhead_table,
)
from repro.analysis.radar import RadarAxes, radar_scores, RADAR_DIMENSIONS
from repro.analysis.report import (
    render_experiment_section,
    render_report,
    write_report,
)
from repro.analysis.convergence import (
    SeriesTrend,
    metric_trend,
    migration_decay,
    epochs_to_reach,
    convergence_report,
)

__all__ = [
    "comparison_table",
    "beta_sweep_table",
    "efficiency_table",
    "overhead_table",
    "RadarAxes",
    "radar_scores",
    "RADAR_DIMENSIONS",
    "render_experiment_section",
    "render_report",
    "write_report",
    "SeriesTrend",
    "metric_trend",
    "migration_decay",
    "epochs_to_reach",
    "convergence_report",
]
