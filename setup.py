"""Package metadata (setuptools, no PEP 517 build isolation needed).

Kept as a plain ``setup.py`` so ``pip install -e . --no-build-isolation
--no-use-pep517`` works in offline environments that lack the ``wheel``
package (PEP 660 editable installs need it).

The core library needs only numpy. The ``fast`` extra pulls in the
optional compiled fast paths — numba for the jitted Metis refinement
kernels (``repro.allocation.metis_like.kernels``) and pyarrow for the
columnar CSV ingest (``repro.data.arrow``). Both are import-guarded:
without the extra every knob falls back to the bit-identical
pure-python reference implementations.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE
).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Reproduction of Mosaic: client-driven account allocation in "
        "sharded blockchains (ICDCS 2025)"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "fast": ["numba>=0.57", "pyarrow>=14"],
    },
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
)
