"""Legacy setuptools shim.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` in
offline environments that lack the ``wheel`` package (PEP 660 editable
installs need it). All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
