"""Table I: average cross-shard transaction ratios.

Regenerates the paper's Table I rows — Pilot vs TxAllo vs Metis vs
hash-random across k in {4, 16, 32} (eta = 2) and eta in {5, 10}
(k = 16). The timed section is the k-sweep simulation batch.
"""

from __future__ import annotations

from conftest import METIS, PILOT, RANDOM, TXALLO, emit
from repro.analysis.tables import comparison_table
from repro.sim.recorder import summarize_results

METHODS = [PILOT, TXALLO, METIS, RANDOM]
K_SWEEP = [4, 16, 32]
ETA_SWEEP = [5.0, 10.0]

ROW_SETTINGS = [
    {"k": 4, "eta": 2.0, "label": "k = 4"},
    {"k": 16, "eta": 2.0, "label": "k = 16 (default)"},
    {"k": 32, "eta": 2.0, "label": "k = 32"},
    {"k": 16, "eta": 5.0, "label": "eta = 5"},
    {"k": 16, "eta": 10.0, "label": "eta = 10"},
]


def collect_summaries(sim_cache):
    """All 20 simulation summaries backing Tables I-III."""
    summaries = []
    for k in K_SWEEP:
        for method in METHODS:
            result = sim_cache.run(method, k=k, eta=2.0)
            summaries.append(summarize_results(result))
    for eta in ETA_SWEEP:
        for method in METHODS:
            result = sim_cache.run(method, k=16, eta=eta)
            summaries.append(summarize_results(result))
    return summaries


def test_table1_cross_shard_ratio(benchmark, sim_cache, output_dir):
    def run_k_sweep():
        # The k-sweep is the heavy half of the Tables I-III workload.
        for k in K_SWEEP:
            for method in METHODS:
                sim_cache.run(method, k=k, eta=2.0)
        return True

    benchmark.pedantic(run_k_sweep, rounds=1, iterations=1)

    summaries = collect_summaries(sim_cache)
    text = comparison_table(
        summaries,
        metric="mean_cross_shard_ratio",
        allocators=METHODS,
        row_settings=ROW_SETTINGS,
        value_format="{:.2%}",
        lower_is_better=True,
    )
    emit(output_dir, "table1_cross_shard", "Table I: cross-shard ratio", text)

    # Shape assertions mirroring the paper's claims.
    by_key = {
        (s["allocator"], s["k"], s["eta"]): s for s in summaries
    }
    for k in K_SWEEP:
        random_ratio = by_key[(RANDOM, k, 2.0)]["mean_cross_shard_ratio"]
        for method in (PILOT, TXALLO, METIS):
            assert by_key[(method, k, 2.0)]["mean_cross_shard_ratio"] < random_ratio
    # Ratio grows with k for the pattern-aware methods.
    assert (
        by_key[(PILOT, 4, 2.0)]["mean_cross_shard_ratio"]
        < by_key[(PILOT, 32, 2.0)]["mean_cross_shard_ratio"]
    )
