"""Table IV: per-update running time and input data size.

This is the paper's headline efficiency result: Pilot runs in ~1e-5 s
per client on a few hundred bytes, while G-TxAllo and Metis take
seconds to minutes on the full transaction graph. Each method's update
step is timed directly with pytest-benchmark on identical prepared
state; the A-TxAllo variant is included as in the paper's 'A \\ G'
split.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import (
    BENCH_SEED,
    BENCH_TAU,
    METIS,
    PILOT,
    RANDOM,
    TXALLO,
    TXALLO_ADAPTIVE,
    emit,
    make_allocator,
)
from repro.allocation.base import UpdateContext
from repro.chain.params import ProtocolParams
from repro.chain.transaction import TransactionBatch
from repro.core.pilot import Pilot
from repro.sim.recorder import summarize_results
from repro.util.formatting import format_bytes, format_seconds
from repro.util.rng import RngFactory

TIMED_METHODS = [PILOT, TXALLO_ADAPTIVE, TXALLO, METIS, RANDOM]

_prepared = {}
_recorded_rows = {}


def _prepare(bench_trace, method):
    """Initialise an allocator on the history prefix, ready for update."""
    if method not in _prepared:
        params = ProtocolParams(k=16, eta=2.0, tau=BENCH_TAU, seed=BENCH_SEED)
        allocator = make_allocator(method)
        history, evaluation = bench_trace.split(0.9)
        mapping = allocator.initialize(history, params)
        epochs = evaluation.epoch_list(BENCH_TAU)
        committed = epochs[0].batch if epochs else TransactionBatch.empty()
        mempool = epochs[1].batch if len(epochs) > 1 else committed
        context = UpdateContext(
            epoch=0,
            params=params,
            committed=committed,
            mempool=mempool,
            capacity=params.derive_capacity(len(committed)),
        )
        _prepared[method] = (allocator, mapping, context)
    return _prepared[method]


@pytest.mark.parametrize("method", TIMED_METHODS)
def test_table4_update_time(benchmark, bench_trace, method):
    allocator, mapping, context = _prepare(bench_trace, method)
    update = benchmark.pedantic(
        lambda: allocator.update(mapping, context),
        rounds=3 if method in (PILOT, TXALLO_ADAPTIVE, RANDOM) else 1,
        iterations=1,
    )
    _recorded_rows[method] = {
        "unit_time": update.unit_time,
        "total_time": update.execution_time,
        "input_bytes": update.input_bytes,
    }


def test_table4_scalar_pilot_unit_time(benchmark, bench_trace):
    """Time the *per-client* scalar Pilot run, the paper's 2e-5 s figure."""
    from repro.chain.mapping import ShardMapping

    params = ProtocolParams(k=16, eta=2.0, tau=BENCH_TAU, seed=BENCH_SEED)
    rng = RngFactory(BENCH_SEED).generator("table4-client")
    mapping = ShardMapping.uniform_random(bench_trace.n_accounts, 16, rng)
    account = int(bench_trace.batch.senders[0])
    history = bench_trace.batch.involving(account)
    omega = rng.uniform(1.0, 10.0, size=16)
    pilot = Pilot(eta=2.0)

    decision = benchmark(
        lambda: pilot.decide(
            account, history, TransactionBatch.empty(), omega, mapping
        )
    )
    assert 0 <= decision.best_shard < 16
    _recorded_rows["pilot-scalar"] = {
        "unit_time": None,  # taken from pytest-benchmark stats
        "total_time": None,
        "input_bytes": len(history) * 109 + 16 * 8,
    }


def test_table4_render(output_dir, benchmark):
    """Render Table IV from the recorded update measurements."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    headers = ["Method", "Time per decision unit", "Input data size"]
    rows = []
    for method in TIMED_METHODS:
        row = _recorded_rows.get(method)
        if row is None:
            continue
        rows.append(
            [
                method,
                format_seconds(row["unit_time"]),
                format_bytes(row["input_bytes"]),
            ]
        )
    from repro.util.formatting import render_table

    emit(
        output_dir,
        "table4_efficiency",
        "Table IV: running time and input data size",
        render_table(headers, rows),
    )

    # Shape: Pilot is orders of magnitude faster and smaller.
    pilot = _recorded_rows[PILOT]
    for heavy in (TXALLO, METIS):
        if heavy in _recorded_rows:
            assert _recorded_rows[heavy]["unit_time"] > 1_000 * pilot["unit_time"]
            assert _recorded_rows[heavy]["input_bytes"] > 1_000 * pilot["input_bytes"]
