"""Table VI: the quantitative framework comparison.

Evaluates the storage / communication / computation-input formulas of
Section VI on the measured benchmark trace plus the migration volume
Mosaic actually committed, then renders the quantitative half of
Table VI. The timed section is the overhead-model evaluation.
"""

from __future__ import annotations

from conftest import PILOT, emit
from repro.analysis.tables import overhead_table
from repro.chain.network import OverheadModel


def test_table6_overhead(benchmark, sim_cache, bench_trace, output_dir):
    result = sim_cache.run(PILOT, k=16, eta=2.0)
    epochs = max(1, result.epochs)
    window_transactions = result.total_transactions // epochs
    window_migrations = result.total_migrations // epochs

    def build_model():
        return OverheadModel(
            total_transactions=len(bench_trace),
            total_accounts=bench_trace.n_accounts,
            k=16,
            window_transactions=window_transactions,
            committed_migrations=result.total_migrations,
            window_migrations=window_migrations,
        )

    model = benchmark(build_model)
    estimates = model.all_frameworks()
    emit(
        output_dir,
        "table6_overhead",
        "Table VI (quantitative): per-miner overhead",
        overhead_table(model),
    )

    graph = estimates["graph-based"]
    mosaic = estimates["mosaic"]
    hashed = estimates["hash-based"]
    # Paper's ordering: graph-based pays full-ledger costs; Mosaic pays
    # the 1/k shard share plus the (bounded) migration log; hash-based
    # pays only the shard share.
    assert graph.storage_bytes > mosaic.storage_bytes > hashed.storage_bytes
    assert graph.communication_bytes > mosaic.communication_bytes
    # Mosaic's miner storage stays within ~2/k of graph-based (Section VI).
    assert mosaic.storage_bytes <= 2 * graph.storage_bytes / 16 * 1.5
    # The client-side computation input is orders of magnitude below the
    # miner-side graph input.
    assert mosaic.computation_input_bytes < graph.computation_input_bytes / 100
