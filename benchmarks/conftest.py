"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper. Simulation
results are cached at session scope so tables that share configurations
(I, II, III all use the same k/eta sweeps) do not recompute them, and
each bench writes its rendered table to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.allocation.base import Allocator
from repro.allocation.hash_based import HashAllocator
from repro.allocation.metis_like import MetisLikeAllocator
from repro.allocation.txallo import TxAlloAllocator
from repro.chain.params import ProtocolParams
from repro.core.mosaic import MosaicAllocator
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.trace import Trace
from repro.sim.engine import Simulation, SimulationConfig, SimulationResult

#: Benchmark-scale trace: large enough for stable shapes, small enough
#: that the full suite finishes in minutes. tau=40 over the evaluation
#: tail yields ~10 epochs, mirroring the paper's epoch-wise averaging.
#: The hub calibration keeps the busiest single account at ~2% of all
#: transactions, below one shard's 1/k workload share at k = 32 scale —
#: matching the real dataset, where no single account exceeds a shard's
#: capacity (a single unsplittable hub above 1/k makes workload balance
#: unattainable for every allocator and drowns the comparison in noise).
BENCH_TRACE_CONFIG = EthereumTraceConfig(
    n_accounts=6_000,
    n_transactions=80_000,
    n_blocks=4_000,
    hub_fraction=0.01,
    hub_transaction_share=0.12,
    seed=42,
)
BENCH_TAU = 40
BENCH_SEED = 42

#: Method display names used across all tables (paper column order).
#: "txallo" is the complete G-TxAllo recomputation the paper's
#: effectiveness tables report; the fast A-TxAllo variant appears in the
#: efficiency table (Table IV) as in the paper's 'A \\ G' split.
PILOT = "mosaic-pilot"
TXALLO = "txallo"
TXALLO_ADAPTIVE = "txallo-a"
METIS = "metis"
RANDOM = "hash-random"


def make_allocator(name: str) -> Allocator:
    """Fresh allocator instance for one simulation run."""
    if name == PILOT:
        # The paper initialises Pilot's phi_0 with TxAllo's result.
        return MosaicAllocator(initializer=TxAlloAllocator())
    if name == TXALLO:
        return TxAlloAllocator(mode="full")
    if name == TXALLO_ADAPTIVE:
        return TxAlloAllocator(mode="adaptive")
    if name == METIS:
        return MetisLikeAllocator(seed=BENCH_SEED)
    if name == RANDOM:
        return HashAllocator()
    raise ValueError(f"unknown allocator {name!r}")


@pytest.fixture(scope="session")
def bench_trace() -> Trace:
    """The shared benchmark trace (generated once per session)."""
    return generate_ethereum_like_trace(BENCH_TRACE_CONFIG)


class SimulationCache:
    """Session cache: (allocator, k, eta, beta, oracle, extra) -> result."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._results: Dict[tuple, SimulationResult] = {}

    def run(
        self,
        allocator_name: str,
        k: int = 16,
        eta: float = 2.0,
        beta: float = 0.0,
        oracle_mode: str = "lookahead",
        allocator_factory: Callable[[], Allocator] = None,
        cache_tag: str = "",
    ) -> SimulationResult:
        key = (allocator_name, k, eta, beta, oracle_mode, cache_tag)
        if key not in self._results:
            params = ProtocolParams(
                k=k, eta=eta, tau=BENCH_TAU, beta=beta, seed=BENCH_SEED
            )
            config = SimulationConfig(params=params, oracle_mode=oracle_mode)
            allocator = (
                allocator_factory()
                if allocator_factory is not None
                else make_allocator(allocator_name)
            )
            result = Simulation(self.trace, allocator, config).run()
            # Label the result with the display name so tables align even
            # when a factory builds a variant of a standard allocator.
            result.allocator_name = allocator_name
            self._results[key] = result
        return self._results[key]


@pytest.fixture(scope="session")
def sim_cache(bench_trace) -> SimulationCache:
    return SimulationCache(bench_trace)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    path = Path(__file__).parent / "output"
    path.mkdir(exist_ok=True)
    return path


def emit(output_dir: Path, name: str, title: str, text: str) -> None:
    """Write a rendered table to disk and echo it to stdout."""
    body = f"{title}\n{'=' * len(title)}\n{text}\n"
    (output_dir / f"{name}.txt").write_text(body)
    print(f"\n{body}")
