"""Shared infrastructure for the benchmark suite.

Every bench regenerates one table or figure of the paper. Simulation
results are cached at session scope so tables that share configurations
(I, II, III all use the same k/eta sweeps) do not recompute them, and
each bench writes its rendered table to ``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.allocation.base import Allocator
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.data.trace import Trace
from repro.experiments import (
    ALLOCATOR_BUILDERS,
    MatrixCell,
    TraceSpec,
    run_cell,
    seed_trace_cache,
)
from repro.sim.engine import Simulation, SimulationResult

#: Benchmark-scale trace: large enough for stable shapes, small enough
#: that the full suite finishes in minutes. tau=40 over the evaluation
#: tail yields ~10 epochs, mirroring the paper's epoch-wise averaging.
#: The hub calibration keeps the busiest single account at ~2% of all
#: transactions, below one shard's 1/k workload share at k = 32 scale —
#: matching the real dataset, where no single account exceeds a shard's
#: capacity (a single unsplittable hub above 1/k makes workload balance
#: unattainable for every allocator and drowns the comparison in noise).
BENCH_TRACE_CONFIG = EthereumTraceConfig(
    n_accounts=6_000,
    n_transactions=80_000,
    n_blocks=4_000,
    hub_fraction=0.01,
    hub_transaction_share=0.12,
    seed=42,
)
BENCH_TAU = 40
BENCH_SEED = 42

#: Method display names used across all tables (paper column order).
#: "txallo" is the complete G-TxAllo recomputation the paper's
#: effectiveness tables report; the fast A-TxAllo variant appears in the
#: efficiency table (Table IV) as in the paper's 'A \\ G' split.
PILOT = "mosaic-pilot"
TXALLO = "txallo"
TXALLO_ADAPTIVE = "txallo-a"
METIS = "metis"
RANDOM = "hash-random"


#: The shared trace as an experiments TraceSpec (cells key on it).
BENCH_TRACE_SPEC = TraceSpec(name="bench", config=BENCH_TRACE_CONFIG)


def make_allocator(name: str) -> Allocator:
    """Fresh allocator instance for one simulation run.

    Delegates to the experiments registry (the paper initialises Pilot's
    phi_0 with TxAllo's result; Metis is seeded for determinism).
    """
    try:
        builder = ALLOCATOR_BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown allocator {name!r}") from None
    return builder(BENCH_SEED)


@pytest.fixture(scope="session")
def bench_trace() -> Trace:
    """The shared benchmark trace (generated once per session)."""
    return generate_ethereum_like_trace(BENCH_TRACE_CONFIG)


class SimulationCache:
    """Session cache: (allocator, k, eta, beta, oracle, extra) -> result.

    Standard-method runs execute through the experiments runner's
    ``run_cell`` — the same code path as ``repro matrix`` — against the
    pre-seeded shared trace. Custom allocator factories (ablation
    variants) fall back to a direct Simulation under the same derived
    cell seed, so variant rows stay comparable to the standard tables.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        seed_trace_cache(BENCH_TRACE_SPEC, trace)
        self._results: Dict[tuple, SimulationResult] = {}

    def run(
        self,
        allocator_name: str,
        k: int = 16,
        eta: float = 2.0,
        beta: float = 0.0,
        oracle_mode: str = "lookahead",
        allocator_factory: Callable[[], Allocator] = None,
        cache_tag: str = "",
    ) -> SimulationResult:
        key = (allocator_name, k, eta, beta, oracle_mode, cache_tag)
        if key not in self._results:
            cell = MatrixCell(
                method=allocator_name,
                trace=BENCH_TRACE_SPEC,
                k=k,
                eta=eta,
                beta=beta,
                tau=BENCH_TAU,
                matrix_seed=BENCH_SEED,
                oracle_mode=oracle_mode,
            )
            if allocator_factory is None:
                result = run_cell(cell)
            else:
                # Same derived seed as the cell path, so ablation
                # variants stay numerically comparable to the standard
                # runs in the other tables.
                config = cell.simulation_config()
                result = Simulation(self.trace, allocator_factory(), config).run()
            # Label the result with the display name so tables align even
            # when a factory builds a variant of a standard allocator.
            result.allocator_name = allocator_name
            self._results[key] = result
        return self._results[key]


@pytest.fixture(scope="session")
def sim_cache(bench_trace) -> SimulationCache:
    return SimulationCache(bench_trace)


@pytest.fixture(scope="session")
def output_dir() -> Path:
    path = Path(__file__).parent / "output"
    path.mkdir(exist_ok=True)
    return path


def emit(output_dir: Path, name: str, title: str, text: str) -> None:
    """Write a rendered table to disk and echo it to stdout."""
    body = f"{title}\n{'=' * len(title)}\n{text}\n"
    (output_dir / f"{name}.txt").write_text(body)
    print(f"\n{body}")
