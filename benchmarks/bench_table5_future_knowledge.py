"""Table V: impact of future knowledge (the beta sweep).

All clients share the same beta in {0, 0.25, 0.5, 0.75, 1}; the paper
uses k = 4, eta = 2 for this analysis because allocation is most stable
with few shards. The timed section is the full five-run sweep.
"""

from __future__ import annotations

from conftest import PILOT, emit
from repro.analysis.tables import beta_sweep_table
from repro.sim.recorder import summarize_results

BETAS = [0.0, 0.25, 0.5, 0.75, 1.0]


def test_table5_beta_sweep(benchmark, sim_cache, output_dir):
    def run_sweep():
        for beta in BETAS:
            sim_cache.run(PILOT, k=4, eta=2.0, beta=beta)
        return True

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    summaries = [
        summarize_results(sim_cache.run(PILOT, k=4, eta=2.0, beta=beta))
        for beta in BETAS
    ]
    text = beta_sweep_table(summaries, allocator=PILOT)
    emit(
        output_dir,
        "table5_future_knowledge",
        "Table V: impact of future knowledge (k = 4, eta = 2)",
        text,
    )

    by_beta = {s["beta"]: s for s in summaries}
    # Paper: beta = 0 is the worst cross-shard ratio; knowledge helps.
    worst = by_beta[0.0]["mean_cross_shard_ratio"]
    assert by_beta[0.75]["mean_cross_shard_ratio"] <= worst
    assert by_beta[0.5]["mean_cross_shard_ratio"] <= worst
    # Throughput at high beta is at least as good as at beta = 0.
    assert (
        by_beta[0.75]["mean_normalized_throughput"]
        >= by_beta[0.0]["mean_normalized_throughput"] - 0.05
    )
