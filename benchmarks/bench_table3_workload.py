"""Table III: average workload deviation across shards.

Reuses the Tables I-II simulation cache; the timed section is the
workload-metric kernel itself (classification + deviation over one
full epoch batch), the per-epoch cost every evaluation pays.
"""

from __future__ import annotations

import numpy as np

from bench_table1_cross_shard import METHODS, ROW_SETTINGS, collect_summaries
from conftest import METIS, PILOT, RANDOM, TXALLO, emit
from repro.analysis.tables import comparison_table
from repro.chain.mapping import ShardMapping
from repro.chain.mempool import shard_workloads
from repro.sim.metrics import workload_deviation


def test_table3_workload_deviation(benchmark, sim_cache, output_dir, bench_trace):
    mapping = ShardMapping.uniform_random(
        bench_trace.n_accounts, 16, np.random.default_rng(0)
    )
    batch = bench_trace.batch[:20_000]

    def metric_kernel():
        omega = shard_workloads(batch, mapping, eta=2.0)
        return workload_deviation(omega / (len(batch) / 16))

    benchmark(metric_kernel)

    summaries = collect_summaries(sim_cache)
    text = comparison_table(
        summaries,
        metric="mean_workload_deviation",
        allocators=METHODS,
        row_settings=ROW_SETTINGS,
        value_format="{:.2f}",
        lower_is_better=True,
    )
    emit(
        output_dir,
        "table3_workload_deviation",
        "Table III: workload deviation",
        text,
    )

    by_key = {(s["allocator"], s["k"], s["eta"]): s for s in summaries}
    # Hash-random is the most balanced up to noise (paper: best in every
    # row; at small scale the pattern-aware methods occasionally tie it).
    for k in (4, 16, 32):
        random_dev = by_key[(RANDOM, k, 2.0)]["mean_workload_deviation"]
        for method in (PILOT, TXALLO, METIS):
            method_dev = by_key[(method, k, 2.0)]["mean_workload_deviation"]
            assert method_dev >= 0.6 * random_dev
    # Deviation grows with k for Pilot (paper: 0.22 -> 0.59 -> 0.83).
    pilot = [
        by_key[(PILOT, k, 2.0)]["mean_workload_deviation"] for k in (4, 16, 32)
    ]
    assert pilot[0] < pilot[2]
