"""One-shot experiment runner: regenerate every table and figure.

Runs the full evaluation (Tables I-VI, Fig. 1, ablations) without
pytest and prints paper-style tables, also writing them (plus a JSON
dump of all run summaries) to ``benchmarks/output/``. This is the
script whose output EXPERIMENTS.md records.

Usage::

    python benchmarks/run_experiments.py [--quick]

``--quick`` shrinks the trace for a fast smoke run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import (  # noqa: E402  (path set up above)
    BENCH_TAU,
    BENCH_TRACE_CONFIG,
    METIS,
    PILOT,
    RANDOM,
    TXALLO,
    TXALLO_ADAPTIVE,
    SimulationCache,
    emit,
    make_allocator,
)
from repro.analysis.radar import RADAR_DIMENSIONS, RadarAxes, radar_scores
from repro.analysis.tables import (
    beta_sweep_table,
    comparison_table,
    overhead_table,
)
from repro.chain.network import OverheadModel
from repro.data.ethereum import EthereumTraceConfig, generate_ethereum_like_trace
from repro.sim.recorder import ResultRecorder, summarize_results
from repro.util.formatting import format_bytes, format_seconds, render_table

METHODS = [PILOT, TXALLO, METIS, RANDOM]
ROW_SETTINGS = [
    {"k": 4, "eta": 2.0, "label": "k = 4"},
    {"k": 16, "eta": 2.0, "label": "k = 16 (default)"},
    {"k": 32, "eta": 2.0, "label": "k = 32"},
    {"k": 16, "eta": 5.0, "label": "eta = 5"},
    {"k": 16, "eta": 10.0, "label": "eta = 10"},
]
BETAS = [0.0, 0.25, 0.5, 0.75, 1.0]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small fast run")
    args = parser.parse_args()

    config = BENCH_TRACE_CONFIG
    if args.quick:
        config = EthereumTraceConfig(
            n_accounts=2_000,
            n_transactions=24_000,
            n_blocks=1_600,
            hub_fraction=0.01,
            hub_transaction_share=0.12,
            seed=BENCH_TRACE_CONFIG.seed,
        )
    print(f"generating trace ({config.n_transactions:,} transactions)...")
    trace = generate_ethereum_like_trace(config)
    cache = SimulationCache(trace)
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    recorder = ResultRecorder()

    # -- effectiveness sweeps (Tables I-III) -----------------------------------
    started = time.time()
    summaries = []
    for setting in ROW_SETTINGS:
        for method in METHODS:
            result = cache.run(method, k=setting["k"], eta=setting["eta"])
            summaries.append(
                recorder.record(result, experiment="effectiveness")
            )
    print(f"effectiveness sweeps done in {time.time() - started:.0f}s")

    emit(
        output_dir,
        "table1_cross_shard",
        "Table I: cross-shard ratio",
        comparison_table(
            summaries,
            metric="mean_cross_shard_ratio",
            allocators=METHODS,
            row_settings=ROW_SETTINGS,
        ),
    )
    emit(
        output_dir,
        "table2_throughput",
        "Table II: normalised throughput (Lambda/lambda)",
        comparison_table(
            summaries,
            metric="mean_normalized_throughput",
            allocators=METHODS,
            row_settings=ROW_SETTINGS,
            value_format="{:.2f}",
            lower_is_better=False,
        ),
    )
    emit(
        output_dir,
        "table3_workload_deviation",
        "Table III: workload deviation",
        comparison_table(
            summaries,
            metric="mean_workload_deviation",
            allocators=METHODS,
            row_settings=ROW_SETTINGS,
            value_format="{:.2f}",
        ),
    )

    # -- Table IV: efficiency ----------------------------------------------------
    rows = []
    for method in [PILOT, TXALLO_ADAPTIVE, TXALLO, METIS, RANDOM]:
        if method in (TXALLO_ADAPTIVE,):
            result = cache.run(method, k=16, eta=2.0)
            recorder.record(result, experiment="efficiency")
        else:
            result = cache.run(method, k=16, eta=2.0)
        rows.append(
            [
                method,
                format_seconds(result.mean_unit_time),
                format_bytes(result.mean_input_bytes),
            ]
        )
    emit(
        output_dir,
        "table4_efficiency",
        "Table IV: running time and input data size",
        render_table(["Method", "Time per decision unit", "Input data size"], rows),
    )

    # -- Table V: beta sweep ------------------------------------------------------
    beta_summaries = []
    for beta in BETAS:
        result = cache.run(PILOT, k=4, eta=2.0, beta=beta)
        beta_summaries.append(recorder.record(result, experiment="beta"))
    emit(
        output_dir,
        "table5_future_knowledge",
        "Table V: impact of future knowledge (k = 4, eta = 2)",
        beta_sweep_table(beta_summaries, allocator=PILOT),
    )

    # -- Table VI + Fig. 1 ---------------------------------------------------------
    pilot_result = cache.run(PILOT, k=16, eta=2.0)
    epochs = max(1, pilot_result.epochs)
    model = OverheadModel(
        total_transactions=len(trace),
        total_accounts=trace.n_accounts,
        k=16,
        window_transactions=pilot_result.total_transactions // epochs,
        committed_migrations=pilot_result.total_migrations,
        window_migrations=pilot_result.total_migrations // epochs,
    )
    emit(
        output_dir,
        "table6_overhead",
        "Table VI (quantitative): per-miner overhead",
        overhead_table(model),
    )

    overheads = {
        PILOT: model.mosaic(),
        TXALLO: model.graph_based(),
        RANDOM: model.hash_based(),
    }
    axes = {}
    for method in (PILOT, TXALLO, RANDOM):
        result = cache.run(method, k=16, eta=2.0)
        axes[method] = RadarAxes.from_measurements(
            unit_time=max(result.mean_unit_time, 1e-12),
            storage_bytes=overheads[method].storage_bytes,
            communication_bytes=overheads[method].communication_bytes,
            normalized_throughput=result.mean_normalized_throughput,
            cross_shard_ratio=result.mean_cross_shard_ratio,
            workload_deviation=max(result.mean_workload_deviation, 1e-12),
        )
    scores = radar_scores(axes)
    emit(
        output_dir,
        "fig1_radar",
        "Figure 1: radar scores, normalised to [1, 5]",
        render_table(
            ["Dimension", PILOT, TXALLO, RANDOM],
            [
                [d] + [f"{scores[m][d]:.2f}" for m in (PILOT, TXALLO, RANDOM)]
                for d in RADAR_DIMENSIONS
            ],
        ),
    )

    recorder.save(output_dir / "run_summaries.json")
    print(f"\nall artefacts written to {output_dir}/")


if __name__ == "__main__":
    main()
