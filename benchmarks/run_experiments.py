"""One-shot experiment runner: regenerate every table and figure.

Runs the full evaluation (Tables I-VI, Fig. 1) through the scenario-
matrix runner (``repro.experiments``) and prints paper-style tables,
also writing them (plus a JSON dump of all run summaries and the
``BENCH_baseline.json`` performance snapshot) to
``benchmarks/output/``. This is the script whose output EXPERIMENTS.md
records.

Usage::

    python benchmarks/run_experiments.py [--quick] [--workers N]

``--quick`` shrinks the trace for a fast smoke run; ``--workers`` fans
the matrix cells out over a process pool (bit-identical results).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import (  # noqa: E402  (path set up above)
    BENCH_SEED,
    BENCH_TAU,
    BENCH_TRACE_CONFIG,
    METIS,
    PILOT,
    RANDOM,
    TXALLO,
    TXALLO_ADAPTIVE,
    emit,
)
from repro.analysis.radar import RADAR_DIMENSIONS, RadarAxes, radar_scores
from repro.analysis.tables import beta_sweep_table, comparison_table, overhead_table
from repro.chain.network import OverheadModel
from repro.data.ethereum import EthereumTraceConfig
from repro.experiments import (
    ScenarioMatrix,
    TraceSpec,
    baseline_snapshot,
    run_matrix,
)
from repro.util.formatting import format_bytes, format_seconds, render_table

METHODS = [PILOT, TXALLO, METIS, RANDOM]
ROW_SETTINGS = [
    {"k": 4, "eta": 2.0, "label": "k = 4"},
    {"k": 16, "eta": 2.0, "label": "k = 16 (default)"},
    {"k": 32, "eta": 2.0, "label": "k = 32"},
    {"k": 16, "eta": 5.0, "label": "eta = 5"},
    {"k": 16, "eta": 10.0, "label": "eta = 10"},
]
BETAS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Wall-clock of the Table II-equivalent workload (4 methods x k = 16 x
#: eta in {2, 5, 10}) measured at the seed revision (d28bae8) on this
#: machine, before the vectorised epoch pipeline landed. The
#: ``BENCH_baseline.json`` snapshot reports the current run's speedup
#: against this reference.
SEED_REFERENCE = {
    "revision": "d28bae8 (seed)",
    "total_seconds": 48.33,
    "cells": {
        "mosaic-pilot/bench/k16/eta2/beta0/tau40": 0.471,
        "txallo/bench/k16/eta2/beta0/tau40": 4.507,
        "metis/bench/k16/eta2/beta0/tau40": 10.51,
        "hash-random/bench/k16/eta2/beta0/tau40": 0.02,
        "mosaic-pilot/bench/k16/eta5/beta0/tau40": 0.537,
        "txallo/bench/k16/eta5/beta0/tau40": 4.721,
        "metis/bench/k16/eta5/beta0/tau40": 10.93,
        "hash-random/bench/k16/eta5/beta0/tau40": 0.018,
        "mosaic-pilot/bench/k16/eta10/beta0/tau40": 0.53,
        "txallo/bench/k16/eta10/beta0/tau40": 5.078,
        "metis/bench/k16/eta10/beta0/tau40": 10.99,
        "hash-random/bench/k16/eta10/beta0/tau40": 0.02,
    },
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small fast run")
    parser.add_argument(
        "--workers", type=int, default=1, help="matrix worker processes"
    )
    args = parser.parse_args()

    config = BENCH_TRACE_CONFIG
    if args.quick:
        config = EthereumTraceConfig(
            n_accounts=2_000,
            n_transactions=24_000,
            n_blocks=1_600,
            hub_fraction=0.01,
            hub_transaction_share=0.12,
            seed=BENCH_TRACE_CONFIG.seed,
        )
    trace_spec = TraceSpec(name="bench", config=config)
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)

    def grid(name, methods, ks=(16,), etas=(2.0,), betas=(0.0,)):
        return ScenarioMatrix(
            name=name,
            methods=tuple(methods),
            traces=(trace_spec,),
            ks=ks,
            etas=etas,
            betas=betas,
            tau=BENCH_TAU,
            seed=BENCH_SEED,
        )

    # -- effectiveness sweeps (Tables I-III) -------------------------------
    # The eta sweep is the Table II-equivalent workload the perf snapshot
    # records; the k sweep supplies the remaining Table I-III rows.
    started = time.time()
    eta_sweep = run_matrix(
        grid("table2-throughput", METHODS, ks=(16,), etas=(2.0, 5.0, 10.0)),
        workers=args.workers,
        strict=True,
    )
    k_sweep = run_matrix(
        grid("k-sweep", METHODS, ks=(4, 32), etas=(2.0,)),
        workers=args.workers,
        strict=True,
    )
    summaries = eta_sweep.summaries + k_sweep.summaries
    print(f"effectiveness sweeps done in {time.time() - started:.0f}s")

    # --quick runs a shrunken trace: its timings are not comparable to
    # the full-workload seed reference, so the tracked repo-root
    # snapshot is only (over)written by full runs.
    if args.quick:
        baseline_path = baseline_snapshot(
            eta_sweep,
            output_dir / "BENCH_baseline.json",
            notes=["--quick run: shrunken trace, no seed reference"],
        )
    else:
        baseline_path = baseline_snapshot(
            eta_sweep,
            Path(__file__).parent.parent / "BENCH_baseline.json",
            reference=SEED_REFERENCE,
            notes=[
                "Table II-equivalent workload: 4 methods x k=16 x eta in {2,5,10}",
                "sequential timings unless workers > 1; digest is worker-invariant",
            ],
        )
    print(f"perf snapshot written to {baseline_path}")

    emit(
        output_dir,
        "table1_cross_shard",
        "Table I: cross-shard ratio",
        comparison_table(
            summaries,
            metric="mean_cross_shard_ratio",
            allocators=METHODS,
            row_settings=ROW_SETTINGS,
        ),
    )
    emit(
        output_dir,
        "table2_throughput",
        "Table II: normalised throughput (Lambda/lambda)",
        comparison_table(
            summaries,
            metric="mean_normalized_throughput",
            allocators=METHODS,
            row_settings=ROW_SETTINGS,
            value_format="{:.2f}",
            lower_is_better=False,
        ),
    )
    emit(
        output_dir,
        "table3_workload_deviation",
        "Table III: workload deviation",
        comparison_table(
            summaries,
            metric="mean_workload_deviation",
            allocators=METHODS,
            row_settings=ROW_SETTINGS,
            value_format="{:.2f}",
        ),
    )

    # -- Table IV: efficiency ----------------------------------------------
    adaptive = run_matrix(
        grid("efficiency", [TXALLO_ADAPTIVE]), workers=args.workers, strict=True
    )
    summaries += adaptive.summaries
    by_key = {(s["allocator"], s["k"], s["eta"]): s for s in summaries}
    rows = [
        [
            method,
            format_seconds(float(by_key[(method, 16, 2.0)]["mean_unit_time"])),
            format_bytes(float(by_key[(method, 16, 2.0)]["mean_input_bytes"])),
        ]
        for method in [PILOT, TXALLO_ADAPTIVE, TXALLO, METIS, RANDOM]
    ]
    emit(
        output_dir,
        "table4_efficiency",
        "Table IV: running time and input data size",
        render_table(["Method", "Time per decision unit", "Input data size"], rows),
    )

    # -- Table V: beta sweep -----------------------------------------------
    beta_sweep = run_matrix(
        grid("beta-sweep", [PILOT], ks=(4,), betas=BETAS),
        workers=args.workers,
        strict=True,
    )
    summaries += beta_sweep.summaries
    emit(
        output_dir,
        "table5_future_knowledge",
        "Table V: impact of future knowledge (k = 4, eta = 2)",
        beta_sweep_table(beta_sweep.summaries, allocator=PILOT),
    )

    # -- Table VI + Fig. 1 ---------------------------------------------------
    pilot = by_key[(PILOT, 16, 2.0)]
    epochs = max(1, int(pilot["epochs"]))
    model = OverheadModel(
        total_transactions=config.n_transactions,
        total_accounts=config.n_accounts,
        k=16,
        window_transactions=int(pilot["total_transactions"]) // epochs,
        committed_migrations=int(pilot["total_migrations"]),
        window_migrations=int(pilot["total_migrations"]) // epochs,
    )
    emit(
        output_dir,
        "table6_overhead",
        "Table VI (quantitative): per-miner overhead",
        overhead_table(model),
    )

    overheads = {
        PILOT: model.mosaic(),
        TXALLO: model.graph_based(),
        RANDOM: model.hash_based(),
    }
    axes = {}
    for method in (PILOT, TXALLO, RANDOM):
        summary = by_key[(method, 16, 2.0)]
        axes[method] = RadarAxes.from_measurements(
            unit_time=max(float(summary["mean_unit_time"]), 1e-12),
            storage_bytes=overheads[method].storage_bytes,
            communication_bytes=overheads[method].communication_bytes,
            normalized_throughput=float(summary["mean_normalized_throughput"]),
            cross_shard_ratio=float(summary["mean_cross_shard_ratio"]),
            workload_deviation=max(
                float(summary["mean_workload_deviation"]), 1e-12
            ),
        )
    scores = radar_scores(axes)
    emit(
        output_dir,
        "fig1_radar",
        "Figure 1: radar scores, normalised to [1, 5]",
        render_table(
            ["Dimension", PILOT, TXALLO, RANDOM],
            [
                [d] + [f"{scores[m][d]:.2f}" for m in (PILOT, TXALLO, RANDOM)]
                for d in RADAR_DIMENSIONS
            ],
        ),
    )

    (output_dir / "run_summaries.json").write_text(
        json.dumps(summaries, indent=2, sort_keys=True)
    )
    print(f"\nall artefacts written to {output_dir}/")


if __name__ == "__main__":
    main()
