"""Figure 1: the six-dimension radar comparison.

Builds the radar axes from measured simulation results (throughput,
intra-shard ratio, workload balance, computation time) combined with
the Section VI overhead model (storage, communication), normalises to
the paper's [1, 5] scale, and emits the per-method scores that Fig. 1
plots. The timed section is the axes + normalisation computation.
"""

from __future__ import annotations

from conftest import METIS, PILOT, RANDOM, TXALLO, emit
from repro.analysis.radar import RADAR_DIMENSIONS, RadarAxes, radar_scores
from repro.chain.network import OverheadModel
from repro.util.formatting import render_table

METHODS = [PILOT, TXALLO, RANDOM]


def test_fig1_radar(benchmark, sim_cache, bench_trace, output_dir):
    results = {m: sim_cache.run(m, k=16, eta=2.0) for m in METHODS}
    epochs = max(1, results[PILOT].epochs)
    model = OverheadModel(
        total_transactions=len(bench_trace),
        total_accounts=bench_trace.n_accounts,
        k=16,
        window_transactions=results[PILOT].total_transactions // epochs,
        committed_migrations=results[PILOT].total_migrations,
        window_migrations=results[PILOT].total_migrations // epochs,
    )
    overheads = {
        PILOT: model.mosaic(),
        TXALLO: model.graph_based(),
        RANDOM: model.hash_based(),
    }

    def compute_scores():
        axes = {}
        for method in METHODS:
            result = results[method]
            overhead = overheads[method]
            axes[method] = RadarAxes.from_measurements(
                unit_time=max(result.mean_unit_time, 1e-12),
                storage_bytes=overhead.storage_bytes,
                communication_bytes=overhead.communication_bytes,
                normalized_throughput=result.mean_normalized_throughput,
                cross_shard_ratio=result.mean_cross_shard_ratio,
                workload_deviation=max(result.mean_workload_deviation, 1e-12),
            )
        return radar_scores(axes)

    scores = benchmark(compute_scores)

    headers = ["Dimension"] + METHODS
    rows = [
        [dimension] + [f"{scores[m][dimension]:.2f}" for m in METHODS]
        for dimension in RADAR_DIMENSIONS
    ]
    emit(
        output_dir,
        "fig1_radar",
        "Figure 1: radar scores, normalised to [1, 5]",
        render_table(headers, rows),
    )

    # Shape checks mirroring the paper's Fig. 1: Mosaic sits near the
    # top of the computation-efficiency axis (hash-based shares it, as
    # in the paper); hash-based wins workload balance; the pattern-aware
    # methods win intra-shard ratio and throughput.
    assert scores[PILOT]["computation_efficiency"] >= 4.0
    assert (
        scores[PILOT]["computation_efficiency"]
        > scores[TXALLO]["computation_efficiency"]
    )
    assert scores[RANDOM]["workload_balance_index"] == 5.0
    assert scores[PILOT]["intra_shard_ratio"] > scores[RANDOM]["intra_shard_ratio"]
    assert scores[TXALLO]["storage_efficiency"] == 1.0
    for method in METHODS:
        for dimension in RADAR_DIMENSIONS:
            assert 1.0 <= scores[method][dimension] <= 5.0
