"""Table II: average normalised throughput improvement (Lambda/lambda).

The timed section is the eta-sweep simulation batch (the k-sweep is
timed by bench_table1 and shared through the session cache).
"""

from __future__ import annotations

from bench_table1_cross_shard import (
    ETA_SWEEP,
    METHODS,
    ROW_SETTINGS,
    collect_summaries,
)
from conftest import METIS, PILOT, RANDOM, TXALLO, emit
from repro.analysis.tables import comparison_table


def test_table2_throughput(benchmark, sim_cache, output_dir):
    def run_eta_sweep():
        for eta in ETA_SWEEP:
            for method in METHODS:
                sim_cache.run(method, k=16, eta=eta)
        return True

    benchmark.pedantic(run_eta_sweep, rounds=1, iterations=1)

    summaries = collect_summaries(sim_cache)
    text = comparison_table(
        summaries,
        metric="mean_normalized_throughput",
        allocators=METHODS,
        row_settings=ROW_SETTINGS,
        value_format="{:.2f}",
        lower_is_better=False,
    )
    emit(
        output_dir,
        "table2_throughput",
        "Table II: normalised throughput (Lambda/lambda)",
        text,
    )

    by_key = {(s["allocator"], s["k"], s["eta"]): s for s in summaries}
    # Pattern-aware methods beat random everywhere.
    for k in (4, 16, 32):
        random_throughput = by_key[(RANDOM, k, 2.0)][
            "mean_normalized_throughput"
        ]
        for method in (PILOT, TXALLO, METIS):
            assert (
                by_key[(method, k, 2.0)]["mean_normalized_throughput"]
                > random_throughput
            )
    # Throughput grows with k (paper: 2.3 -> 7.6 -> 13.1 for Pilot).
    pilot = [
        by_key[(PILOT, k, 2.0)]["mean_normalized_throughput"] for k in (4, 16, 32)
    ]
    assert pilot[0] < pilot[1] < pilot[2]
    # Higher eta hurts throughput (paper: 3.69 at eta=5 vs 1.95 at eta=10).
    assert (
        by_key[(PILOT, 16, 10.0)]["mean_normalized_throughput"]
        < by_key[(PILOT, 16, 5.0)]["mean_normalized_throughput"]
    )
    # Pilot retains ~98% of the best baseline (we assert >= 85%).
    for k in (4, 16, 32):
        best = max(
            by_key[(m, k, 2.0)]["mean_normalized_throughput"]
            for m in (TXALLO, METIS)
        )
        assert by_key[(PILOT, k, 2.0)]["mean_normalized_throughput"] >= 0.85 * best
