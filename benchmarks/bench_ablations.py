"""Ablations of Mosaic's design choices (DESIGN.md §7).

1. **MR capacity cap** — lambda-capped vs unlimited beacon commitment.
2. **Oracle freshness** — next-epoch mempool (paper) vs trailing window.
3. **Commitment order** — gain-prioritised vs FIFO under congestion.

Each ablation runs the Mosaic allocator with one knob flipped and
reports the three effectiveness metrics side by side.
"""

from __future__ import annotations

from conftest import PILOT, emit, make_allocator
from repro.allocation.txallo import TxAlloAllocator
from repro.core.mosaic import MosaicAllocator
from repro.sim.recorder import summarize_results
from repro.util.formatting import render_table

VARIANTS = {
    "paper (cap, lookahead, gain)": dict(),
    "unlimited migrations": dict(unlimited_migrations=True),
    "fifo commitment": dict(fifo_commitment=True),
}


def _mosaic_factory(**kwargs):
    def factory():
        return MosaicAllocator(initializer=TxAlloAllocator(), **kwargs)

    return factory


def test_ablations(benchmark, sim_cache, output_dir):
    def run_all():
        results = {}
        for label, kwargs in VARIANTS.items():
            results[label] = sim_cache.run(
                PILOT,
                k=16,
                eta=2.0,
                allocator_factory=_mosaic_factory(**kwargs),
                cache_tag=label,
            )
        results["trailing oracle"] = sim_cache.run(
            PILOT,
            k=16,
            eta=2.0,
            oracle_mode="trailing",
            allocator_factory=_mosaic_factory(),
            cache_tag="trailing",
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    headers = [
        "Variant",
        "Cross-shard ratio",
        "Throughput",
        "Workload dev.",
        "Migrations",
    ]
    rows = []
    for label, result in results.items():
        summary = summarize_results(result)
        rows.append(
            [
                label,
                f"{summary['mean_cross_shard_ratio']:.2%}",
                f"{summary['mean_normalized_throughput']:.2f}",
                f"{summary['mean_workload_deviation']:.2f}",
                summary["total_migrations"],
            ]
        )
    emit(
        output_dir,
        "ablations",
        "Ablations: Mosaic design choices (k = 16, eta = 2)",
        render_table(headers, rows),
    )

    paper = summarize_results(results["paper (cap, lookahead, gain)"])
    unlimited = summarize_results(results["unlimited migrations"])
    # Lifting the cap can only increase committed migrations.
    assert unlimited["total_migrations"] >= paper["total_migrations"]
    # Every variant stays in the same effectiveness ballpark: the knobs
    # trade convergence speed, not steady-state quality.
    for result in results.values():
        summary = summarize_results(result)
        assert summary["mean_cross_shard_ratio"] < 0.95
        assert summary["mean_normalized_throughput"] > 1.0
