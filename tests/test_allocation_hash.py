"""Unit tests for hash-based static allocation."""

import numpy as np
import pytest

from repro.allocation.base import UpdateContext
from repro.allocation.hash_based import (
    HashAllocator,
    PrefixBitAllocator,
    hash_shard_of_address,
    prefix_bit_shard_of_address,
)
from repro.chain.params import ProtocolParams
from repro.chain.transaction import TransactionBatch
from repro.errors import ConfigurationError


class TestHashRules:
    def test_deterministic(self):
        addr = "0x" + "ab" * 20
        assert hash_shard_of_address(addr, 16) == hash_shard_of_address(addr, 16)

    def test_in_range(self):
        for i in range(50):
            addr = f"0x{i:040x}"
            assert 0 <= hash_shard_of_address(addr, 7) < 7

    def test_case_insensitive(self):
        addr = "0x" + "AB" * 20
        assert hash_shard_of_address(addr, 16) == hash_shard_of_address(
            addr.lower(), 16
        )

    def test_roughly_uniform(self):
        counts = np.zeros(4)
        for i in range(2000):
            counts[hash_shard_of_address(f"0x{i:040x}", 4)] += 1
        assert counts.min() > 2000 / 4 * 0.8

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            hash_shard_of_address("0x" + "00" * 20, 0)

    def test_prefix_bits_in_range(self):
        for i in range(100):
            addr = f"0x{i:040x}"
            assert 0 <= prefix_bit_shard_of_address(addr, 8) < 8

    def test_prefix_bits_k_one(self):
        assert prefix_bit_shard_of_address("0x" + "ff" * 20, 1) == 0

    def test_prefix_bits_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            prefix_bit_shard_of_address("0x" + "00" * 20, 6)

    def test_prefix_bits_large_k(self):
        assert 0 <= prefix_bit_shard_of_address("0x" + "cd" * 20, 1024) < 1024


class TestHashAllocator:
    def test_initialize_covers_universe(self, tiny_trace, params):
        allocator = HashAllocator()
        mapping = allocator.initialize(tiny_trace, params)
        assert mapping.n_accounts == tiny_trace.n_accounts
        assert mapping.k == params.k

    def test_static_update_keeps_mapping(self, tiny_trace, params):
        allocator = HashAllocator()
        mapping = allocator.initialize(tiny_trace, params)
        context = UpdateContext(
            epoch=0,
            params=params,
            committed=tiny_trace.batch[:100],
            mempool=tiny_trace.batch[100:200],
            capacity=100.0,
        )
        update = allocator.update(mapping, context)
        assert update.mapping is mapping
        assert update.migrations == 0
        assert update.unit_time >= 0

    def test_place_new_accounts_matches_initialize(self, tiny_trace, params):
        allocator = HashAllocator()
        mapping = allocator.initialize(tiny_trace, params)
        new_ids = np.array([3, 7, 11])
        placed = allocator.place_new_accounts(new_ids, mapping)
        for account, shard in zip(new_ids, placed):
            assert shard == mapping.shard_of(int(account))

    def test_balanced_shards(self, tiny_trace, params):
        allocator = HashAllocator()
        mapping = allocator.initialize(tiny_trace, params)
        sizes = mapping.shard_sizes()
        assert sizes.min() > 0.6 * sizes.mean()

    def test_prefix_bit_allocator(self, tiny_trace):
        params = ProtocolParams(k=4)
        allocator = PrefixBitAllocator()
        mapping = allocator.initialize(tiny_trace, params)
        assert mapping.k == 4
        assert allocator.name == "hash-prefix-bits"
