"""Unit tests for the TxAllo re-implementation."""

import numpy as np
import pytest

from repro.allocation.base import UpdateContext
from repro.allocation.graph import TransactionGraph
from repro.allocation.txallo import TxAlloAllocator, a_txallo, g_txallo
from repro.chain.mapping import ShardMapping
from repro.errors import AllocationError


def community_graph(n_communities=4, size=10, seed=0):
    """Dense communities with sparse global noise."""
    rng = np.random.default_rng(seed)
    n = n_communities * size
    graph = TransactionGraph(n)
    for c in range(n_communities):
        members = range(c * size, (c + 1) * size)
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j, 3.0)
    for _ in range(n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            graph.add_edge(int(u), int(v), 1.0)
    return graph


class TestGTxAllo:
    def test_deterministic(self):
        graph = community_graph()
        a = g_txallo(graph, k=4, eta=2.0)
        b = g_txallo(graph, k=4, eta=2.0)
        assert np.array_equal(a, b)

    def test_reduces_cut_vs_initial(self):
        graph = community_graph()
        initial = np.arange(graph.n_accounts) % 4
        result = g_txallo(graph, k=4, eta=2.0, initial=initial.copy())
        assert graph.cut_weight(result) < graph.cut_weight(initial)

    def test_groups_communities(self):
        graph = community_graph(n_communities=2, size=12)
        result = g_txallo(graph, k=2, eta=2.0)
        # Most of each community should share a shard.
        first = np.bincount(result[:12], minlength=2)
        second = np.bincount(result[12:], minlength=2)
        assert first.max() >= 9
        assert second.max() >= 9

    def test_respects_workload_cap(self):
        graph = community_graph()
        balance = 1.15
        result = g_txallo(graph, k=4, eta=2.0, balance_factor=balance)
        degrees = graph.vertex_weights()
        loads = np.bincount(result, weights=degrees, minlength=4)
        average = degrees.sum() / 4
        # Moves respect the cap; the initial assignment is balanced, so
        # the final loads stay within the cap plus one max-degree slack.
        assert loads.max() <= balance * average + degrees.max()

    def test_assignment_in_range(self):
        result = g_txallo(community_graph(), k=3, eta=5.0)
        assert result.min() >= 0 and result.max() < 3

    def test_rejects_bad_k(self):
        with pytest.raises(AllocationError):
            g_txallo(community_graph(), k=0, eta=2.0)

    def test_rejects_wrong_initial_length(self):
        with pytest.raises(AllocationError):
            g_txallo(
                community_graph(), k=2, eta=2.0, initial=np.zeros(3, dtype=int)
            )

    def test_empty_graph_keeps_initial(self):
        graph = TransactionGraph(5)
        initial = np.array([0, 1, 0, 1, 0])
        result = g_txallo(graph, k=2, eta=2.0, initial=initial)
        assert np.array_equal(result, initial)


class TestATxAllo:
    def test_only_active_accounts_move(self):
        graph = community_graph()
        assignment = np.arange(graph.n_accounts) % 4
        active = [0, 1, 2]
        result, moved = a_txallo(graph, assignment, active, k=4, eta=2.0)
        changed = np.flatnonzero(result != assignment)
        assert set(changed.tolist()) <= set(active)
        assert moved == len(changed)

    def test_no_active_accounts_is_noop(self):
        graph = community_graph()
        assignment = np.arange(graph.n_accounts) % 4
        result, moved = a_txallo(graph, assignment, [], k=4, eta=2.0)
        assert moved == 0
        assert np.array_equal(result, assignment)

    def test_improves_colocation_for_active(self):
        graph = community_graph(n_communities=2, size=12, seed=1)
        # Community 0 on shard 0, community 1 on shard 1, but account 0
        # misplaced on shard 1.
        assignment = np.array([0] * 12 + [1] * 12)
        assignment[0] = 1
        result, moved = a_txallo(graph, assignment, [0], k=2, eta=2.0)
        assert moved == 1
        assert result[0] == 0

    def test_isolated_active_account_ignored(self):
        graph = community_graph()
        assignment = np.arange(graph.n_accounts) % 4
        result, moved = a_txallo(
            graph, assignment, [graph.n_accounts - 1, 10_000], k=4, eta=2.0
        )
        assert moved >= 0  # out-of-graph ids must not crash


class TestTxAlloAllocator:
    def test_rejects_bad_mode(self):
        with pytest.raises(AllocationError):
            TxAlloAllocator(mode="bogus")

    def test_names(self):
        assert TxAlloAllocator(mode="adaptive").name == "txallo-a"
        assert TxAlloAllocator(mode="full").name == "txallo-g"

    @pytest.mark.parametrize("mode", ["adaptive", "full"])
    def test_initialize_and_update(self, tiny_trace, params, mode):
        allocator = TxAlloAllocator(mode=mode)
        mapping = allocator.initialize(tiny_trace, params)
        assert mapping.n_accounts == tiny_trace.n_accounts
        context = UpdateContext(
            epoch=0,
            params=params,
            committed=tiny_trace.batch[:400],
            mempool=tiny_trace.batch[400:700],
            capacity=100.0,
        )
        update = allocator.update(mapping, context)
        assert update.mapping.k == params.k
        assert update.input_bytes > 0
        assert update.migrations == update.proposed_migrations

    def test_adaptive_uses_less_input_than_full(self, tiny_trace, params):
        adaptive = TxAlloAllocator(mode="adaptive")
        full = TxAlloAllocator(mode="full")
        mapping_a = adaptive.initialize(tiny_trace, params)
        mapping_g = full.initialize(tiny_trace, params)
        context = UpdateContext(
            epoch=0,
            params=params,
            committed=tiny_trace.batch[:300],
            mempool=tiny_trace.batch[300:600],
            capacity=100.0,
        )
        update_a = adaptive.update(mapping_a, context)
        update_g = full.update(mapping_g, context)
        assert update_a.input_bytes < update_g.input_bytes
