"""Unit tests for convergence analysis over epoch time series."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    convergence_report,
    epochs_to_reach,
    metric_trend,
    migration_decay,
)
from repro.chain.params import ProtocolParams
from repro.errors import ValidationError
from repro.sim.engine import EpochRecord, SimulationResult


def result_with(ratios, migrations=None):
    params = ProtocolParams(k=4, eta=2.0, tau=10)
    result = SimulationResult(allocator_name="x", params=params)
    migrations = migrations or [0] * len(ratios)
    for epoch, (ratio, migration_count) in enumerate(zip(ratios, migrations)):
        result.records.append(
            EpochRecord(
                epoch=epoch,
                transactions=100,
                cross_shard_ratio=ratio,
                workload_deviation=0.5,
                normalized_throughput=2.0,
                execution_time=0.0,
                unit_time=0.0,
                input_bytes=0.0,
                migrations=migration_count,
                proposed_migrations=migration_count,
                new_accounts=0,
            )
        )
    return result


class TestMetricTrend:
    def test_improving_series(self):
        trend = metric_trend(
            result_with([0.9, 0.7, 0.5, 0.4, 0.35, 0.34]), "cross_shard_ratio"
        )
        assert trend.improving
        assert trend.slope_per_epoch < 0
        assert trend.relative_change < 0

    def test_flat_series(self):
        trend = metric_trend(result_with([0.5, 0.5, 0.5]), "cross_shard_ratio")
        assert not trend.improving
        assert trend.slope_per_epoch == pytest.approx(0.0, abs=1e-12)

    def test_single_epoch(self):
        trend = metric_trend(result_with([0.4]), "cross_shard_ratio")
        assert trend.slope_per_epoch == 0.0
        assert trend.first_third_mean == trend.last_third_mean == 0.4

    def test_empty_rejected(self):
        params = ProtocolParams(k=4, eta=2.0, tau=10)
        empty = SimulationResult(allocator_name="x", params=params)
        with pytest.raises(ValidationError):
            metric_trend(empty, "cross_shard_ratio")


class TestMigrationDecay:
    def test_quiescing_system(self):
        result = result_with(
            [0.5] * 6, migrations=[100, 80, 40, 10, 5, 2]
        )
        assert migration_decay(result) < 0.2

    def test_steady_churn(self):
        result = result_with([0.5] * 6, migrations=[50] * 6)
        assert migration_decay(result) == pytest.approx(1.0)

    def test_no_migrations(self):
        result = result_with([0.5] * 6)
        assert migration_decay(result) == 0.0

    def test_late_onset(self):
        result = result_with([0.5] * 6, migrations=[0, 0, 0, 0, 10, 10])
        assert migration_decay(result) == float("inf")


class TestEpochsToReach:
    def test_threshold_hit(self):
        result = result_with([0.9, 0.6, 0.4, 0.3])
        assert epochs_to_reach(result, "cross_shard_ratio", 0.45) == 2

    def test_threshold_never_hit(self):
        result = result_with([0.9, 0.8])
        assert epochs_to_reach(result, "cross_shard_ratio", 0.1) == -1

    def test_above_direction(self):
        result = result_with([0.2, 0.5, 0.9])
        assert (
            epochs_to_reach(result, "cross_shard_ratio", 0.8, below=False) == 2
        )


class TestEndToEnd:
    def test_mosaic_run_is_improving(self, medium_trace, params):
        """Mosaic's cross-shard ratio should trend down from a random
        start as clients migrate toward their counterparties."""
        from repro.core.mosaic import MosaicAllocator
        from repro.sim.engine import Simulation, SimulationConfig

        config = SimulationConfig(params=params)
        result = Simulation(medium_trace, MosaicAllocator(), config).run()
        trend = metric_trend(result, "cross_shard_ratio")
        assert trend.improving
        report = convergence_report(result)
        assert {t.metric for t in report} == {
            "cross_shard_ratio",
            "workload_deviation",
            "normalized_throughput",
        }
