"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "out.csv", "--accounts", "500", "--seed", "3"]
        )
        assert args.output == "out.csv"
        assert args.accounts == 500
        assert args.seed == 3

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.method == "mosaic-pilot"
        assert args.shards == 16
        assert args.eta == 2.0


class TestCommands:
    def test_scenarios_lists_catalogue(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper-default" in out
        assert "onboarding-wave" in out

    def test_generate_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        code = main(
            [
                "generate",
                str(out_path),
                "--accounts",
                "300",
                "--transactions",
                "2000",
                "--blocks",
                "300",
            ]
        )
        assert code == 0
        assert out_path.exists()
        header = out_path.read_text().splitlines()[0]
        assert header.startswith("hash,block_number,from_address")

    def test_simulate_synthetic(self, capsys):
        code = main(
            [
                "simulate",
                "--accounts",
                "400",
                "--transactions",
                "3000",
                "--blocks",
                "400",
                "--tau",
                "40",
                "--shards",
                "4",
                "--method",
                "hash-random",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-shard ratio" in out
        assert "migrations committed" in out

    def test_simulate_from_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "trace.csv"
        main(
            [
                "generate",
                str(csv_path),
                "--accounts",
                "300",
                "--transactions",
                "2000",
                "--blocks",
                "300",
            ]
        )
        code = main(
            [
                "simulate",
                "--input",
                str(csv_path),
                "--tau",
                "40",
                "--shards",
                "4",
                "--method",
                "mosaic-pilot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded" in out

    def test_simulate_unknown_method(self, capsys):
        code = main(["simulate", "--method", "nope"])
        assert code == 2
        assert "unknown method" in capsys.readouterr().err

    def test_missing_input_reports_error(self, tmp_path, capsys):
        missing = tmp_path / "does-not-exist.csv"
        code = main(["simulate", "--input", str(missing)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_with_report(self, tmp_path, capsys, monkeypatch):
        # Shrink the scenario so the comparison runs fast.
        from repro.data.ethereum import EthereumTraceConfig
        from repro.sim import scenario as scenario_module
        from repro.sim.scenario import Scenario

        tiny = Scenario(
            name="paper-default",
            description="shrunk for tests",
            trace_config=EthereumTraceConfig(
                n_accounts=400,
                n_transactions=3_000,
                n_blocks=400,
                seed=9,
            ),
            params=scenario_module.get_scenario("paper-default").params.with_updates(
                k=4, tau=40
            ),
            history_fraction=0.8,
        )
        monkeypatch.setitem(scenario_module.SCENARIOS, "paper-default", tiny)
        report_path = tmp_path / "report.md"
        code = main(
            [
                "compare",
                "--scenario",
                "paper-default",
                "--methods",
                "mosaic-pilot,hash-random",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mosaic-pilot" in out
        assert report_path.exists()
