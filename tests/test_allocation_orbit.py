"""Unit tests for the Orbit (pending-aware TxAllo) baseline."""

import numpy as np
import pytest

from repro.allocation.base import UpdateContext
from repro.allocation.orbit import OrbitAllocator
from repro.allocation.txallo import TxAlloAllocator
from repro.chain.mapping import ShardMapping
from repro.chain.transaction import TransactionBatch
from repro.errors import ConfigurationError


def pair_batch(pairs):
    return TransactionBatch(
        np.array([p[0] for p in pairs], dtype=np.int64),
        np.array([p[1] for p in pairs], dtype=np.int64),
    )


class TestConfiguration:
    def test_rejects_bad_pending_weight(self):
        with pytest.raises(ConfigurationError):
            OrbitAllocator(pending_weight=0.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            OrbitAllocator(window_epochs=0)


class TestBehaviour:
    def test_initialize_matches_txallo(self, tiny_trace, params):
        orbit = OrbitAllocator()
        txallo = TxAlloAllocator()
        assert orbit.initialize(tiny_trace, params) == txallo.initialize(
            tiny_trace, params
        )

    def test_update_uses_mempool_signal(self, params):
        """An account whose *pending* (not committed) transactions all
        point at one shard is moved there by Orbit but not by A-TxAllo
        fed only the committed window."""
        mapping = ShardMapping(np.array([1, 0, 0, 0, 1, 1]), k=params.k)
        committed = pair_batch([(4, 5), (4, 5)])  # account 0 inactive
        mempool = pair_batch([(0, 1), (0, 2), (0, 3), (0, 1)])

        # Relax the workload cap: with a six-account toy graph the
        # default 15% balance slack is tighter than one account's weight.
        orbit = OrbitAllocator(balance_factor=4.0)
        context = UpdateContext(
            epoch=0,
            params=params,
            committed=committed,
            mempool=mempool,
            capacity=10.0,
        )
        update = orbit.update(mapping, context)
        assert update.mapping.shard_of(0) == 0  # moved to its peers

        plain = TxAlloAllocator(mode="adaptive", balance_factor=4.0)
        plain_update = plain.update(mapping, context)
        assert plain_update.mapping.shard_of(0) == 1  # no pending signal

    def test_pending_weight_scales_influence(self, params):
        mapping = ShardMapping(np.array([1, 0, 0, 0]), k=params.k)
        # Committed history keeps account 0 on shard 1; weak pending
        # signal points at shard 0.
        committed = pair_batch([(0, 3)] * 6)
        mapping.assign(3, 1)  # committed peer on shard 1
        mempool = pair_batch([(0, 1)])
        context = UpdateContext(
            epoch=0,
            params=params,
            committed=committed,
            mempool=mempool,
            capacity=10.0,
        )
        strong = OrbitAllocator(pending_weight=1.0).update(
            mapping, context
        )
        weak = OrbitAllocator(pending_weight=0.05).update(mapping, context)
        # Both keep account 0 with its dominant committed peer.
        assert strong.mapping.shard_of(0) == 1
        assert weak.mapping.shard_of(0) == 1

    def test_input_accounting_includes_mempool(self, params):
        mapping = ShardMapping(np.array([1, 0, 0, 0]), k=params.k)
        committed = pair_batch([(0, 1)])
        big_mempool = pair_batch([(i % 3, 3) for i in range(2)] * 1)
        context_small = UpdateContext(
            epoch=0,
            params=params,
            committed=committed,
            mempool=TransactionBatch.empty(),
            capacity=10.0,
        )
        context_big = UpdateContext(
            epoch=0,
            params=params,
            committed=committed,
            mempool=big_mempool,
            capacity=10.0,
        )
        small = OrbitAllocator().update(mapping, context_small)
        big = OrbitAllocator().update(mapping, context_big)
        assert big.input_bytes > small.input_bytes

    def test_full_simulation_run(self, tiny_trace, params):
        from repro.sim.engine import Simulation, SimulationConfig

        config = SimulationConfig(params=params, history_fraction=0.8)
        result = Simulation(tiny_trace, OrbitAllocator(), config).run()
        assert result.epochs > 0
        assert result.allocator_name == "orbit"

    def test_orbit_beats_plain_adaptive_on_ratio(self, medium_trace, params):
        """The lookahead should not hurt — usually it helps."""
        from repro.sim.engine import Simulation, SimulationConfig

        config = SimulationConfig(params=params)
        orbit = Simulation(medium_trace, OrbitAllocator(), config).run()
        plain = Simulation(
            medium_trace, TxAlloAllocator(mode="adaptive"), config
        ).run()
        assert (
            orbit.mean_cross_shard_ratio
            <= plain.mean_cross_shard_ratio + 0.03
        )
